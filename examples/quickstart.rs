//! Quickstart: run streamlined HotStuff-1 on a simulated 4-replica
//! cluster and print what the client sees.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hotstuff1::sim::{ProtocolKind, Scenario};

fn main() {
    // Batch 32 with 64 closed-loop clients: the HS1-vs-HS2 latency gap
    // only shows when the batch cap exceeds the peak reissue cohort
    // (≈ clients/3; see ROADMAP.md "Quickstart config sensitivity").
    // Below that (e.g. batch 16 at 64 clients) closed-loop queueing pins
    // both protocols to the same admission cycle and the speculation win
    // disappears from the measurement.
    println!("HotStuff-1 quickstart: 4 replicas, YCSB, batch 32, 1 simulated second\n");
    let report = Scenario::new(ProtocolKind::HotStuff1)
        .replicas(4)
        .batch_size(32)
        .clients(64)
        .sim_seconds(1.0)
        .warmup_seconds(0.25)
        .run();

    println!("  throughput        : {:>10.0} tx/s", report.throughput_tps);
    println!(
        "  mean latency      : {:>10.2} ms (early finality confirmations)",
        report.mean_latency_ms
    );
    println!("  p99 latency       : {:>10.2} ms", report.p99_latency_ms);
    println!("  blocks committed  : {:>10}", report.committed_blocks);
    println!("  rollbacks         : {:>10}", report.rollbacks);
    report.ensure_invariants("quickstart HotStuff-1");
    println!(
        "\nsafety invariants hold (per-height commit agreement, state-root\n\
         convergence, finality soundness, post-fault liveness)"
    );

    // Compare against the HotStuff-2 baseline on the same deployment.
    let baseline = Scenario::new(ProtocolKind::HotStuff2)
        .replicas(4)
        .batch_size(32)
        .clients(64)
        .sim_seconds(1.0)
        .warmup_seconds(0.25)
        .run();
    baseline.ensure_invariants("quickstart HotStuff-2");
    println!(
        "\nHotStuff-2 on the same cluster: {:.2} ms mean latency — HotStuff-1 is {:.1}% faster",
        baseline.mean_latency_ms,
        100.0 * (baseline.mean_latency_ms - report.mean_latency_ms) / baseline.mean_latency_ms
    );
}
