//! A financial-platform scenario (the paper's §1 motivation): a TPC-C
//! style payment/order workload where response latency is the product
//! metric. Compares all four evaluated protocols on a 16-replica cluster.
//!
//! ```text
//! cargo run --release --example payments
//! ```

use hotstuff1::sim::{ProtocolKind, Scenario, WorkloadKind};

fn main() {
    println!("Payment platform: 16 replicas, TPC-C NewOrder/Payment mix, batch 200\n");
    println!("{:<24} {:>12} {:>12} {:>12}", "protocol", "tx/s", "mean ms", "p99 ms");
    let mut rows = Vec::new();
    for p in ProtocolKind::EVALUATED {
        let r = Scenario::new(p)
            .replicas(16)
            .batch_size(200)
            .clients(400)
            .workload(WorkloadKind::Tpcc)
            .sim_seconds(1.5)
            .warmup_seconds(0.3)
            .run();
        r.ensure_invariants(p.name());
        println!(
            "{:<24} {:>12.0} {:>12.2} {:>12.2}",
            p.name(),
            r.throughput_tps,
            r.mean_latency_ms,
            r.p99_latency_ms
        );
        rows.push((p, r));
    }
    let hs1 = rows.iter().find(|(p, _)| *p == ProtocolKind::HotStuff1).unwrap();
    let hs = rows.iter().find(|(p, _)| *p == ProtocolKind::HotStuff).unwrap();
    println!(
        "\nA customer paying through HotStuff-1 waits {:.1}% less than through HotStuff —\n\
         the early finality confirmation arrives after one phase of consensus (§3).",
        100.0 * (hs.1.mean_latency_ms - hs1.1.mean_latency_ms) / hs.1.mean_latency_ms
    );
}
