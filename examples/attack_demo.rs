//! Byzantine attack demonstration (paper §7.3): leader slowness and
//! tail-forking against streamlined HotStuff-1 with and without slotting,
//! plus *backup-side* attacks (equivocal double-votes, vote withholding)
//! through the `hs1-adversary` message-mutation layer.
//!
//! ```text
//! cargo run --release --example attack_demo
//! ```

use hotstuff1::adversary::AdversaryStrategy;
use hotstuff1::consensus::Fault;
use hotstuff1::sim::{ProtocolKind, Scenario};
use hotstuff1::types::SimDuration;

fn run(p: ProtocolKind, fault: Option<Fault>, label: &str) -> (f64, f64) {
    let mut s = Scenario::new(p)
        .replicas(8)
        .batch_size(100)
        .clients(200)
        .view_timer(SimDuration::from_millis(10))
        .sim_seconds(1.5)
        .warmup_seconds(0.3);
    if let Some(f) = fault {
        s = s.faulty_leaders(2, f);
    }
    let r = s.run();
    r.ensure_invariants(label);
    println!(
        "  {:<34} {:>10.0} tx/s {:>9.2} ms  (orphaned blocks: {})",
        label, r.throughput_tps, r.mean_latency_ms, r.orphaned_blocks
    );
    (r.throughput_tps, r.mean_latency_ms)
}

fn main() {
    println!("Attack lab: 8 replicas, 2 Byzantine leaders, τ = 10 ms\n");

    println!("Leader slowness (D6): rational leaders propose at the view deadline");
    let (base, _) = run(ProtocolKind::HotStuff1, None, "HotStuff-1, no attack");
    let (slow, _) =
        run(ProtocolKind::HotStuff1, Some(Fault::SlowLeader), "HotStuff-1, 2 slow leaders");
    let (sbase, _) = run(ProtocolKind::HotStuff1Slotted, None, "HotStuff-1(slotting), no attack");
    let (sslow, _) = run(
        ProtocolKind::HotStuff1Slotted,
        Some(Fault::SlowLeader),
        "HotStuff-1(slotting), 2 slow",
    );
    println!(
        "  -> throughput kept: {:.0}% without slotting vs {:.0}% with slotting\n",
        100.0 * slow / base,
        100.0 * sslow / sbase
    );

    println!("Tail-forking (D7): faulty leaders orphan the previous leader's block");
    let (tf, _) = run(ProtocolKind::HotStuff1, Some(Fault::TailFork), "HotStuff-1, 2 tail-forkers");
    let (stf, _) = run(
        ProtocolKind::HotStuff1Slotted,
        Some(Fault::TailFork),
        "HotStuff-1(slotting), 2 tail-forkers",
    );
    println!(
        "  -> throughput kept: {:.0}% without slotting vs {:.0}% with slotting",
        100.0 * tf / base,
        100.0 * stf / sbase
    );
    println!("\nSlotting lets each leader drive many slots per view, so a slow or");
    println!("malicious successor can damage at most the tail of a view (§6.2).");

    println!("\nBackup equivocation (Hellings & Rahnama): 2 Byzantine backups double-vote");
    println!("across conflicting branches; speculation must absorb it at n = 3f+1");
    let (eq, _) = run_backup(ProtocolKind::HotStuff1, "HotStuff-1, 2 equivocating backups");
    let (seq_, _) =
        run_backup(ProtocolKind::HotStuff1Slotted, "HotStuff-1(slotting), 2 equivocating");
    println!(
        "  -> throughput kept: {:.0}% without slotting vs {:.0}% with slotting",
        100.0 * eq / base,
        100.0 * seq_ / sbase
    );
    println!("\nEvery run above passed the safety/liveness oracles (honest-replica commit");
    println!("agreement, prefix preservation, state-root convergence): attacks absorbed.");
}

/// Two adversarial backups (ids 2 and 5 — never-leader positions are not
/// a thing under round-robin rotation, so they also attack as leaders'
/// *predecessors*): equivocal votes plus withheld votes, the worst
/// in-model combination for the vote path.
fn run_backup(p: ProtocolKind, label: &str) -> (f64, f64) {
    let r = Scenario::new(p)
        .replicas(8)
        .batch_size(100)
        .clients(200)
        .view_timer(SimDuration::from_millis(10))
        .sim_seconds(1.5)
        .warmup_seconds(0.3)
        .with_adversary(2, AdversaryStrategy::Equivocate)
        .with_adversary(5, AdversaryStrategy::WithholdVotes)
        .run();
    r.ensure_invariants(label);
    println!(
        "  {:<34} {:>10.0} tx/s {:>9.2} ms  (oracle verdict: ABSORBED)",
        label, r.throughput_tps, r.mean_latency_ms
    );
    (r.throughput_tps, r.mean_latency_ms)
}
