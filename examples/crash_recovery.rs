//! Kill a journal-backed replica in a live TCP cluster, restart it from
//! its write-ahead journal, and watch it converge with the peers that
//! never crashed (paper §4.2 "Recovery Mechanism").
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! Choreography (wall-clock):
//!
//! * `t=0.0s` — four HotStuff-1 replicas start over loopback TCP;
//!   replica 3 journals every commit/cert/view/speculation to disk.
//! * `t=0.3s` — a closed-loop client starts issuing transactions.
//! * `t=2.0s` — replica 3 is killed (connections severed, no clean
//!   shutdown beyond the journal's own durability).
//! * `t≈2.2s` — replica 3 restarts on the same port: recovery replays
//!   checkpoint + journal, the engine re-enters at its recovered view,
//!   and the `FetchBlock`/`FetchResp` path pulls the blocks it missed.
//! * `t=6.0s` — everything stops; all four replicas must report the same
//!   committed `state_root()`.

use std::time::Duration;

use hotstuff1::consensus::{build_replica, Fault};
use hotstuff1::ledger::ExecConfig;
use hotstuff1::net::client_driver::ClientDriver;
use hotstuff1::net::mesh::Mesh;
use hotstuff1::net::node::NodeRunner;
use hotstuff1::storage::{StorageConfig, SyncPolicy};
use hotstuff1::types::{ClientId, ProtocolKind, ReplicaId, SimDuration, SystemConfig};

fn config(n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(n);
    cfg.view_timer = SimDuration::from_millis(150);
    cfg.delta = SimDuration::from_millis(15);
    cfg.batch_size = 32;
    cfg
}

fn main() {
    let n = 4;
    let base_port = 43710u16;
    let protocol = ProtocolKind::HotStuff1;
    let total = Duration::from_secs(6);
    let crash_at = Duration::from_secs(2);
    let downtime = Duration::from_millis(200);

    let dir = std::env::temp_dir().join(format!("hs1-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage_cfg = StorageConfig {
        segment_bytes: 1 << 20,
        sync: SyncPolicy::EveryN(64),
        checkpoint_every: 1024,
    };

    println!("crash_recovery: 4 replicas over TCP, replica 3 journal-backed");
    println!("  journal dir     : {}", dir.display());

    // Replicas 0..2: plain in-memory nodes, run the whole window.
    let mut live = Vec::new();
    for id in 0..3u32 {
        live.push(std::thread::spawn(move || {
            let engine = build_replica(
                protocol,
                config(n),
                ReplicaId(id),
                Fault::Honest,
                ExecConfig::default(),
            );
            let mesh = Mesh::start(ReplicaId(id), n, "127.0.0.1", base_port).expect("bind");
            let mut runner = NodeRunner::new(engine, mesh);
            runner.run_for(total);
            (runner.committed_blocks, runner.state_root(), runner.committed_chain_len())
        }));
    }

    // Replica 3: journal-backed; killed at `crash_at`, restarted after
    // `downtime` on the same port and journal directory.
    let dir3 = dir.clone();
    let durable = std::thread::spawn(move || {
        let engine =
            build_replica(protocol, config(n), ReplicaId(3), Fault::Honest, ExecConfig::default());
        let mesh = Mesh::start(ReplicaId(3), n, "127.0.0.1", base_port).expect("bind");
        let mut runner =
            NodeRunner::with_storage(engine, mesh, &dir3, storage_cfg).expect("open storage");
        runner.run_for(crash_at);
        let crashed_at_blocks = runner.committed_chain_len();
        runner.shutdown(); // sever connections, free the port — the "kill"
        drop(runner); //        journal Drop syncs whatever was buffered
        println!("  [t=2.0s] replica 3 killed with {crashed_at_blocks} committed blocks");
        std::thread::sleep(downtime);

        let engine =
            build_replica(protocol, config(n), ReplicaId(3), Fault::Honest, ExecConfig::default());
        let mesh = Mesh::start(ReplicaId(3), n, "127.0.0.1", base_port).expect("rebind");
        let mut runner =
            NodeRunner::with_storage(engine, mesh, &dir3, storage_cfg).expect("recover");
        let info = runner.recovery.clone().expect("recovery ran");
        println!(
            "  [t≈2.2s] replica 3 restarted: {} blocks recovered ({} journal records replayed, checkpoint: {})",
            runner.committed_chain_len() - 1,
            info.replayed_records,
            info.checkpoint_seq.map_or("none".into(), |s| format!("seq {s}")),
        );
        assert!(
            runner.committed_chain_len() >= crashed_at_blocks.saturating_sub(64),
            "recovery must not lose more than the fsync batching window"
        );
        runner.run_for(total - crash_at - downtime);
        (runner.committed_blocks, runner.state_root(), runner.committed_chain_len())
    });

    // Closed-loop client against the full cluster (tolerates the dead
    // replica while it is down).
    std::thread::sleep(Duration::from_millis(300));
    let f = SystemConfig::new(n).f();
    let mut client = ClientDriver::connect(ClientId(0), n, "127.0.0.1", base_port, protocol, f)
        .expect("connect");
    let samples = client.run_closed_loop(Duration::from_millis(4500)).expect("client loop");
    drop(client);

    let (blocks3, root3, chain3) = durable.join().expect("replica 3");
    let results: Vec<_> = live.into_iter().map(|h| h.join().expect("replica")).collect();

    println!("  [t=6.0s] all replicas stopped");
    for (i, (blocks, root, chain)) in results.iter().enumerate() {
        println!("  replica {i}: {chain} chain blocks ({blocks} commits seen), root {root:?}");
    }
    println!(
        "  replica 3: {chain3} chain blocks ({blocks3} commits seen), root {root3:?} (recovered)"
    );
    println!("  client finalized {} transactions across the crash", samples.len());

    assert!(!samples.is_empty(), "client reached finality across the crash window");
    assert!(results.iter().all(|(b, _, _)| *b > 0), "live replicas made progress");
    for (i, (_, root, _)) in results.iter().enumerate() {
        assert_eq!(
            *root, root3,
            "replica {i} and recovered replica 3 must agree on the committed state root"
        );
    }
    println!("\nrecovered replica reached the same committed state root as live peers");

    let _ = std::fs::remove_dir_all(&dir);
}
