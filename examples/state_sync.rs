//! A fresh replica with an **empty disk** joins a live TCP cluster
//! mid-run and converges to the live peers' state root via snapshot
//! state transfer (`hs1-statesync`) — including rotating away from a
//! peer that serves corrupted chunks.
//!
//! ```text
//! cargo run --release --example state_sync
//! ```
//!
//! Choreography (wall-clock):
//!
//! * `t=0.0s` — replicas 0–2 start over loopback TCP, each durable
//!   (journal + periodic checkpoints) and therefore snapshot-serving.
//!   Replica 0 is configured to corrupt every snapshot chunk it serves.
//! * `t=0.3s` — a closed-loop client starts issuing transactions
//!   (tolerating the not-yet-started replica 3).
//! * `t=3.0s` — replica 3 starts with an **empty data directory**. It
//!   collects snapshot manifests until `f + 1 = 2` peers agree on a
//!   snapshot identity, downloads the image — rejecting replica 0's
//!   corrupt chunk by CRC and rotating to the next peer — verifies the
//!   assembled state root against the agreed manifest, installs it into
//!   engine + journal, and only then joins consensus. The residual
//!   suffix arrives through the ordinary `FetchBlock` path.
//! * `t=7.0s` — everything stops; all four replicas must report the same
//!   committed `state_root()`.

use std::time::Duration;

use hotstuff1::adversary::{AdversaryMutator, AdversaryStrategy};
use hotstuff1::consensus::{build_replica, Fault};
use hotstuff1::ledger::ExecConfig;
use hotstuff1::net::client_driver::ClientDriver;
use hotstuff1::net::mesh::Mesh;
use hotstuff1::net::node::{NodeRunner, StateSyncConfig};
use hotstuff1::statesync::SyncConfig;
use hotstuff1::storage::{StorageConfig, SyncPolicy};
use hotstuff1::types::{ClientId, ProtocolKind, ReplicaId, SimDuration, SystemConfig};

fn config(n: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(n);
    cfg.view_timer = SimDuration::from_millis(100);
    cfg.delta = SimDuration::from_millis(10);
    cfg.batch_size = 32;
    cfg
}

const CHUNK_BYTES: u32 = 4096;

fn main() {
    let n = 4;
    let base_port = 43720u16;
    let protocol = ProtocolKind::HotStuff1;
    let total = Duration::from_secs(7);
    let join_at = Duration::from_secs(3);

    let root_dir = std::env::temp_dir().join(format!("hs1-state-sync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root_dir);
    // Frequent checkpoints keep a fresh servable snapshot around. Note
    // the pre-join cluster runs *degraded*: with replica 3 absent, every
    // fourth view times out on a dead leader, so the chain grows slowly
    // until the join heals the rotation (visible in the chain lengths).
    let storage_cfg =
        StorageConfig { segment_bytes: 1 << 20, sync: SyncPolicy::EveryN(64), checkpoint_every: 8 };

    println!("state_sync: 3 durable replicas over TCP; replica 3 joins at t=3s with an empty disk");
    println!("  data dir        : {}", root_dir.display());
    println!("  replica 0       : serves CORRUPTED snapshot chunks (fault injection)");

    // Replicas 0..2: durable, snapshot-serving, run the whole window.
    let mut live = Vec::new();
    for id in 0..3u32 {
        let dir = root_dir.join(format!("replica-{id}"));
        live.push(std::thread::spawn(move || {
            let engine = build_replica(
                protocol,
                config(n),
                ReplicaId(id),
                Fault::Honest,
                ExecConfig::default(),
            );
            let mesh = Mesh::start(ReplicaId(id), n, "127.0.0.1", base_port).expect("bind");
            let mut runner =
                NodeRunner::with_storage(engine, mesh, &dir, storage_cfg).expect("open storage");
            runner.set_snapshot_chunk_bytes(CHUNK_BYTES);
            if id == 0 {
                // Byzantine serving via the hs1-adversary layer: every
                // chunk this node serves fails the manifest's CRC index.
                runner.set_adversary(AdversaryMutator::new(
                    AdversaryStrategy::CorruptSnapshot,
                    config(n),
                    protocol,
                    ReplicaId(id),
                    0xc0de,
                ));
            }
            runner.run_for(total);
            (runner.state_root(), runner.committed_chain_len())
        }));
    }

    // Replica 3: born at t=3s with nothing on disk; snapshot-syncs in.
    let dir3 = root_dir.join("replica-3");
    let joiner = std::thread::spawn(move || {
        std::thread::sleep(join_at);
        let engine =
            build_replica(protocol, config(n), ReplicaId(3), Fault::Honest, ExecConfig::default());
        let mesh = Mesh::start(ReplicaId(3), n, "127.0.0.1", base_port).expect("bind");
        let sync_cfg = StateSyncConfig {
            sync: SyncConfig {
                gap_threshold: 4,
                manifest_retry: Duration::from_millis(150),
                chunk_retry: Duration::from_millis(300),
                ..SyncConfig::new(config(n))
            },
            overall_timeout: Duration::from_secs(3),
        };
        let mut runner = NodeRunner::with_state_sync(engine, mesh, &dir3, storage_cfg, sync_cfg)
            .expect("open empty storage");
        assert_eq!(runner.committed_chain_len(), 1, "nothing but genesis before the sync");
        runner.run_for(total - join_at);
        let stats = runner.sync_stats.expect("sync phase ran");
        (runner.state_root(), runner.committed_chain_len(), runner.synced_via_snapshot, stats)
    });

    // Closed-loop client against the live trio (replica 3 not yet up).
    std::thread::sleep(Duration::from_millis(300));
    let f = SystemConfig::new(n).f();
    let mut client = ClientDriver::connect(ClientId(0), n, "127.0.0.1", base_port, protocol, f)
        .expect("connect");
    let samples = client.run_closed_loop(Duration::from_millis(5200)).expect("client loop");
    drop(client);

    let (root3, chain3, via_snapshot, stats) = joiner.join().expect("replica 3");
    let results: Vec<_> = live.into_iter().map(|h| h.join().expect("replica")).collect();

    println!("  [t=7.0s] all replicas stopped");
    for (i, (root, chain)) in results.iter().enumerate() {
        println!("  replica {i}: {chain} chain blocks, root {root:?}");
    }
    println!("  replica 3: {chain3} chain blocks, root {root3:?} (joined mid-run)");
    println!(
        "  sync: {} manifests, agreement of {}, {} chunks / {} bytes, {} CRC rejection(s), {} rotation(s)",
        stats.manifests_received,
        stats.agreement_peers,
        stats.chunks_received,
        stats.bytes_received,
        stats.crc_rejections,
        stats.rotations,
    );
    println!("  client finalized {} transactions", samples.len());

    assert!(!samples.is_empty(), "client reached finality while the cluster ran");
    assert!(via_snapshot, "replica 3 must have installed a snapshot, not replayed history");
    assert!(stats.crc_rejections >= 1, "replica 0's corrupt chunk must have been rejected");
    assert!(stats.rotations >= 1, "sync must have completed via another peer");
    assert!(chain3 > 1, "replica 3 holds a committed chain");
    for (i, (root, _)) in results.iter().enumerate() {
        assert_eq!(
            *root, root3,
            "replica {i} and the freshly joined replica 3 must agree on the state root"
        );
    }
    println!("\nfresh replica joined via snapshot transfer and matches the live state root");

    let _ = std::fs::remove_dir_all(&root_dir);
}
