//! Geo-replicated deployment (paper Fig. 8e–h): 16 replicas spread across
//! 2–5 world regions. Shows how inter-region round-trips dominate latency
//! while HotStuff-1 keeps the lowest client latency at every scale.
//!
//! ```text
//! cargo run --release --example geo_replication
//! ```

use hotstuff1::sim::{ProtocolKind, Scenario};
use hotstuff1::types::SimDuration;

fn main() {
    println!("Geo-scale replication: 16 replicas over k regions, YCSB, batch 100\n");
    println!("{:<10} {:<24} {:>12} {:>12}", "regions", "protocol", "tx/s", "mean ms");
    for regions in 2usize..=5 {
        for p in [ProtocolKind::HotStuff2, ProtocolKind::HotStuff1] {
            let r = Scenario::new(p)
                .replicas(16)
                .batch_size(100)
                .clients(200)
                .geo_regions(regions)
                .view_timer(SimDuration::from_millis(600))
                .sim_seconds(2.0)
                .warmup_seconds(0.5)
                .run();
            r.ensure_invariants(&format!("{} x{regions} regions", p.name()));
            println!(
                "{:<10} {:<24} {:>12.0} {:>12.1}",
                regions,
                p.name(),
                r.throughput_tps,
                r.mean_latency_ms
            );
        }
    }
    println!(
        "\nAdding regions stretches every consensus hop to WAN round-trip times;\n\
         HotStuff-1's two-hop saving compounds into hundreds of milliseconds."
    );
}
