//! Run a real 4-replica HotStuff-1 cluster over TCP loopback inside one
//! process (four replica threads + one closed-loop client thread) — the
//! same engines the simulator uses, on real sockets with real signatures.
//!
//! ```text
//! cargo run --release --example local_cluster_tcp
//! ```
//!
//! For true multi-process deployments use the `hs1-replica` / `hs1-client`
//! binaries from the `hs1-net` crate.

use std::time::Duration;

use hotstuff1::consensus::{build_replica, Fault};
use hotstuff1::ledger::ExecConfig;
use hotstuff1::net::client_driver::ClientDriver;
use hotstuff1::net::mesh::Mesh;
use hotstuff1::net::node::NodeRunner;
use hotstuff1::types::{ClientId, ProtocolKind, ReplicaId, SimDuration, SystemConfig};

fn main() {
    let n = 4;
    let base_port = 43210u16;
    let protocol = ProtocolKind::HotStuff1;
    let run_secs = 5u64;

    let mut handles = Vec::new();
    for id in 0..n as u32 {
        handles.push(std::thread::spawn(move || {
            let mut cfg = SystemConfig::new(n);
            cfg.view_timer = SimDuration::from_millis(150);
            cfg.delta = SimDuration::from_millis(15);
            cfg.batch_size = 32;
            let engine =
                build_replica(protocol, cfg, ReplicaId(id), Fault::Honest, ExecConfig::default());
            let mesh = Mesh::start(ReplicaId(id), n, "127.0.0.1", base_port).expect("bind");
            let mut runner = NodeRunner::new(engine, mesh);
            runner.run_for(Duration::from_secs(run_secs));
            runner.committed_blocks
        }));
    }

    // Give the replicas a moment to bind, then drive a client.
    std::thread::sleep(Duration::from_millis(300));
    let f = SystemConfig::new(n).f();
    let mut client = ClientDriver::connect(ClientId(0), n, "127.0.0.1", base_port, protocol, f)
        .expect("connect");
    let samples = client.run_closed_loop(Duration::from_secs(run_secs - 1)).expect("client loop");

    let committed: Vec<u64> = handles.into_iter().map(|h| h.join().expect("replica")).collect();
    println!("blocks committed per replica: {committed:?}");
    assert!(committed.iter().all(|&c| c > 0), "every replica commits over real TCP");
    assert!(!samples.is_empty(), "client reached finality over real TCP");
    let mean_us: u64 = samples.iter().map(|(_, us)| us).sum::<u64>() / samples.len() as u64;
    println!(
        "client finalized {} transactions, mean early-finality latency {:.2} ms",
        samples.len(),
        mean_us as f64 / 1000.0
    );
}
