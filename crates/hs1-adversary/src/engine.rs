//! The [`Replica`] wrapper: any engine, adversarial on the wire.
//!
//! [`AdversaryEngine`] delegates every input to the wrapped engine and
//! routes every outbound `Send`/`Broadcast` through the
//! [`AdversaryMutator`]. The inner engine's state is never touched — it
//! processes inbound traffic honestly, commits honestly, and answers
//! introspection (`committed_chain`, `state_root`, …) honestly — which is
//! what lets the chaos oracles keep checking the adversary's *local*
//! ledger against the honest cluster while its *external* behavior lies.
//!
//! Two asymmetries:
//!
//! * Loopback sends are never mutated (a process cannot corrupt a message
//!   to itself), and broadcasts are expanded into per-destination sends so
//!   each peer can receive a differently mutated copy.
//! * For the beyond-model [`crate::AdversaryStrategy::ForgeQuorum`]
//!   canary, the wrapper answers `FetchBlock` requests for fabricated
//!   fork blocks itself — the inner honest engine has never seen them.

use hs1_core::persist::{Persistence, RecoveredState};
use hs1_core::replica::{Action, Replica, Timer};
use hs1_types::{BlockId, Message, ReplicaId, SimTime, View};

use crate::mutator::AdversaryMutator;

/// A consensus engine whose outbound traffic is adversarial. See the
/// module docs.
pub struct AdversaryEngine {
    inner: Box<dyn Replica>,
    mutator: AdversaryMutator,
}

impl AdversaryEngine {
    /// Wrap `inner` with `mutator`. The mutator's replica id must match
    /// the engine's (the wrapper signs equivocal votes as that replica).
    pub fn new(inner: Box<dyn Replica>, mutator: AdversaryMutator) -> AdversaryEngine {
        assert_eq!(inner.id(), mutator.id(), "mutator identity must match the wrapped engine");
        AdversaryEngine { inner, mutator }
    }

    /// Mutation counters (tests and reports).
    pub fn mutation_stats(&self) -> crate::MutationStats {
        self.mutator.stats
    }

    /// Route the inner engine's actions through the mutator: loopback
    /// passes clean, broadcasts fan out per destination, everything else
    /// is untouched. Afterwards, give the ForgeQuorum canary its chance
    /// to inject (it triggers on the inner engine's view progress).
    fn relay(&mut self, actions: Vec<Action>, out: &mut Vec<Action>) {
        let me = self.inner.id();
        for a in actions {
            match a {
                Action::Send { to, msg } if to != me => {
                    for (t, m) in self.mutator.mutate(to, msg) {
                        out.push(Action::Send { to: t, msg: m });
                    }
                }
                Action::Broadcast { msg } => {
                    for r in 0..self.mutator.n() as u32 {
                        let to = ReplicaId(r);
                        if to == me {
                            out.push(Action::Send { to, msg: msg.clone() });
                        } else {
                            for (t, m) in self.mutator.mutate(to, msg.clone()) {
                                out.push(Action::Send { to: t, msg: m });
                            }
                        }
                    }
                }
                other => out.push(other),
            }
        }
        if let Some(msgs) = self.mutator.maybe_forge(self.inner.current_view()) {
            for (to, msg) in msgs {
                out.push(Action::Send { to, msg });
            }
        }
    }
}

impl Replica for AdversaryEngine {
    fn id(&self) -> ReplicaId {
        self.inner.id()
    }

    fn on_init(&mut self, now: SimTime, out: &mut Vec<Action>) {
        let mut tmp = Vec::new();
        self.inner.on_init(now, &mut tmp);
        self.relay(tmp, out);
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, now: SimTime, out: &mut Vec<Action>) {
        // Serve fabricated fork blocks directly (ForgeQuorum only).
        if let Message::FetchBlock { id } = &msg {
            if let Some(block) = self.mutator.forged_block(*id) {
                out.push(Action::Send { to: from, msg: Message::FetchResp { block } });
                return;
            }
        }
        let mut tmp = Vec::new();
        self.inner.on_message(from, msg, now, &mut tmp);
        self.relay(tmp, out);
    }

    fn on_timer(&mut self, timer: Timer, now: SimTime, out: &mut Vec<Action>) {
        let mut tmp = Vec::new();
        self.inner.on_timer(timer, now, &mut tmp);
        self.relay(tmp, out);
    }

    fn enqueue_txs(&mut self, txs: &[hs1_types::Transaction]) {
        self.inner.enqueue_txs(txs);
    }

    fn current_view(&self) -> View {
        self.inner.current_view()
    }

    fn committed_head(&self) -> BlockId {
        self.inner.committed_head()
    }

    fn committed_chain(&self) -> Vec<BlockId> {
        self.inner.committed_chain()
    }

    fn set_observer(&mut self, obs: hs1_obs::Obs) {
        self.inner.set_observer(obs);
    }

    fn set_persistence(&mut self, persist: Box<dyn Persistence>) {
        self.inner.set_persistence(persist);
    }

    fn restore(&mut self, rs: RecoveredState) {
        self.inner.restore(rs);
    }

    fn state_root(&self) -> hs1_crypto::Digest {
        self.inner.state_root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdversaryStrategy;
    use hs1_core::{build_replica, Fault};
    use hs1_ledger::ExecConfig;
    use hs1_types::{ProtocolKind, SystemConfig};

    fn wrapped(strategy: AdversaryStrategy) -> AdversaryEngine {
        let cfg = SystemConfig::new(4);
        let inner = build_replica(
            ProtocolKind::HotStuff1,
            cfg.clone(),
            ReplicaId(1),
            Fault::Honest,
            ExecConfig::default(),
        );
        let mutator =
            AdversaryMutator::new(strategy, cfg, ProtocolKind::HotStuff1, ReplicaId(1), 3);
        AdversaryEngine::new(inner, mutator)
    }

    #[test]
    fn delegates_identity_and_introspection() {
        let e = wrapped(AdversaryStrategy::WithholdVotes);
        assert_eq!(e.id(), ReplicaId(1));
        assert_eq!(e.committed_chain().len(), 1, "genesis only");
        assert_eq!(e.current_view(), View::GENESIS);
    }

    #[test]
    fn broadcasts_expand_to_per_destination_sends() {
        let mut e = wrapped(AdversaryStrategy::WithholdVotes);
        let mut out = Vec::new();
        e.on_init(SimTime::ZERO, &mut out);
        // Everything the wrapper emits is a Send or a non-network action;
        // no Broadcast survives the relay.
        assert!(!out.iter().any(|a| matches!(a, Action::Broadcast { .. })));
        assert!(out.iter().any(|a| matches!(a, Action::Send { .. })), "init announces itself");
    }

    #[test]
    fn loopback_is_never_mutated() {
        // A CorruptFetch adversary answering its *own* fetch keeps the
        // body intact: the in-flight check on the inner engine would drop
        // a tampered self-delivery and wedge its own catch-up.
        let mut e = wrapped(AdversaryStrategy::CorruptFetch);
        let actions = vec![Action::Send {
            to: ReplicaId(1),
            msg: Message::FetchBlock { id: BlockId::test(1) },
        }];
        let mut out = Vec::new();
        e.relay(actions, &mut out);
        assert_eq!(out.len(), 1);
        let Action::Send { to, .. } = &out[0] else { panic!() };
        assert_eq!(*to, ReplicaId(1));
    }

    #[test]
    #[should_panic(expected = "mutator identity")]
    fn identity_mismatch_is_rejected() {
        let cfg = SystemConfig::new(4);
        let inner = build_replica(
            ProtocolKind::HotStuff1,
            cfg.clone(),
            ReplicaId(1),
            Fault::Honest,
            ExecConfig::default(),
        );
        let mutator = AdversaryMutator::new(
            AdversaryStrategy::Equivocate,
            cfg,
            ProtocolKind::HotStuff1,
            ReplicaId(2),
            3,
        );
        let _ = AdversaryEngine::new(inner, mutator);
    }
}
