//! The message-mutation core: a deterministic transformation of outbound
//! `(destination, message)` pairs implementing one [`AdversaryStrategy`].
//!
//! The mutator is transport-agnostic — [`crate::AdversaryEngine`] drives
//! it for engine actions, and `hs1-net`'s node runner drives it for the
//! snapshot-serving path that lives outside the engine. Every stochastic
//! choice flows through an own-seeded `SplitMix64`, so a chaos run that
//! wraps engines with mutators stays replayable byte-for-byte.

use std::sync::Arc;

use hs1_crypto::{KeyPair, Sha256};
use hs1_types::cert::{domains, CertKind};
use hs1_types::message::{NewSlotMsg, NewViewMsg, ProposeMsg, VoteInfo, VoteMsg, WishMsg};
use hs1_types::{
    Block, BlockId, Certificate, Message, ProtocolKind, ReplicaId, Slot, SplitMix64, SystemConfig,
    TimeoutCert, Transaction, View,
};

use crate::AdversaryStrategy;

/// The adversary begins forging (ForgeQuorum only) once the wrapped
/// engine has progressed past this view — late enough that honest
/// commits exist for the fork to conflict with.
const FORGE_AFTER_VIEW: u64 = 6;

/// Counters for tests and observability.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutationStats {
    /// Messages altered in place.
    pub mutated: u64,
    /// Messages suppressed entirely.
    pub withheld: u64,
    /// Extra messages fabricated (equivocal votes, forged proposals).
    pub injected: u64,
}

/// Outbound-traffic mutator for one adversarial replica. See the crate
/// docs for the strategy catalogue.
pub struct AdversaryMutator {
    strategy: AdversaryStrategy,
    cfg: SystemConfig,
    protocol: ProtocolKind,
    me: ReplicaId,
    kp: KeyPair,
    rng: SplitMix64,
    /// Lowest-ranked non-genesis certificate observed in own outbound
    /// traffic (the StaleCert strategy's advertisement).
    stale_cert: Option<Certificate>,
    /// Oldest timeout certificate observed (stale TC replay).
    stale_tc: Option<TimeoutCert>,
    /// Block the previous (honest) vote named — the preferred conflicting
    /// branch for equivocation.
    prev_vote_block: Option<BlockId>,
    /// Also tamper snapshot *manifests*, not just chunks (exercises the
    /// agreement-exclusion defense instead of the chunk-CRC defense; the
    /// two are mutually exclusive per peer, so this is a separate knob).
    corrupt_manifests: bool,
    /// Fabricated fork blocks (ForgeQuorum), served on fetch.
    forged: Option<Vec<Arc<Block>>>,
    pub stats: MutationStats,
}

impl AdversaryMutator {
    /// Build the mutator for replica `me` of the deployment described by
    /// `cfg`, running `protocol`. `seed` decorrelates the mutation
    /// stream from the scenario's other rngs.
    pub fn new(
        strategy: AdversaryStrategy,
        cfg: SystemConfig,
        protocol: ProtocolKind,
        me: ReplicaId,
        seed: u64,
    ) -> AdversaryMutator {
        let kp = KeyPair::derive(cfg.deployment_seed, me.0);
        AdversaryMutator {
            strategy,
            cfg,
            protocol,
            me,
            kp,
            rng: SplitMix64::new(seed ^ 0xadc0_5a17 ^ ((me.0 as u64) << 32)),
            stale_cert: None,
            stale_tc: None,
            prev_vote_block: None,
            corrupt_manifests: false,
            forged: None,
            stats: MutationStats::default(),
        }
    }

    pub fn strategy(&self) -> AdversaryStrategy {
        self.strategy
    }

    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// Deployment size (the engine wrapper expands broadcasts with it).
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// Toggle manifest tampering for the CorruptSnapshot strategy.
    pub fn set_corrupt_manifests(&mut self, on: bool) {
        self.corrupt_manifests = on;
    }

    /// Transform one outbound message. An empty result withholds it; a
    /// multi-element result injects extra traffic around it.
    pub fn mutate(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        self.observe(&msg);
        match self.strategy {
            AdversaryStrategy::Equivocate => self.equivocate(to, msg),
            AdversaryStrategy::WithholdVotes => self.withhold(to, msg),
            AdversaryStrategy::StaleCert => self.stale(to, msg),
            AdversaryStrategy::CorruptFetch => self.corrupt_fetch(to, msg),
            AdversaryStrategy::CorruptSnapshot => self.corrupt_snapshot(to, msg),
            AdversaryStrategy::ForgeQuorum => vec![(to, msg)],
        }
    }

    /// Track the stalest certificate / TC flowing through own traffic so
    /// the StaleCert strategy has something genuinely old to advertise.
    fn observe(&mut self, msg: &Message) {
        let cert = match msg {
            Message::NewView(m) => Some(&m.high_cert),
            Message::NewSlot(m) => Some(&m.high_cert),
            Message::Reject(m) => Some(&m.high_cert),
            Message::Propose(p) => Some(&p.block.justify),
            Message::Prepare(p) => Some(&p.cert),
            _ => None,
        };
        if let Some(c) = cert {
            if !c.is_genesis() && self.stale_cert.as_ref().is_none_or(|s| c.rank() < s.rank()) {
                self.stale_cert = Some(c.clone());
            }
        }
        if let Message::Tc(tc) = msg {
            if self.stale_tc.as_ref().is_none_or(|s| tc.view < s.view) {
                self.stale_tc = Some(tc.clone());
            }
        }
    }

    // -- Equivocate ---------------------------------------------------------

    /// The conflicting branch a double-vote names: the block of the
    /// previous honest vote when one exists (a real competing branch),
    /// else a fabricated id derived from the honest vote.
    fn conflicting_block(&self, real: BlockId) -> BlockId {
        match self.prev_vote_block {
            Some(b) if b != real => b,
            _ => {
                let mut h = Sha256::new();
                h.update(b"hs1-adversary-equivocation");
                h.update(&real.0 .0);
                BlockId(h.finalize())
            }
        }
    }

    /// Signature context of a NewView-carried vote (protocol-dependent:
    /// the chained engines vote in the propose domain, basic sends commit
    /// shares, slotted sends New-View shares).
    fn newview_vote_kind(&self, dest_view: View) -> CertKind {
        match self.protocol {
            ProtocolKind::HotStuff1Basic => CertKind::Commit,
            ProtocolKind::HotStuff1Slotted => CertKind::NewView { formed_in: dest_view },
            _ => CertKind::Quorum,
        }
    }

    fn sign_vote(&self, kind: CertKind, v: VoteInfo, block: BlockId) -> VoteInfo {
        let bytes = Certificate::signing_bytes(kind, v.view, v.slot, block);
        VoteInfo { block, share: self.kp.sign(kind.domain(), &bytes), ..v }
    }

    fn equivocate(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        let conflict = match &msg {
            Message::Vote(m) => {
                let alt = self.conflicting_block(m.vote.block);
                let vote = self.sign_vote(CertKind::Quorum, m.vote, alt);
                self.prev_vote_block = Some(m.vote.block);
                Some(Message::Vote(VoteMsg { vote }))
            }
            Message::NewView(m) => m.vote.map(|v| {
                let alt = self.conflicting_block(v.block);
                let kind = self.newview_vote_kind(m.dest_view);
                let vote = self.sign_vote(kind, v, alt);
                self.prev_vote_block = Some(v.block);
                Message::NewView(NewViewMsg {
                    dest_view: m.dest_view,
                    high_cert: m.high_cert.clone(),
                    vote: Some(vote),
                })
            }),
            Message::NewSlot(m) => {
                let alt = self.conflicting_block(m.vote.block);
                let vote = self.sign_vote(CertKind::NewSlot, m.vote, alt);
                self.prev_vote_block = Some(m.vote.block);
                Some(Message::NewSlot(NewSlotMsg {
                    view: m.view,
                    slot: m.slot,
                    high_cert: m.high_cert.clone(),
                    vote,
                }))
            }
            _ => None,
        };
        match conflict {
            Some(forged) => {
                self.stats.injected += 1;
                // Half the time the conflicting share arrives first, so
                // the tallying leader's per-sender dedup keeps *it* and
                // discards the honest share — the worst ordering.
                if self.rng.chance(0.5) {
                    vec![(to, forged), (to, msg)]
                } else {
                    vec![(to, msg), (to, forged)]
                }
            }
            None => vec![(to, msg)],
        }
    }

    // -- WithholdVotes ------------------------------------------------------

    fn withhold(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        match msg {
            Message::Vote(_) | Message::NewSlot(_) => {
                self.stats.withheld += 1;
                Vec::new()
            }
            Message::NewView(m) if m.vote.is_some() => {
                self.stats.mutated += 1;
                vec![(to, Message::NewView(NewViewMsg { vote: None, ..m }))]
            }
            other => vec![(to, other)],
        }
    }

    // -- StaleCert ----------------------------------------------------------

    fn stale_or_genesis(&self) -> Certificate {
        self.stale_cert.clone().unwrap_or_else(Certificate::genesis)
    }

    fn stale(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        match msg {
            Message::NewView(m) => {
                self.stats.mutated += 1;
                vec![(to, Message::NewView(NewViewMsg { high_cert: self.stale_or_genesis(), ..m }))]
            }
            Message::NewSlot(m) => {
                self.stats.mutated += 1;
                vec![(to, Message::NewSlot(NewSlotMsg { high_cert: self.stale_or_genesis(), ..m }))]
            }
            Message::Reject(mut m) => {
                self.stats.mutated += 1;
                m.high_cert = self.stale_or_genesis();
                vec![(to, Message::Reject(m))]
            }
            Message::Wish(w) if w.view.0 >= self.cfg.epoch_len() => {
                // Re-wish for the *previous* epoch boundary: epoch leaders
                // with a formed TC answer it directly (the stored-TC
                // recovery path), everyone else ignores it — and the
                // current epoch must synchronize from honest wishes alone.
                self.stats.mutated += 1;
                let old = View(w.view.0 - self.cfg.epoch_len());
                let share = self.kp.sign(domains::WISH, &TimeoutCert::signing_bytes(old));
                vec![(to, Message::Wish(WishMsg { view: old, share }))]
            }
            Message::Tc(tc) => match &self.stale_tc {
                Some(old) if old.view < tc.view => {
                    self.stats.mutated += 1;
                    vec![(to, Message::Tc(old.clone()))]
                }
                _ => vec![(to, Message::Tc(tc))],
            },
            other => vec![(to, other)],
        }
    }

    // -- CorruptFetch -------------------------------------------------------

    /// Rebuild `b` with an extra marker transaction: structurally valid,
    /// same chain position, but the content hash no longer matches the
    /// id the fetcher asked for.
    fn tamper_block(&mut self, b: &Block) -> Block {
        let mut txs = b.txs.clone();
        txs.push(Transaction::kv_write(u32::MAX, self.rng.next_u64(), 0xdead, 0xbeef));
        match b.carry {
            Some(c) => Block::new_with_carry(b.proposer, b.view, b.slot, b.justify.clone(), c, txs),
            None => Block::new(b.proposer, b.view, b.slot, b.justify.clone(), txs),
        }
    }

    fn corrupt_fetch(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        match msg {
            Message::FetchResp { block } => {
                self.stats.mutated += 1;
                let tampered = Arc::new(self.tamper_block(&block));
                vec![(to, Message::FetchResp { block: tampered })]
            }
            other => vec![(to, other)],
        }
    }

    // -- CorruptSnapshot ----------------------------------------------------

    fn corrupt_snapshot(&mut self, to: ReplicaId, msg: Message) -> Vec<(ReplicaId, Message)> {
        match msg {
            Message::SnapshotChunk(mut c) if !c.data.is_empty() => {
                self.stats.mutated += 1;
                c.data[0] ^= 0xFF;
                vec![(to, Message::SnapshotChunk(c))]
            }
            Message::SnapshotManifest(mut m) if self.corrupt_manifests => {
                // A lying state identity: still well-formed, certificate
                // still valid — only the f+1 agreement rule excludes it.
                self.stats.mutated += 1;
                let mut root = m.state_root;
                for byte in root.0.iter_mut() {
                    *byte ^= 0xFF;
                }
                m.state_root = root;
                vec![(to, Message::SnapshotManifest(m))]
            }
            other => vec![(to, other)],
        }
    }

    // -- ForgeQuorum (beyond-model canary) ----------------------------------

    /// Forge a certificate with shares from the first `quorum` replicas.
    /// Only possible because the workspace substitutes HMAC (a shared
    /// registry of symmetric keys) for real signatures — which is exactly
    /// why this strategy is confined to gate canaries.
    fn forge_cert(&self, kind: CertKind, view: View, slot: Slot, block: BlockId) -> Certificate {
        let bytes = Certificate::signing_bytes(kind, view, slot, block);
        let sigs = (0..self.cfg.quorum() as u32)
            .map(|i| {
                let kp = KeyPair::derive(self.cfg.deployment_seed, i);
                (ReplicaId(i), kp.sign(kind.domain(), &bytes))
            })
            .collect();
        Certificate { kind, view, slot, block, sigs }
    }

    /// Once the run is warm, fabricate a fork `X0 ← X1 ← X2` where `X0`
    /// conflicts with the honest chain's first block, certify `X0`/`X1`
    /// with forged quorums, and propose `X2` from a view this replica
    /// legitimately leads. Honest receivers fetch the forged ancestry
    /// (served by [`AdversaryMutator::forged_block`]) and the 2-chain
    /// commit rule walks them into committing `X0` — the safety violation
    /// the chaos oracles must catch.
    pub fn maybe_forge(&mut self, current_view: View) -> Option<Vec<(ReplicaId, Message)>> {
        if self.strategy != AdversaryStrategy::ForgeQuorum
            || self.forged.is_some()
            || current_view.0 < FORGE_AFTER_VIEW
        {
            return None;
        }
        let mut w = current_view.0 + 1;
        while self.cfg.leader_of(View(w)) != self.me {
            w += 1;
        }
        let marker = Transaction::kv_write(u32::MAX, w, 0xf0f0, 0x0f0f);
        let x0 = Arc::new(Block::new(
            self.me,
            View(1),
            Slot::FIRST,
            Certificate::genesis(),
            vec![marker],
        ));
        let c0 = self.forge_cert(CertKind::Quorum, View(w - 2), Slot::FIRST, x0.id());
        let x1 = Arc::new(Block::new(self.me, View(w - 1), Slot::FIRST, c0, Vec::new()));
        let c1 = self.forge_cert(CertKind::Quorum, View(w - 1), Slot::FIRST, x1.id());
        let x2 = Arc::new(Block::new(self.me, View(w), Slot::FIRST, c1, Vec::new()));
        self.forged = Some(vec![x0, x1, x2.clone()]);
        self.stats.injected += 1;
        Some(
            (0..self.cfg.n as u32)
                .map(|r| {
                    let msg = Message::Propose(ProposeMsg { block: x2.clone(), commit_cert: None });
                    (ReplicaId(r), msg)
                })
                .collect(),
        )
    }

    /// A fabricated fork block by id, if this adversary forged it (the
    /// engine wrapper answers `FetchBlock` for these directly — the inner
    /// honest engine has never seen them).
    pub fn forged_block(&self, id: BlockId) -> Option<Arc<Block>> {
        self.forged.as_ref().and_then(|blocks| blocks.iter().find(|b| b.id() == id).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_crypto::PublicKeyRegistry;
    use hs1_types::message::{SnapshotChunkMsg, SnapshotManifestMsg};

    fn cfg() -> SystemConfig {
        SystemConfig::new(4)
    }

    fn mutator(strategy: AdversaryStrategy) -> AdversaryMutator {
        mutator_for(strategy, ProtocolKind::HotStuff1)
    }

    fn mutator_for(strategy: AdversaryStrategy, protocol: ProtocolKind) -> AdversaryMutator {
        AdversaryMutator::new(strategy, cfg(), protocol, ReplicaId(1), 7)
    }

    fn some_vote(block: BlockId) -> VoteInfo {
        VoteInfo { view: View(3), slot: Slot::FIRST, block, share: hs1_crypto::Signature::ZERO }
    }

    fn newview(block: BlockId) -> Message {
        Message::NewView(NewViewMsg {
            dest_view: View(4),
            high_cert: Certificate::genesis(),
            vote: Some(some_vote(block)),
        })
    }

    #[test]
    fn equivocate_injects_validly_signed_conflicting_vote() {
        let mut m = mutator(AdversaryStrategy::Equivocate);
        let real = BlockId::test(1);
        let out = m.mutate(ReplicaId(2), newview(real));
        assert_eq!(out.len(), 2, "real + conflicting vote");
        let reg = PublicKeyRegistry::derive(0, 4);
        let mut seen_conflict = false;
        for (_, msg) in &out {
            let Message::NewView(nv) = msg else { panic!("shape preserved") };
            let v = nv.vote.expect("vote kept");
            if v.block != real {
                seen_conflict = true;
                // Conflicting share is *validly signed* by the adversary
                // in the correct domain — a genuine double-vote.
                let bytes = Certificate::signing_bytes(CertKind::Quorum, v.view, v.slot, v.block);
                assert!(reg.verify(1, domains::PROPOSE_VOTE, &bytes, &v.share));
            }
        }
        assert!(seen_conflict);
        assert_eq!(m.stats.injected, 1);
    }

    #[test]
    fn equivocate_prefers_a_real_competing_branch() {
        let mut m = mutator(AdversaryStrategy::Equivocate);
        let first = BlockId::test(1);
        let second = BlockId::test(2);
        m.mutate(ReplicaId(2), newview(first));
        let out = m.mutate(ReplicaId(2), newview(second));
        let conflict = out
            .iter()
            .filter_map(|(_, msg)| match msg {
                Message::NewView(nv) => nv.vote,
                _ => None,
            })
            .find(|v| v.block != second)
            .expect("conflicting vote present");
        assert_eq!(conflict.block, first, "previous branch reused as the conflict");
    }

    #[test]
    fn equivocate_signs_per_protocol_domain() {
        let reg = PublicKeyRegistry::derive(0, 4);
        for (protocol, domain) in [
            (ProtocolKind::HotStuff1, domains::PROPOSE_VOTE),
            (ProtocolKind::HotStuff1Basic, domains::COMMIT_VOTE),
            (ProtocolKind::HotStuff1Slotted, domains::NEW_VIEW),
        ] {
            let mut m = mutator_for(AdversaryStrategy::Equivocate, protocol);
            let out = m.mutate(ReplicaId(2), newview(BlockId::test(1)));
            let conflict = out
                .iter()
                .filter_map(|(_, msg)| match msg {
                    Message::NewView(nv) => nv.vote,
                    _ => None,
                })
                .find(|v| v.block != BlockId::test(1))
                .expect("conflict");
            let kind = m.newview_vote_kind(View(4));
            let bytes =
                Certificate::signing_bytes(kind, conflict.view, conflict.slot, conflict.block);
            assert!(reg.verify(1, domain, &bytes, &conflict.share), "{protocol:?}");
        }
    }

    #[test]
    fn withhold_strips_and_drops_votes() {
        let mut m = mutator(AdversaryStrategy::WithholdVotes);
        let out = m.mutate(ReplicaId(2), newview(BlockId::test(1)));
        assert_eq!(out.len(), 1);
        let Message::NewView(nv) = &out[0].1 else { panic!() };
        assert!(nv.vote.is_none(), "vote stripped, message kept");
        let dropped =
            m.mutate(ReplicaId(2), Message::Vote(VoteMsg { vote: some_vote(BlockId::test(1)) }));
        assert!(dropped.is_empty(), "standalone votes withheld entirely");
        assert_eq!(m.stats.withheld, 1);
        // Non-vote traffic flows untouched.
        let fetched = m.mutate(ReplicaId(2), Message::FetchBlock { id: BlockId::test(9) });
        assert_eq!(fetched.len(), 1);
    }

    #[test]
    fn stale_cert_advertises_the_oldest_seen() {
        let mut m = mutator(AdversaryStrategy::StaleCert);
        let old = Certificate {
            kind: CertKind::Quorum,
            view: View(2),
            slot: Slot::FIRST,
            block: BlockId::test(2),
            sigs: vec![],
        };
        let fresh = Certificate { view: View(9), block: BlockId::test(9), ..old.clone() };
        // Observe an old cert, then send a message carrying a fresh one.
        m.mutate(
            ReplicaId(2),
            Message::NewView(NewViewMsg { dest_view: View(3), high_cert: old.clone(), vote: None }),
        );
        let out = m.mutate(
            ReplicaId(2),
            Message::NewView(NewViewMsg { dest_view: View(10), high_cert: fresh, vote: None }),
        );
        let Message::NewView(nv) = &out[0].1 else { panic!() };
        assert_eq!(nv.high_cert.view, View(2), "stale certificate advertised");
    }

    #[test]
    fn stale_rewishes_for_the_previous_epoch() {
        let mut m = mutator(AdversaryStrategy::StaleCert);
        let out = m.mutate(
            ReplicaId(2),
            Message::Wish(WishMsg { view: View(8), share: hs1_crypto::Signature::ZERO }),
        );
        let Message::Wish(w) = &out[0].1 else { panic!() };
        // n = 4 ⇒ epoch_len = 2: the wish regresses one epoch and is
        // re-signed for the stale view.
        assert_eq!(w.view, View(6));
        let reg = PublicKeyRegistry::derive(0, 4);
        assert!(reg.verify(1, domains::WISH, &TimeoutCert::signing_bytes(View(6)), &w.share));
    }

    #[test]
    fn corrupt_fetch_changes_the_content_hash() {
        let mut m = mutator(AdversaryStrategy::CorruptFetch);
        let block = Arc::new(Block::new(
            ReplicaId(0),
            View(1),
            Slot::FIRST,
            Certificate::genesis(),
            vec![Transaction::kv_write(1, 1, 2, 3)],
        ));
        let out = m.mutate(ReplicaId(2), Message::FetchResp { block: block.clone() });
        let Message::FetchResp { block: tampered } = &out[0].1 else { panic!() };
        assert_ne!(tampered.id(), block.id(), "tampered body no longer matches its id");
        assert_eq!(tampered.parent, block.parent, "chain position preserved");
    }

    #[test]
    fn corrupt_snapshot_breaks_chunk_crc_and_optionally_manifests() {
        let mut m = mutator(AdversaryStrategy::CorruptSnapshot);
        let chunk = SnapshotChunkMsg {
            state_root: hs1_crypto::Digest([1u8; 32]),
            index: 0,
            data: vec![0xAA, 0xBB],
        };
        let out = m.mutate(ReplicaId(2), Message::SnapshotChunk(chunk.clone()));
        let Message::SnapshotChunk(c) = &out[0].1 else { panic!() };
        assert_ne!(c.data, chunk.data);

        let manifest = SnapshotManifestMsg {
            chain_len: 10,
            chain_head: BlockId::test(9),
            state_root: hs1_crypto::Digest([2u8; 32]),
            record_count: 5,
            total_bytes: 100,
            chunk_bytes: 64,
            chunk_crcs: vec![1, 2],
            view: View(10),
            high_cert: Certificate::genesis(),
        };
        // Manifests pass through by default (the chunk-CRC defense is the
        // one being exercised)...
        let passed = m.mutate(ReplicaId(2), Message::SnapshotManifest(manifest.clone()));
        let Message::SnapshotManifest(p) = &passed[0].1 else { panic!() };
        assert_eq!(p.state_root, manifest.state_root);
        // ...until manifest corruption is switched on.
        m.set_corrupt_manifests(true);
        let out = m.mutate(ReplicaId(2), Message::SnapshotManifest(manifest.clone()));
        let Message::SnapshotManifest(t) = &out[0].1 else { panic!() };
        assert_ne!(t.state_root, manifest.state_root);
        assert_ne!(t.state_key(), manifest.state_key(), "excluded from honest agreement");
        assert!(t.well_formed(), "still structurally valid — only agreement rejects it");
    }

    #[test]
    fn forge_builds_a_verifiable_fork_chain() {
        let mut m = mutator(AdversaryStrategy::ForgeQuorum);
        assert!(m.maybe_forge(View(2)).is_none(), "not before the trigger view");
        let msgs = m.maybe_forge(View(8)).expect("forged at view 8");
        assert_eq!(msgs.len(), 4, "proposed to every replica");
        assert!(m.maybe_forge(View(9)).is_none(), "forges exactly once");
        let Message::Propose(p) = &msgs[0].1 else { panic!() };
        // The proposed view is led by the adversary and the forged
        // certificate chain verifies against the deployment registry.
        assert_eq!(cfg().leader_of(p.block.view), ReplicaId(1));
        let reg = PublicKeyRegistry::derive(0, 4);
        assert!(p.block.justify.verify(&reg, 3), "forged quorum cert verifies");
        let x1 = m.forged_block(p.block.justify.block).expect("X1 served on fetch");
        assert!(x1.justify.verify(&reg, 3));
        let x0 = m.forged_block(x1.justify.block).expect("X0 served on fetch");
        assert!(x0.justify.is_genesis());
        assert_ne!(x0.id(), Block::genesis_id());
        assert!(m.forged_block(BlockId::test(42)).is_none());
    }
}
