//! Backup-side Byzantine adversaries (§7.3 "Failure Resiliency",
//! Appendix A).
//!
//! `hs1-core::byzantine` models *leader-side* misbehavior — strategies the
//! engines consult at propose time. This crate supplies the complementary
//! half of the fault model: a **message-mutation layer** that wraps any
//! engine and corrupts, injects, or withholds its *outbound* traffic, so
//! one implementation serves all five protocol kinds in both the
//! deterministic simulator and the TCP stack.
//!
//! The two pieces:
//!
//! * [`AdversaryMutator`] — a pure, deterministic transformation of
//!   `(destination, message)` pairs. It never touches engine state, which
//!   is what pins the design's key property: an adversary's *local*
//!   ledger stays honest (it processes inbound traffic like everyone
//!   else), only its externally visible behavior lies. Transports that
//!   own message paths outside the engine (e.g. `hs1-net`'s snapshot
//!   server) route those responses through the same mutator.
//! * [`AdversaryEngine`] — a [`hs1_core::Replica`] wrapper applying the
//!   mutator to every `Send`/`Broadcast` action an inner engine emits
//!   (loopback excluded: a process does not corrupt messages to itself).
//!
//! In-model strategies (any ≤ f of them must be absorbed at n = 3f + 1):
//!
//! | strategy | what it corrupts | defense it stresses |
//! |---|---|---|
//! | [`AdversaryStrategy::Equivocate`] | double-votes across conflicting branches | per-sender vote dedup, quorum intersection |
//! | [`AdversaryStrategy::WithholdVotes`] | strips/withholds vote shares | quorum formation from the honest n − f |
//! | [`AdversaryStrategy::StaleCert`] | advertises stale certs, wishes, and TCs | rank checks, pacemaker re-wish/TC-answer path |
//! | [`AdversaryStrategy::CorruptFetch`] | tampers `FetchResp` bodies | content-addressed ids + `FetchTracker` in-flight gating |
//! | [`AdversaryStrategy::CorruptSnapshot`] | corrupts snapshot chunks (and, when enabled, manifests) | chunk CRC index, `f+1` manifest agreement, ban/rotate |
//!
//! [`AdversaryStrategy::ForgeQuorum`] is deliberately *beyond* the fault
//! model: it forges other replicas' vote shares — possible only because
//! this workspace substitutes HMAC for a real signature scheme — to make
//! honest replicas commit a fabricated fork. It exists so the chaos
//! gate's `--inject forge` canary can prove the safety oracles trip on a
//! genuine violation, not to model a realizable attack.

pub mod engine;
pub mod mutator;

pub use engine::AdversaryEngine;
pub use mutator::{AdversaryMutator, MutationStats};

/// The strategy an adversarial backup plays on its outbound traffic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AdversaryStrategy {
    /// Double-vote: for every vote share sent, also send a validly signed
    /// share for a *conflicting* block at the same (view, slot).
    Equivocate,
    /// Never contribute vote shares (NewView messages still flow, with
    /// their vote stripped — stealthier than silence).
    WithholdVotes,
    /// Advertise stale certificates in NewView/NewSlot/Reject, re-wish
    /// for old epochs, and replay stale TCs in the pacemaker path.
    StaleCert,
    /// Serve tampered `FetchResp` bodies whose content hash no longer
    /// matches the requested block id.
    CorruptFetch,
    /// Serve snapshot chunks whose bytes fail the manifest's CRC index
    /// (and, with [`AdversaryMutator::set_corrupt_manifests`], manifests
    /// whose state identity diverges from the honest cluster's).
    CorruptSnapshot,
    /// **Beyond the fault model** (gate canary only): forge a quorum
    /// certificate chain for a fabricated fork and propose it, forcing
    /// honest replicas into a safety violation the oracles must catch.
    ForgeQuorum,
}

impl AdversaryStrategy {
    /// Every strategy, including the beyond-model canary.
    pub const ALL: [AdversaryStrategy; 6] = [
        AdversaryStrategy::Equivocate,
        AdversaryStrategy::WithholdVotes,
        AdversaryStrategy::StaleCert,
        AdversaryStrategy::CorruptFetch,
        AdversaryStrategy::CorruptSnapshot,
        AdversaryStrategy::ForgeQuorum,
    ];

    /// The strategies inside the ≤ f fault model (what chaos plans draw
    /// from): any schedule of these must be absorbed without
    /// honest-replica divergence.
    pub const IN_MODEL: [AdversaryStrategy; 5] = [
        AdversaryStrategy::Equivocate,
        AdversaryStrategy::WithholdVotes,
        AdversaryStrategy::StaleCert,
        AdversaryStrategy::CorruptFetch,
        AdversaryStrategy::CorruptSnapshot,
    ];

    /// Compact token used by the chaos plan text spec.
    pub fn token(&self) -> &'static str {
        match self {
            AdversaryStrategy::Equivocate => "eq",
            AdversaryStrategy::WithholdVotes => "wh",
            AdversaryStrategy::StaleCert => "st",
            AdversaryStrategy::CorruptFetch => "cf",
            AdversaryStrategy::CorruptSnapshot => "cs",
            AdversaryStrategy::ForgeQuorum => "fq",
        }
    }

    /// Inverse of [`AdversaryStrategy::token`].
    pub fn parse(s: &str) -> Option<AdversaryStrategy> {
        Self::ALL.into_iter().find(|k| k.token() == s)
    }

    /// Human-readable name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryStrategy::Equivocate => "equivocate",
            AdversaryStrategy::WithholdVotes => "withhold-votes",
            AdversaryStrategy::StaleCert => "stale-cert",
            AdversaryStrategy::CorruptFetch => "corrupt-fetch",
            AdversaryStrategy::CorruptSnapshot => "corrupt-snapshot",
            AdversaryStrategy::ForgeQuorum => "forge-quorum",
        }
    }

    /// Is this strategy inside the ≤ f fault model?
    pub fn in_model(&self) -> bool {
        !matches!(self, AdversaryStrategy::ForgeQuorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_roundtrip() {
        for s in AdversaryStrategy::ALL {
            assert_eq!(AdversaryStrategy::parse(s.token()), Some(s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(AdversaryStrategy::parse("nope"), None);
    }

    #[test]
    fn model_membership() {
        assert!(AdversaryStrategy::Equivocate.in_model());
        assert!(!AdversaryStrategy::ForgeQuorum.in_model());
        assert!(AdversaryStrategy::IN_MODEL.iter().all(|s| s.in_model()));
        assert_eq!(AdversaryStrategy::ALL.len(), AdversaryStrategy::IN_MODEL.len() + 1);
    }
}
