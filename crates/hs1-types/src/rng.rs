//! Deterministic pseudo-random number generation (splitmix64).
//!
//! Every stochastic choice in the workspace — workload keys, latency
//! jitter, client think times — flows through this generator so that a
//! scenario seed fully determines a simulation run. splitmix64 is tiny,
//! fast, passes BigCrush when used as a 64-bit generator, and has a
//! convenient `fork` operation for creating decorrelated substreams.

/// splitmix64 generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method for lack of bias.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be nonzero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derive a decorrelated child stream tagged by `stream`.
    pub fn fork(&self, stream: u64) -> SplitMix64 {
        let mut child = SplitMix64::new(self.state ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Burn one output so adjacent stream ids decorrelate immediately.
        child.next_u64();
        child
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_values() {
        // Reference values for seed 0 from the canonical splitmix64 code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn range_is_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} near 0.5");
    }

    #[test]
    fn forked_streams_differ() {
        let base = SplitMix64::new(42);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffled order changed");
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut r = SplitMix64::new(11);
        let s = r.sample_indices(31, 10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(s.iter().all(|&i| i < 31));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
