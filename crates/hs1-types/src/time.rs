//! Virtual time. Engines are written against `SimTime`/`SimDuration` so the
//! same state machines run under the discrete-event simulator (virtual
//! clock) and the TCP runtime (wall clock mapped onto `SimTime`).

use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since deployment start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference between two instants.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s * 1e9) as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::fmt::Debug for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0 / 1000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.0, 5_000_000);
        assert_eq!((t + SimDuration::from_micros(1)).0, 5_001_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturating
        assert_eq!((t - SimDuration::from_secs(1)), SimTime::ZERO); // saturating
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(1500).as_millis_f64(), 1500.0);
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
        assert!((SimTime(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_millis(10) * 3, SimDuration::from_millis(30));
        assert_eq!(SimDuration::from_millis(10) / 2, SimDuration::from_millis(5));
    }
}
