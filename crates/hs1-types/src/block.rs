//! Blocks and block identifiers.
//!
//! A block carries a batch of client transactions, the certificate it
//! extends (`justify`), and — in slotted HotStuff-1 first-slot proposals
//! using "way (ii)" (§6.1) — the hash of an uncertified *carry block*. The
//! chain parent is the carried block when present, otherwise the justified
//! block, so ancestry walks are uniform across protocols.

use std::sync::{Arc, OnceLock};

use crate::cert::Certificate;
use crate::codec::Encode;
use crate::ids::{Rank, ReplicaId, Slot, View};
use crate::tx::Transaction;
use hs1_crypto::{Digest, Sha256};

/// A block identifier: the SHA-256 digest of the block's canonical
/// encoding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub Digest);

impl BlockId {
    pub const NONE: BlockId = BlockId(Digest::ZERO);

    /// A deterministic synthetic id for unit tests.
    pub fn test(tag: u64) -> BlockId {
        let mut h = Sha256::new();
        h.update(b"test-block-id");
        h.update_u64(tag);
        BlockId(h.finalize())
    }
}

impl std::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B#{}", self.0.short_hex())
    }
}

/// A proposal block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Cached content hash; computed at construction and after decode.
    id: BlockId,
    pub proposer: ReplicaId,
    pub view: View,
    /// Slot within the view (1 for non-slotted protocols, 0 for genesis).
    pub slot: Slot,
    /// Chain parent: the carried block if `carry` is set, else the
    /// justified block.
    pub parent: BlockId,
    /// The certificate this block extends.
    pub justify: Certificate,
    /// Slotted first-slot proposals, way (ii): hash `H_u` of the lowest
    /// uncertified block being carried (Definition 6.3). `parent` equals
    /// this hash when present.
    pub carry: Option<BlockId>,
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Build a block that directly extends `justify` (no carry).
    pub fn new(
        proposer: ReplicaId,
        view: View,
        slot: Slot,
        justify: Certificate,
        txs: Vec<Transaction>,
    ) -> Block {
        let parent = justify.block;
        Self::assemble(proposer, view, slot, parent, justify, None, txs)
    }

    /// Build a first-slot block that extends `justify` but *carries* the
    /// uncertified block `carry` (slotted way (ii)); the carried block is
    /// the chain parent.
    pub fn new_with_carry(
        proposer: ReplicaId,
        view: View,
        slot: Slot,
        justify: Certificate,
        carry: BlockId,
        txs: Vec<Transaction>,
    ) -> Block {
        Self::assemble(proposer, view, slot, carry, justify, Some(carry), txs)
    }

    fn assemble(
        proposer: ReplicaId,
        view: View,
        slot: Slot,
        parent: BlockId,
        justify: Certificate,
        carry: Option<BlockId>,
        txs: Vec<Transaction>,
    ) -> Block {
        let mut b = Block { id: BlockId::NONE, proposer, view, slot, parent, justify, carry, txs };
        b.id = b.compute_id();
        b
    }

    /// Recompute the content hash (used after decoding).
    pub(crate) fn compute_id(&self) -> BlockId {
        let mut h = Sha256::new();
        h.update(b"hs1-block");
        h.update(&[match self.carry {
            Some(_) => 1,
            None => 0,
        }]);
        h.update_u64(self.proposer.0 as u64);
        h.update_u64(self.view.0);
        h.update_u64(self.slot.0 as u64);
        h.update(&self.parent.0 .0);
        if let Some(c) = self.carry {
            h.update(&c.0 .0);
        }
        // The justify certificate is part of block identity (including its
        // aggregated signatures, exactly as proposed by the leader).
        let mut cert_bytes = Vec::with_capacity(64 + self.justify.sigs.len() * 40);
        self.justify.encode(&mut cert_bytes);
        h.update_u64(cert_bytes.len() as u64);
        h.update(&cert_bytes);
        h.update_u64(self.txs.len() as u64);
        let mut tx_bytes = Vec::with_capacity(self.txs.len() * 34);
        for tx in &self.txs {
            tx.encode(&mut tx_bytes);
        }
        h.update(&tx_bytes);
        BlockId(h.finalize())
    }

    pub fn id(&self) -> BlockId {
        self.id
    }

    pub fn rank(&self) -> Rank {
        Rank::new(self.view, self.slot)
    }

    pub fn is_genesis(&self) -> bool {
        self.view == View::GENESIS && self.slot == Slot::GENESIS
    }

    /// The hard-coded genesis block (view 0, slot 0, empty batch). Its
    /// justify certificate points at the all-zero block id.
    pub fn genesis() -> Arc<Block> {
        static GENESIS: OnceLock<Arc<Block>> = OnceLock::new();
        GENESIS
            .get_or_init(|| {
                let justify = Certificate {
                    kind: crate::cert::CertKind::Quorum,
                    view: View::GENESIS,
                    slot: Slot::GENESIS,
                    block: BlockId::NONE,
                    sigs: Vec::new(),
                };
                Arc::new(Block::assemble(
                    ReplicaId(0),
                    View::GENESIS,
                    Slot::GENESIS,
                    BlockId::NONE,
                    justify,
                    None,
                    Vec::new(),
                ))
            })
            .clone()
    }

    /// The genesis block id (what [`Certificate::genesis`] certifies).
    pub fn genesis_id() -> BlockId {
        Self::genesis().id()
    }

    /// Modeled wire size in bytes: header + justify signature list + an
    /// 8-byte reference per transaction. Client payloads are disseminated
    /// to replicas off the consensus critical path (clients broadcast
    /// requests; proposals reference them by digest), which is the only
    /// configuration consistent with the paper's batch-5000 throughput on
    /// 1 Gbit/s NICs (Fig. 8c). The simulator charges this size against
    /// the proposer's NIC.
    pub fn modeled_wire_size(&self) -> usize {
        let header = 96;
        let cert = 64 + self.justify.sigs.len() * 40;
        header + cert + self.txs.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transaction;

    #[test]
    fn genesis_is_stable_and_self_consistent() {
        let g1 = Block::genesis();
        let g2 = Block::genesis();
        assert_eq!(g1.id(), g2.id());
        assert!(g1.is_genesis());
        assert_eq!(g1.parent, BlockId::NONE);
        assert_eq!(Certificate::genesis().block, Block::genesis_id());
        assert_eq!(g1.rank(), Rank::GENESIS);
    }

    #[test]
    fn id_covers_content() {
        let justify = Certificate::genesis();
        let base = Block::new(ReplicaId(1), View(1), Slot(1), justify.clone(), vec![]);
        let other_view = Block::new(ReplicaId(1), View(2), Slot(1), justify.clone(), vec![]);
        let other_txs = Block::new(
            ReplicaId(1),
            View(1),
            Slot(1),
            justify.clone(),
            vec![Transaction::kv_write(1, 1, 2, 3)],
        );
        let other_proposer = Block::new(ReplicaId(2), View(1), Slot(1), justify, vec![]);
        assert_ne!(base.id(), other_view.id());
        assert_ne!(base.id(), other_txs.id());
        assert_ne!(base.id(), other_proposer.id());
    }

    #[test]
    fn carry_changes_parent_and_id() {
        let justify = Certificate::genesis();
        let plain = Block::new(ReplicaId(0), View(3), Slot(1), justify.clone(), vec![]);
        let carried = Block::new_with_carry(
            ReplicaId(0),
            View(3),
            Slot(1),
            justify,
            BlockId::test(77),
            vec![],
        );
        assert_eq!(plain.parent, Block::genesis_id());
        assert_eq!(carried.parent, BlockId::test(77));
        assert_eq!(carried.carry, Some(BlockId::test(77)));
        assert_ne!(plain.id(), carried.id());
    }

    #[test]
    fn wire_size_grows_with_batch() {
        // Proposals carry 8-byte per-transaction references (payload is
        // disseminated off the critical path — see modeled_wire_size).
        let justify = Certificate::genesis();
        let small = Block::new(ReplicaId(0), View(1), Slot(1), justify.clone(), vec![]);
        let txs: Vec<_> = (0..100).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        let big = Block::new(ReplicaId(0), View(1), Slot(1), justify, txs);
        assert_eq!(big.modeled_wire_size(), small.modeled_wire_size() + 100 * 8);
    }
}
