//! System configuration shared by engines, simulator and TCP runtime.

use crate::ids::{ReplicaId, View};
use crate::time::SimDuration;

/// Which consensus protocol a deployment runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolKind {
    /// Chained HotStuff (3-chain commit): 7 half-phases to consensus.
    HotStuff,
    /// Streamlined HotStuff-2 (2-chain / prefix commit): 5 half-phases.
    HotStuff2,
    /// Basic (non-streamlined) HotStuff-1 (paper Fig. 2).
    HotStuff1Basic,
    /// Streamlined HotStuff-1 (paper Fig. 4): 3 half-phases to the
    /// speculative client response.
    HotStuff1,
    /// Streamlined HotStuff-1 with adaptive slotting (paper Figs. 6–7).
    HotStuff1Slotted,
}

impl ProtocolKind {
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::HotStuff,
        ProtocolKind::HotStuff2,
        ProtocolKind::HotStuff1Basic,
        ProtocolKind::HotStuff1,
        ProtocolKind::HotStuff1Slotted,
    ];

    /// The four protocols compared in the paper's evaluation (§7).
    pub const EVALUATED: [ProtocolKind; 4] = [
        ProtocolKind::HotStuff,
        ProtocolKind::HotStuff2,
        ProtocolKind::HotStuff1,
        ProtocolKind::HotStuff1Slotted,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::HotStuff => "HotStuff",
            ProtocolKind::HotStuff2 => "HotStuff-2",
            ProtocolKind::HotStuff1Basic => "HotStuff-1(basic)",
            ProtocolKind::HotStuff1 => "HotStuff-1",
            ProtocolKind::HotStuff1Slotted => "HotStuff-1(slotting)",
        }
    }

    /// HotStuff-1 clients collect `n − f` speculative responses; the
    /// baselines collect `f + 1` committed responses (§3, §7 "Metrics").
    pub fn client_needs_nf_quorum(&self) -> bool {
        matches!(
            self,
            ProtocolKind::HotStuff1Basic | ProtocolKind::HotStuff1 | ProtocolKind::HotStuff1Slotted
        )
    }

    /// Consensus half-phases from proposal to the client-facing response
    /// being sent (excludes the request/response client hops): the latency
    /// ladder of §7 "Baselines".
    pub fn half_phases(&self) -> u32 {
        match self {
            ProtocolKind::HotStuff => 7,
            ProtocolKind::HotStuff2 => 5,
            ProtocolKind::HotStuff1Basic => 3,
            ProtocolKind::HotStuff1 => 3,
            ProtocolKind::HotStuff1Slotted => 3,
        }
    }
}

/// Deployment-wide constants.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of replicas; `n >= 3f + 1`.
    pub n: usize,
    /// Max transactions per block.
    pub batch_size: usize,
    /// View timer length τ (pacemaker Fig. 3; also the per-view window of
    /// slotted HotStuff-1).
    pub view_timer: SimDuration,
    /// Assumed transmission delay bound Δ (`ShareTimer(v) = StartTime[v] + 3Δ`).
    pub delta: SimDuration,
    /// Seed from which every replica keypair is derived.
    pub deployment_seed: u64,
}

impl SystemConfig {
    pub fn new(n: usize) -> SystemConfig {
        assert!(n >= 4, "need n >= 4 (f >= 1)");
        SystemConfig {
            n,
            batch_size: 100,
            view_timer: SimDuration::from_millis(10),
            delta: SimDuration::from_millis(1),
            deployment_seed: 0,
        }
    }

    /// Maximum tolerated faults: `f = ⌊(n−1)/3⌋`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Certificate quorum `n − f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f()
    }

    /// Round-robin leader of a view: `v mod n`.
    pub fn leader_of(&self, view: View) -> ReplicaId {
        ReplicaId((view.0 % self.n as u64) as u32)
    }

    /// Pacemaker epoch length `f + 1` (§4.2.1).
    pub fn epoch_len(&self) -> u64 {
        self.f() as u64 + 1
    }

    /// `true` if `view` begins a pacemaker epoch (`v mod (f+1) = 0`).
    pub fn is_epoch_start(&self, view: View) -> bool {
        view.0.is_multiple_of(self.epoch_len())
    }

    /// First view of the epoch containing `view`.
    pub fn epoch_start(&self, view: View) -> View {
        View(view.0 - view.0 % self.epoch_len())
    }

    /// The `f + 1` leaders of the epoch starting at `epoch_start`
    /// (Wish recipients, Fig. 3 line 10).
    pub fn epoch_leaders(&self, epoch_start: View) -> Vec<ReplicaId> {
        (0..self.epoch_len()).map(|k| self.leader_of(View(epoch_start.0 + k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        let c4 = SystemConfig::new(4);
        assert_eq!(c4.f(), 1);
        assert_eq!(c4.quorum(), 3);
        let c31 = SystemConfig::new(31);
        assert_eq!(c31.f(), 10);
        assert_eq!(c31.quorum(), 21);
        let c32 = SystemConfig::new(32);
        assert_eq!(c32.f(), 10);
        assert_eq!(c32.quorum(), 22);
        let c64 = SystemConfig::new(64);
        assert_eq!(c64.f(), 21);
        assert_eq!(c64.quorum(), 43);
    }

    #[test]
    fn leader_rotation() {
        let c = SystemConfig::new(4);
        assert_eq!(c.leader_of(View(0)), ReplicaId(0));
        assert_eq!(c.leader_of(View(5)), ReplicaId(1));
        assert_eq!(c.leader_of(View(7)), ReplicaId(3));
    }

    #[test]
    fn epochs() {
        let c = SystemConfig::new(4); // f = 1, epoch_len = 2
        assert_eq!(c.epoch_len(), 2);
        assert!(c.is_epoch_start(View(0)));
        assert!(!c.is_epoch_start(View(1)));
        assert!(c.is_epoch_start(View(2)));
        assert_eq!(c.epoch_start(View(5)), View(4));
        assert_eq!(c.epoch_leaders(View(4)), vec![ReplicaId(0), ReplicaId(1)]);
    }

    #[test]
    fn protocol_metadata() {
        assert!(ProtocolKind::HotStuff1.client_needs_nf_quorum());
        assert!(!ProtocolKind::HotStuff.client_needs_nf_quorum());
        assert!(ProtocolKind::HotStuff.half_phases() > ProtocolKind::HotStuff2.half_phases());
        assert!(ProtocolKind::HotStuff2.half_phases() > ProtocolKind::HotStuff1.half_phases());
        assert_eq!(ProtocolKind::EVALUATED.len(), 4);
        for p in ProtocolKind::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
