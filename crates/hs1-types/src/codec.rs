//! Hand-rolled binary wire format.
//!
//! The paper's artifact serializes with Protobuf; no serialization crate is
//! available offline, so this module defines a compact, explicit format:
//! fixed-width big-endian integers, length-prefixed sequences, and one tag
//! byte per enum variant. Round-tripping is property-tested in
//! `tests` below and again at the message level in `message.rs`.

use std::sync::Arc;

use crate::block::{Block, BlockId};
use crate::cert::{CertKind, Certificate, TimeoutCert};
use crate::ids::{ClientId, ReplicaId, Slot, View};
use crate::tx::{Transaction, TxId, TxOp};
use hs1_crypto::{Digest, Signature};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte was not recognized.
    BadTag { context: &'static str, tag: u8 },
    /// A length prefix exceeded the sanity limit.
    LengthOverflow { context: &'static str, len: u64 },
    /// Trailing bytes after a complete value in `decode_exact`.
    TrailingBytes { remaining: usize },
    /// Structurally inconsistent value (e.g. a block whose parent field
    /// disagrees with its justify/carry fields).
    Inconsistent { context: &'static str },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag { context, tag } => write!(f, "bad tag {tag} decoding {context}"),
            CodecError::LengthOverflow { context, len } => {
                write!(f, "length {len} too large decoding {context}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::Inconsistent { context } => {
                write!(f, "structurally inconsistent {context}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any decoded sequence length (defense against hostile
/// length prefixes on the TCP path).
const MAX_SEQ_LEN: u64 = 4 << 20;

/// Cursor over a byte slice for decoding.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn seq_len(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let len = self.u64()?;
        if len > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow { context, len });
        }
        Ok(len as usize)
    }
}

/// Serialize into a byte vector.
pub trait Encode {
    fn encode(&self, out: &mut Vec<u8>);

    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Deserialize from a [`Reader`].
pub trait Decode: Sized {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decode a complete value and require the input be fully consumed.
    fn decode_exact(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(CodecError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! int_codec {
    ($t:ty, $read:ident) => {
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                r.$read()
            }
        }
    };
}

int_codec!(u8, u8);
int_codec!(u16, u16);
int_codec!(u32, u32);
int_codec!(u64, u64);

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag { context: "Option", tag }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.seq_len("Vec")?;
        let mut v = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Crypto and id types
// ---------------------------------------------------------------------------

impl Encode for Digest {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Digest(r.take(32)?.try_into().expect("32 bytes")))
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Signature(r.take(32)?.try_into().expect("32 bytes")))
    }
}

macro_rules! newtype_codec {
    ($t:ident, $inner:ty) => {
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok($t(<$inner>::decode(r)?))
            }
        }
    };
}

newtype_codec!(ReplicaId, u32);
newtype_codec!(ClientId, u32);
newtype_codec!(View, u64);
newtype_codec!(Slot, u32);
newtype_codec!(BlockId, Digest);

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

impl Encode for TxId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.client.encode(out);
        self.seq.encode(out);
    }
}

impl Decode for TxId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TxId { client: ClientId::decode(r)?, seq: u64::decode(r)? })
    }
}

impl Encode for TxOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            TxOp::KvWrite { key, seed } => {
                out.push(0);
                key.encode(out);
                seed.encode(out);
            }
            TxOp::KvRead { key } => {
                out.push(1);
                key.encode(out);
            }
            TxOp::TpccNewOrder { warehouse, district, customer, lines, seed } => {
                out.push(2);
                warehouse.encode(out);
                district.encode(out);
                customer.encode(out);
                lines.encode(out);
                seed.encode(out);
            }
            TxOp::TpccPayment { warehouse, district, customer, amount_cents } => {
                out.push(3);
                warehouse.encode(out);
                district.encode(out);
                customer.encode(out);
                amount_cents.encode(out);
            }
            TxOp::Noop => out.push(4),
        }
    }
}

impl Decode for TxOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(TxOp::KvWrite { key: r.u64()?, seed: r.u64()? }),
            1 => Ok(TxOp::KvRead { key: r.u64()? }),
            2 => Ok(TxOp::TpccNewOrder {
                warehouse: r.u16()?,
                district: r.u8()?,
                customer: r.u16()?,
                lines: r.u8()?,
                seed: r.u64()?,
            }),
            3 => Ok(TxOp::TpccPayment {
                warehouse: r.u16()?,
                district: r.u8()?,
                customer: r.u16()?,
                amount_cents: r.u32()?,
            }),
            4 => Ok(TxOp::Noop),
            tag => Err(CodecError::BadTag { context: "TxOp", tag }),
        }
    }
}

impl Encode for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.op.encode(out);
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Transaction { id: TxId::decode(r)?, op: TxOp::decode(r)? })
    }
}

// ---------------------------------------------------------------------------
// Certificates and blocks
// ---------------------------------------------------------------------------

impl Encode for CertKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            CertKind::Quorum => out.push(0),
            CertKind::Commit => out.push(1),
            CertKind::NewSlot => out.push(2),
            CertKind::NewView { formed_in } => {
                out.push(3);
                formed_in.encode(out);
            }
        }
    }
}

impl Decode for CertKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(CertKind::Quorum),
            1 => Ok(CertKind::Commit),
            2 => Ok(CertKind::NewSlot),
            3 => Ok(CertKind::NewView { formed_in: View::decode(r)? }),
            tag => Err(CodecError::BadTag { context: "CertKind", tag }),
        }
    }
}

impl Encode for Certificate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.view.encode(out);
        self.slot.encode(out);
        self.block.encode(out);
        self.sigs.encode(out);
    }
}

impl Decode for Certificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Certificate {
            kind: CertKind::decode(r)?,
            view: View::decode(r)?,
            slot: Slot::decode(r)?,
            block: BlockId::decode(r)?,
            sigs: Vec::decode(r)?,
        })
    }
}

impl Encode for TimeoutCert {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.sigs.encode(out);
    }
}

impl Decode for TimeoutCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TimeoutCert { view: View::decode(r)?, sigs: Vec::decode(r)? })
    }
}

impl Encode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proposer.encode(out);
        self.view.encode(out);
        self.slot.encode(out);
        self.parent.encode(out);
        self.justify.encode(out);
        self.carry.encode(out);
        self.txs.encode(out);
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let proposer = ReplicaId::decode(r)?;
        let view = View::decode(r)?;
        let slot = Slot::decode(r)?;
        let parent = BlockId::decode(r)?;
        let justify = Certificate::decode(r)?;
        let carry = Option::<BlockId>::decode(r)?;
        let txs = Vec::<Transaction>::decode(r)?;
        // Reconstruct through the public constructors so the cached id is
        // recomputed from content (a forged id field cannot survive), and
        // reject encodings whose parent disagrees with justify/carry.
        let block = match carry {
            Some(c) => Block::new_with_carry(proposer, view, slot, justify, c, txs),
            None => Block::new(proposer, view, slot, justify, txs),
        };
        if block.parent != parent {
            return Err(CodecError::Inconsistent { context: "Block.parent" });
        }
        Ok(block)
    }
}

impl Encode for Arc<Block> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl Decode for Arc<Block> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Arc::new(Block::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertKind;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encoded();
        let back = T::decode_exact(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&0xabcdu16);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&(ReplicaId(4), View(9)));
    }

    #[test]
    fn id_roundtrips() {
        roundtrip(&ReplicaId(3));
        roundtrip(&ClientId(12));
        roundtrip(&View(99));
        roundtrip(&Slot(5));
        roundtrip(&BlockId::test(1));
    }

    #[test]
    fn tx_roundtrips() {
        roundtrip(&Transaction::kv_write(7, 9, 1234, 5678));
        roundtrip(&Transaction::new(
            TxId::new(ClientId(1), 2),
            TxOp::TpccNewOrder { warehouse: 3, district: 4, customer: 5, lines: 6, seed: 7 },
        ));
        roundtrip(&Transaction::new(
            TxId::new(ClientId(1), 2),
            TxOp::TpccPayment { warehouse: 3, district: 4, customer: 5, amount_cents: 600 },
        ));
        roundtrip(&Transaction::new(TxId::new(ClientId(0), 0), TxOp::Noop));
        roundtrip(&Transaction::new(TxId::new(ClientId(0), 0), TxOp::KvRead { key: 5 }));
    }

    #[test]
    fn cert_roundtrips() {
        roundtrip(&Certificate::genesis());
        let c = Certificate {
            kind: CertKind::NewView { formed_in: View(8) },
            view: View(5),
            slot: Slot(2),
            block: BlockId::test(3),
            sigs: vec![(ReplicaId(0), Signature([7u8; 32])), (ReplicaId(1), Signature([9u8; 32]))],
        };
        roundtrip(&c);
    }

    #[test]
    fn block_roundtrip_preserves_id() {
        let txs = (0..10).map(|i| Transaction::kv_write(1, i, i * 3, i)).collect();
        let b = Block::new(ReplicaId(2), View(4), Slot(1), Certificate::genesis(), txs);
        let bytes = b.encoded();
        let back = Block::decode_exact(&bytes).expect("decode");
        assert_eq!(back, b);
        assert_eq!(back.id(), b.id());
    }

    #[test]
    fn carry_block_roundtrip() {
        let b = Block::new_with_carry(
            ReplicaId(2),
            View(4),
            Slot(1),
            Certificate::genesis(),
            BlockId::test(5),
            vec![],
        );
        let back = Block::decode_exact(&b.encoded()).expect("decode");
        assert_eq!(back, b);
        assert_eq!(back.id(), b.id());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let b = Block::new(ReplicaId(2), View(4), Slot(1), Certificate::genesis(), vec![]);
        let bytes = b.encoded();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Block::decode_exact(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = View(3).encoded();
        bytes.push(0xff);
        assert_eq!(View::decode_exact(&bytes), Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut bytes = Vec::new();
        (u64::MAX).encode(&mut bytes); // absurd Vec length
        assert!(matches!(Vec::<u64>::decode_exact(&bytes), Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn bad_enum_tag_rejected() {
        assert!(matches!(
            TxOp::decode_exact(&[250]),
            Err(CodecError::BadTag { context: "TxOp", .. })
        ));
        assert!(matches!(
            CertKind::decode_exact(&[9]),
            Err(CodecError::BadTag { context: "CertKind", .. })
        ));
    }
}
