//! Certificates: quorums of signature shares over a block at a (view,
//! slot) position, plus pacemaker timeout certificates.
//!
//! Following the paper's implementation note (§7), a certificate is a list
//! of `n − f` individual signatures rather than a single threshold
//! signature; verification checks that at least a quorum of *distinct*
//! replicas signed the same statement.
//!
//! Certificate kinds map onto the protocol set:
//!
//! * [`CertKind::Quorum`] — prepare-certificate `P(v)` (basic HotStuff-1),
//!   the generic certificate of the streamlined protocols, and HotStuff's
//!   QC.
//! * [`CertKind::Commit`] — commit-certificate `C(v)` (basic HotStuff-1).
//! * [`CertKind::NewSlot`] / [`CertKind::NewView`] — the dual certificates
//!   of slotted HotStuff-1 (§6.1); `NewView` carries the view `fv` in
//!   which it was formed.

use crate::block::BlockId;
use crate::ids::{Rank, ReplicaId, Slot, View};
use hs1_crypto::{PublicKeyRegistry, Signature};

/// Signature domain tags (domain separation across vote contexts).
pub mod domains {
    /// Vote on a leader proposal (forms `Quorum` certificates).
    pub const PROPOSE_VOTE: u8 = 1;
    /// Commit vote on a prepare-certificate (basic HotStuff-1's second
    /// phase; forms `Commit` certificates).
    pub const COMMIT_VOTE: u8 = 2;
    /// New-Slot vote (slotted HotStuff-1; forms `NewSlot` certificates).
    pub const NEW_SLOT: u8 = 3;
    /// New-View vote (slotted HotStuff-1; forms `NewView` certificates).
    pub const NEW_VIEW: u8 = 4;
    /// Pacemaker Wish (forms timeout certificates).
    pub const WISH: u8 = 5;
}

/// What a certificate asserts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CertKind {
    /// A quorum prepared the block (prepare-certificate / generic QC).
    Quorum,
    /// A quorum commit-voted the prepare-certificate (basic HotStuff-1).
    Commit,
    /// A quorum voted to advance to the next slot (slotted HotStuff-1).
    NewSlot,
    /// A quorum's NewView votes named this block as their highest; formed
    /// by the leader of `formed_in` (the `fv` annotation of §6.1).
    NewView { formed_in: View },
}

impl CertKind {
    /// The signature domain whose shares aggregate into this kind.
    pub fn domain(&self) -> u8 {
        match self {
            CertKind::Quorum => domains::PROPOSE_VOTE,
            CertKind::Commit => domains::COMMIT_VOTE,
            CertKind::NewSlot => domains::NEW_SLOT,
            CertKind::NewView { .. } => domains::NEW_VIEW,
        }
    }
}

/// A certificate: `sigs` is the aggregated list of shares. Shares sign the
/// canonical [`Certificate::signing_bytes`] statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    pub kind: CertKind,
    /// View of the certified block.
    pub view: View,
    /// Slot of the certified block (always 1 in non-slotted protocols;
    /// 0 for genesis).
    pub slot: Slot,
    /// The certified block.
    pub block: BlockId,
    pub sigs: Vec<(ReplicaId, Signature)>,
}

impl Certificate {
    /// The hard-coded genesis certificate every replica accepts
    /// (paper §4.1, "Note"). It certifies the genesis block with an empty
    /// signature list.
    pub fn genesis() -> Certificate {
        Certificate {
            kind: CertKind::Quorum,
            view: View::GENESIS,
            slot: Slot::GENESIS,
            block: crate::block::Block::genesis_id(),
            sigs: Vec::new(),
        }
    }

    pub fn is_genesis(&self) -> bool {
        self.view == View::GENESIS && self.slot == Slot::GENESIS
    }

    /// Lexicographic (view, slot) rank (Definition "ordered
    /// lexicographically", §6.1). Certificate comparisons throughout the
    /// protocols use this rank.
    pub fn rank(&self) -> Rank {
        Rank::new(self.view, self.slot)
    }

    /// The exact bytes a share signs for a certificate of `kind` over
    /// block `block` at (view, slot). For `NewView` certificates the
    /// forming view is part of the statement, which is what pins the `fv`
    /// annotation cryptographically.
    pub fn signing_bytes(kind: CertKind, view: View, slot: Slot, block: BlockId) -> [u8; 53] {
        let mut out = [0u8; 53];
        out[0] = kind.domain();
        let formed_in = match kind {
            CertKind::NewView { formed_in } => formed_in.0,
            _ => 0,
        };
        out[1..9].copy_from_slice(&formed_in.to_be_bytes());
        out[9..17].copy_from_slice(&view.0.to_be_bytes());
        out[17..21].copy_from_slice(&slot.0.to_be_bytes());
        out[21..53].copy_from_slice(&block.0 .0);
        out
    }

    /// Bytes this certificate's shares must have signed.
    pub fn own_signing_bytes(&self) -> [u8; 53] {
        Self::signing_bytes(self.kind, self.view, self.slot, self.block)
    }

    /// Verify the certificate: at least `quorum` *distinct* valid shares
    /// (genesis verifies trivially — it is hard-coded at every replica).
    pub fn verify(&self, registry: &PublicKeyRegistry, quorum: usize) -> bool {
        if self.is_genesis() {
            return self.block == crate::block::Block::genesis_id();
        }
        let bytes = self.own_signing_bytes();
        let domain = self.kind.domain();
        let mut seen: Vec<u32> = Vec::with_capacity(self.sigs.len());
        let mut valid = 0usize;
        for (rid, sig) in &self.sigs {
            if seen.contains(&rid.0) {
                continue;
            }
            seen.push(rid.0);
            if registry.verify(rid.0, domain, &bytes, sig) {
                valid += 1;
            }
        }
        valid >= quorum
    }

    /// A compact digest of the certificate identity (kind/view/slot/block)
    /// for logging; does not cover signatures.
    pub fn identity(&self) -> (u8, View, Slot, BlockId) {
        (self.kind.domain(), self.view, self.slot, self.block)
    }
}

/// A pacemaker timeout certificate: `n − f` Wish shares for a view
/// (paper Fig. 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimeoutCert {
    pub view: View,
    pub sigs: Vec<(ReplicaId, Signature)>,
}

impl TimeoutCert {
    pub fn signing_bytes(view: View) -> [u8; 9] {
        let mut out = [0u8; 9];
        out[0] = domains::WISH;
        out[1..9].copy_from_slice(&view.0.to_be_bytes());
        out
    }

    pub fn verify(&self, registry: &PublicKeyRegistry, quorum: usize) -> bool {
        let bytes = Self::signing_bytes(self.view);
        let mut seen: Vec<u32> = Vec::with_capacity(self.sigs.len());
        let mut valid = 0usize;
        for (rid, sig) in &self.sigs {
            if seen.contains(&rid.0) {
                continue;
            }
            seen.push(rid.0);
            if registry.verify(rid.0, domains::WISH, &bytes, sig) {
                valid += 1;
            }
        }
        valid >= quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_crypto::KeyPair;

    fn sign_cert(
        kind: CertKind,
        view: View,
        slot: Slot,
        block: BlockId,
        signers: &[u32],
    ) -> Certificate {
        let bytes = Certificate::signing_bytes(kind, view, slot, block);
        let sigs = signers
            .iter()
            .map(|&i| (ReplicaId(i), KeyPair::derive(0, i).sign(kind.domain(), &bytes)))
            .collect();
        Certificate { kind, view, slot, block, sigs }
    }

    #[test]
    fn genesis_verifies_with_no_sigs() {
        let reg = PublicKeyRegistry::derive(0, 4);
        assert!(Certificate::genesis().verify(&reg, 3));
        assert!(Certificate::genesis().is_genesis());
    }

    #[test]
    fn quorum_cert_verifies() {
        let reg = PublicKeyRegistry::derive(0, 4);
        let c = sign_cert(CertKind::Quorum, View(3), Slot(1), BlockId::test(9), &[0, 1, 2]);
        assert!(c.verify(&reg, 3));
        assert!(!c.verify(&reg, 4));
    }

    #[test]
    fn duplicate_signers_do_not_count_twice() {
        let reg = PublicKeyRegistry::derive(0, 4);
        let mut c = sign_cert(CertKind::Quorum, View(3), Slot(1), BlockId::test(9), &[0, 1]);
        let dup = c.sigs[0];
        c.sigs.push(dup);
        assert!(!c.verify(&reg, 3), "2 distinct + 1 duplicate != quorum 3");
    }

    #[test]
    fn wrong_kind_share_rejected() {
        let reg = PublicKeyRegistry::derive(0, 4);
        // Shares signed for NEW_SLOT must not verify as a Quorum cert:
        // dual-certificate separation (§6.1).
        let bytes =
            Certificate::signing_bytes(CertKind::NewSlot, View(3), Slot(2), BlockId::test(9));
        let sigs: Vec<_> = (0..3)
            .map(|i| (ReplicaId(i), KeyPair::derive(0, i).sign(domains::NEW_SLOT, &bytes)))
            .collect();
        let forged = Certificate {
            kind: CertKind::Quorum,
            view: View(3),
            slot: Slot(2),
            block: BlockId::test(9),
            sigs,
        };
        assert!(!forged.verify(&reg, 3));
    }

    #[test]
    fn newview_formed_in_is_bound() {
        let reg = PublicKeyRegistry::derive(0, 4);
        let k1 = CertKind::NewView { formed_in: View(7) };
        let c = sign_cert(k1, View(5), Slot(3), BlockId::test(1), &[0, 1, 2]);
        assert!(c.verify(&reg, 3));
        // Re-labeling the forming view invalidates every share.
        let mut relabeled = c.clone();
        relabeled.kind = CertKind::NewView { formed_in: View(8) };
        assert!(!relabeled.verify(&reg, 3));
    }

    #[test]
    fn rank_ordering() {
        let a = sign_cert(CertKind::Quorum, View(2), Slot(4), BlockId::test(1), &[0]);
        let b = sign_cert(CertKind::Quorum, View(3), Slot(1), BlockId::test(2), &[0]);
        assert!(a.rank() < b.rank());
        let c = sign_cert(CertKind::NewSlot, View(3), Slot(2), BlockId::test(3), &[0]);
        assert!(b.rank() < c.rank());
    }

    #[test]
    fn timeout_cert_verifies() {
        let reg = PublicKeyRegistry::derive(0, 4);
        let bytes = TimeoutCert::signing_bytes(View(9));
        let sigs: Vec<_> = (0..3)
            .map(|i| (ReplicaId(i), KeyPair::derive(0, i).sign(domains::WISH, &bytes)))
            .collect();
        let tc = TimeoutCert { view: View(9), sigs };
        assert!(tc.verify(&reg, 3));
        let mut bad = tc.clone();
        bad.view = View(10);
        assert!(!bad.verify(&reg, 3));
    }
}
