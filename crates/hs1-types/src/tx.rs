//! Transactions. Kept `Copy` and fixed-size (~32 bytes) so that blocks of
//! thousands of transactions stay cheap to clone/share inside the
//! simulator; the *wire* cost of a transaction is modeled separately by the
//! network cost model.

use crate::ids::ClientId;

/// Transaction identifier: issuing client plus a per-client sequence
/// number. Globally unique because clients are unique.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxId {
    pub client: ClientId,
    pub seq: u64,
}

impl TxId {
    pub fn new(client: ClientId, seq: u64) -> TxId {
        TxId { client, seq }
    }
}

/// The operation a transaction performs. YCSB operations target the KV
/// executor; TPC-C operations target the warehouse executor. `seed`
/// parameters deterministically expand into full payloads at execution
/// time, so storing a transaction costs a few words regardless of the
/// modeled payload size.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOp {
    /// YCSB-style write of a derived value to `key`.
    KvWrite { key: u64, seed: u64 },
    /// YCSB-style read of `key` (result folded into the reply digest).
    KvRead { key: u64 },
    /// TPC-C NewOrder: order `lines` items for a customer.
    TpccNewOrder { warehouse: u16, district: u8, customer: u16, lines: u8, seed: u64 },
    /// TPC-C Payment: pay `amount_cents` on a customer account.
    TpccPayment { warehouse: u16, district: u8, customer: u16, amount_cents: u32 },
    /// No-op (used by empty filler blocks in tests).
    Noop,
}

/// A client transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transaction {
    pub id: TxId,
    pub op: TxOp,
}

impl Transaction {
    pub fn new(id: TxId, op: TxOp) -> Transaction {
        Transaction { id, op }
    }

    /// Convenience constructor for tests.
    pub fn kv_write(client: u32, seq: u64, key: u64, seed: u64) -> Transaction {
        Transaction { id: TxId::new(ClientId(client), seq), op: TxOp::KvWrite { key, seed } }
    }

    /// The modeled wire size of this transaction in bytes (id + op header +
    /// the payload the paper's YCSB/TPC-C transactions would carry). Used
    /// by the simulator's bandwidth model, not by the in-memory codec.
    pub fn modeled_wire_size(&self) -> usize {
        match self.op {
            // key + 100-byte YCSB field (the paper uses YCSB write ops).
            TxOp::KvWrite { .. } => 12 + 8 + 100,
            TxOp::KvRead { .. } => 12 + 8,
            // NewOrder carries ~`lines` order lines of ~8 bytes plus ids.
            TxOp::TpccNewOrder { lines, .. } => 12 + 16 + lines as usize * 8,
            TxOp::TpccPayment { .. } => 12 + 16,
            TxOp::Noop => 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_ordering_groups_by_client() {
        let a = TxId::new(ClientId(1), 5);
        let b = TxId::new(ClientId(1), 6);
        let c = TxId::new(ClientId(2), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn tx_is_small() {
        // The simulator shares blocks via Arc; a compact Transaction keeps
        // blocks of 10k transactions in the hundreds of KB.
        assert!(std::mem::size_of::<Transaction>() <= 40);
    }

    #[test]
    fn wire_sizes() {
        let w = Transaction::kv_write(1, 1, 42, 7);
        assert_eq!(w.modeled_wire_size(), 120);
        let no = Transaction::new(
            TxId::new(ClientId(0), 0),
            TxOp::TpccNewOrder { warehouse: 1, district: 2, customer: 3, lines: 10, seed: 1 },
        );
        assert_eq!(no.modeled_wire_size(), 12 + 16 + 80);
    }
}
