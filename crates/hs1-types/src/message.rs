//! The complete wire message set of all five protocols.
//!
//! | message | protocols | paper reference |
//! |---|---|---|
//! | [`Message::Request`] / [`Message::Response`] | all | §4.1 client request/response |
//! | [`Message::Propose`] | all | Fig. 2 l.10, Fig. 4 l.5, Fig. 6 l.10/13/19 |
//! | [`Message::Vote`] | basic HotStuff-1, chained HotStuff | Fig. 2 l.20 (ProposeVote) |
//! | [`Message::Prepare`] | basic HotStuff-1 | Fig. 2 l.15 |
//! | [`Message::NewView`] | all | Fig. 2 l.29/32, Fig. 4 l.18/21, Fig. 7 l.29 |
//! | [`Message::NewSlot`] | slotted | Fig. 7 l.23 |
//! | [`Message::Reject`] | slotted | Fig. 7 l.25 |
//! | [`Message::Wish`] / [`Message::Tc`] | pacemaker | Fig. 3 |
//! | [`Message::FetchBlock`] / [`Message::FetchResp`] | recovery | §4.2 "Recovery Mechanism" |
//! | [`Message::SnapshotReq`] / [`Message::SnapshotManifest`] | state sync | §4.2 (snapshot catch-up) |
//! | [`Message::SnapshotChunkReq`] / [`Message::SnapshotChunk`] | state sync | §4.2 (snapshot catch-up) |

use std::sync::Arc;

use crate::block::{Block, BlockId};
use crate::cert::{Certificate, TimeoutCert};
use crate::codec::{CodecError, Decode, Encode, Reader};
use crate::ids::{Slot, View};
use crate::tx::{Transaction, TxId};
use hs1_crypto::{Digest, Sha256, Signature};

/// Whether a client response reflects speculative or committed execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplyKind {
    /// Sent on speculative execution after a prepare-certificate (the
    /// early finality confirmation path; client needs `n − f` of these).
    Speculative,
    /// Sent on commit, when the replica had not already sent a speculative
    /// response (client needs `f + 1`).
    Committed,
}

/// Per-transaction execution response to a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResponseMsg {
    pub tx: TxId,
    /// Block in which the transaction executed — responses for different
    /// blocks must never be combined into one quorum (prefix speculation
    /// dilemma, §3).
    pub block: BlockId,
    /// Digest of the execution result (post-state commitment).
    pub result: Digest,
    pub kind: ReplyKind,
    pub view: View,
}

/// A vote share over a block at (view, slot) in some signature domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VoteInfo {
    pub view: View,
    pub slot: Slot,
    pub block: BlockId,
    pub share: Signature,
}

/// Leader proposal. `commit_cert` is basic HotStuff-1's piggy-backed
/// `C(v_lc)` (Fig. 2 line 10); streamlined/slotted leave it `None`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProposeMsg {
    pub block: Arc<Block>,
    pub commit_cert: Option<Certificate>,
}

/// Basic HotStuff-1 ProposeVote (replica → current leader).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VoteMsg {
    pub vote: VoteInfo,
}

/// Basic HotStuff-1 Prepare broadcast carrying the freshly formed `P(v)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrepareMsg {
    pub cert: Certificate,
}

/// Sent to the leader of `dest_view` when exiting the previous view —
/// either with a vote share (progress) or without (timeout).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NewViewMsg {
    pub dest_view: View,
    /// Sender's highest known certificate `P(v_lp)` / `P(s_lp, v_lp)`.
    pub high_cert: Certificate,
    /// Streamlined: vote for the previous proposal. Basic: commit share.
    /// Slotted: New-View share over the highest voted block `H_h`
    /// (Fig. 7 line 28). `None` on a shareless timeout.
    pub vote: Option<VoteInfo>,
}

/// Slotted HotStuff-1 NewSlot vote (replica → current leader, Fig. 7 l.23).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NewSlotMsg {
    pub view: View,
    pub slot: Slot,
    pub high_cert: Certificate,
    pub vote: VoteInfo,
}

/// Slotted HotStuff-1 Reject: the proposal extended a certificate lower
/// than the sender's (Fig. 7 line 25).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RejectMsg {
    pub view: View,
    pub slot: Slot,
    pub high_cert: Certificate,
}

/// Pacemaker Wish (Fig. 3 line 10).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WishMsg {
    pub view: View,
    pub share: Signature,
}

/// Ask a peer for a snapshot manifest (state sync). A replica whose
/// committed chain has fallen far behind — or that starts on an empty
/// disk — sends this instead of walking the gap one `FetchBlock` at a
/// time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotReqMsg {
    /// Committed chain length (genesis included) the requester already
    /// has. Advisory (logging/prioritization): peers reply with their
    /// manifest regardless, and the requester's gap threshold makes the
    /// sync-vs-replay decision — not-ahead manifests are how it learns
    /// quickly that replay is the better catch-up.
    pub have_chain_len: u64,
}

/// Describes a servable snapshot derived from the peer's newest durable
/// checkpoint. The *state identity* fields (everything hashed by
/// [`SnapshotManifestMsg::state_key`]) are deterministic functions of the
/// snapshotted chain position, so any two honest peers whose newest
/// checkpoints cover the same position produce byte-identical values —
/// which is what lets a joining replica demand `f + 1` matching manifests
/// before trusting a state root it cannot recompute from certificates
/// alone. The consensus-position fields (`view`, `high_cert`) are
/// per-peer liveness hints, excluded from the agreement key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotManifestMsg {
    /// Committed blocks covered (genesis included).
    pub chain_len: u64,
    /// Id of the last covered block.
    pub chain_head: BlockId,
    /// `state_root()` of the snapshotted committed store.
    pub state_root: Digest,
    /// Logical record count of the store.
    pub record_count: u64,
    /// Total bytes of the chunked image payload.
    pub total_bytes: u64,
    /// Chunk size the serving peer split the payload into.
    pub chunk_bytes: u32,
    /// CRC32 of each chunk's bytes, in order (the per-chunk integrity
    /// index a downloader checks before accepting a chunk).
    pub chunk_crcs: Vec<u32>,
    /// Highest view the serving peer had entered at snapshot time.
    pub view: View,
    /// Highest certificate the serving peer had adopted at snapshot time.
    pub high_cert: Certificate,
}

impl SnapshotManifestMsg {
    /// Number of chunks the payload was split into.
    pub fn chunk_count(&self) -> u32 {
        self.chunk_crcs.len() as u32
    }

    /// Digest over the state-identity fields (everything except `view` /
    /// `high_cert`). Two manifests with equal keys describe byte-identical
    /// images; the joiner requires `f + 1` distinct peers to agree on this
    /// key before downloading.
    pub fn state_key(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"hs1-snapshot-manifest");
        h.update_u64(self.chain_len);
        h.update(&self.chain_head.0 .0);
        h.update(&self.state_root.0);
        h.update_u64(self.record_count);
        h.update_u64(self.total_bytes);
        h.update_u64(self.chunk_bytes as u64);
        for crc in &self.chunk_crcs {
            h.update(&crc.to_be_bytes());
        }
        h.finalize()
    }

    /// Structural sanity independent of any peer state: chunk math adds
    /// up and the advertised sizes are inside the transport limits.
    pub fn well_formed(&self) -> bool {
        const MAX_IMAGE_BYTES: u64 = 1 << 30;
        if self.chain_len == 0 || self.chunk_bytes == 0 || self.total_bytes == 0 {
            return false;
        }
        if self.total_bytes > MAX_IMAGE_BYTES {
            return false;
        }
        let expect = self.total_bytes.div_ceil(self.chunk_bytes as u64);
        self.chunk_crcs.len() as u64 == expect
    }
}

/// Pull one chunk of a snapshot image (state sync; sequential pull keeps
/// the joiner in control of pacing and peer rotation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SnapshotChunkReqMsg {
    /// State root of the snapshot being downloaded (binds the request to
    /// one image even across a server-side checkpoint refresh).
    pub state_root: Digest,
    pub index: u32,
}

/// One chunk of a snapshot image. `data` is verified against the
/// manifest's `chunk_crcs[index]` before it is accepted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotChunkMsg {
    pub state_root: Digest,
    pub index: u32,
    pub data: Vec<u8>,
}

/// The complete message enum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    Request(Transaction),
    Response(ResponseMsg),
    Propose(ProposeMsg),
    Vote(VoteMsg),
    Prepare(PrepareMsg),
    NewView(NewViewMsg),
    NewSlot(NewSlotMsg),
    Reject(RejectMsg),
    Wish(WishMsg),
    Tc(TimeoutCert),
    FetchBlock { id: BlockId },
    FetchResp { block: Arc<Block> },
    SnapshotReq(SnapshotReqMsg),
    SnapshotManifest(SnapshotManifestMsg),
    SnapshotChunkReq(SnapshotChunkReqMsg),
    SnapshotChunk(SnapshotChunkMsg),
}

impl Message {
    /// Short name for logs and metrics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Request(_) => "Request",
            Message::Response(_) => "Response",
            Message::Propose(_) => "Propose",
            Message::Vote(_) => "Vote",
            Message::Prepare(_) => "Prepare",
            Message::NewView(_) => "NewView",
            Message::NewSlot(_) => "NewSlot",
            Message::Reject(_) => "Reject",
            Message::Wish(_) => "Wish",
            Message::Tc(_) => "Tc",
            Message::FetchBlock { .. } => "FetchBlock",
            Message::FetchResp { .. } => "FetchResp",
            Message::SnapshotReq(_) => "SnapshotReq",
            Message::SnapshotManifest(_) => "SnapshotManifest",
            Message::SnapshotChunkReq(_) => "SnapshotChunkReq",
            Message::SnapshotChunk(_) => "SnapshotChunk",
        }
    }

    /// Modeled wire size in bytes, charged against NIC bandwidth by the
    /// simulator. Mirrors what the real encoding plus transport framing
    /// would cost (proposals dominate; votes/certs scale with `n`).
    pub fn modeled_wire_size(&self) -> usize {
        const HDR: usize = 16;
        fn cert_size(c: &Certificate) -> usize {
            64 + c.sigs.len() * 40
        }
        HDR + match self {
            Message::Request(tx) => tx.modeled_wire_size(),
            Message::Response(_) => 96,
            Message::Propose(p) => {
                p.block.modeled_wire_size() + p.commit_cert.as_ref().map_or(0, cert_size)
            }
            Message::Vote(_) => 96,
            Message::Prepare(p) => cert_size(&p.cert),
            Message::NewView(m) => cert_size(&m.high_cert) + 104,
            Message::NewSlot(m) => cert_size(&m.high_cert) + 104,
            Message::Reject(m) => cert_size(&m.high_cert) + 16,
            Message::Wish(_) => 48,
            Message::Tc(tc) => 16 + tc.sigs.len() * 40,
            Message::FetchBlock { .. } => 40,
            Message::FetchResp { block } => block.modeled_wire_size(),
            Message::SnapshotReq(_) => 16,
            Message::SnapshotManifest(m) => 128 + m.chunk_crcs.len() * 4 + cert_size(&m.high_cert),
            Message::SnapshotChunkReq(_) => 44,
            Message::SnapshotChunk(c) => 44 + c.data.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec impls
// ---------------------------------------------------------------------------

impl Encode for ReplyKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ReplyKind::Speculative => 0,
            ReplyKind::Committed => 1,
        });
    }
}

impl Decode for ReplyKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(ReplyKind::Speculative),
            1 => Ok(ReplyKind::Committed),
            tag => Err(CodecError::BadTag { context: "ReplyKind", tag }),
        }
    }
}

impl Encode for ResponseMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tx.encode(out);
        self.block.encode(out);
        self.result.encode(out);
        self.kind.encode(out);
        self.view.encode(out);
    }
}

impl Decode for ResponseMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ResponseMsg {
            tx: TxId::decode(r)?,
            block: BlockId::decode(r)?,
            result: Digest::decode(r)?,
            kind: ReplyKind::decode(r)?,
            view: View::decode(r)?,
        })
    }
}

impl Encode for VoteInfo {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.slot.encode(out);
        self.block.encode(out);
        self.share.encode(out);
    }
}

impl Decode for VoteInfo {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VoteInfo {
            view: View::decode(r)?,
            slot: Slot::decode(r)?,
            block: BlockId::decode(r)?,
            share: Signature::decode(r)?,
        })
    }
}

impl Encode for ProposeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.block.encode(out);
        self.commit_cert.encode(out);
    }
}

impl Decode for ProposeMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ProposeMsg { block: Arc::<Block>::decode(r)?, commit_cert: Option::decode(r)? })
    }
}

impl Encode for VoteMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.vote.encode(out);
    }
}

impl Decode for VoteMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VoteMsg { vote: VoteInfo::decode(r)? })
    }
}

impl Encode for PrepareMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cert.encode(out);
    }
}

impl Decode for PrepareMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PrepareMsg { cert: Certificate::decode(r)? })
    }
}

impl Encode for NewViewMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dest_view.encode(out);
        self.high_cert.encode(out);
        self.vote.encode(out);
    }
}

impl Decode for NewViewMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NewViewMsg {
            dest_view: View::decode(r)?,
            high_cert: Certificate::decode(r)?,
            vote: Option::decode(r)?,
        })
    }
}

impl Encode for NewSlotMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.slot.encode(out);
        self.high_cert.encode(out);
        self.vote.encode(out);
    }
}

impl Decode for NewSlotMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NewSlotMsg {
            view: View::decode(r)?,
            slot: Slot::decode(r)?,
            high_cert: Certificate::decode(r)?,
            vote: VoteInfo::decode(r)?,
        })
    }
}

impl Encode for RejectMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.slot.encode(out);
        self.high_cert.encode(out);
    }
}

impl Decode for RejectMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RejectMsg {
            view: View::decode(r)?,
            slot: Slot::decode(r)?,
            high_cert: Certificate::decode(r)?,
        })
    }
}

impl Encode for WishMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.view.encode(out);
        self.share.encode(out);
    }
}

impl Decode for WishMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WishMsg { view: View::decode(r)?, share: Signature::decode(r)? })
    }
}

impl Encode for SnapshotReqMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.have_chain_len.encode(out);
    }
}

impl Decode for SnapshotReqMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotReqMsg { have_chain_len: u64::decode(r)? })
    }
}

impl Encode for SnapshotManifestMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.chain_len.encode(out);
        self.chain_head.encode(out);
        self.state_root.encode(out);
        self.record_count.encode(out);
        self.total_bytes.encode(out);
        self.chunk_bytes.encode(out);
        self.chunk_crcs.encode(out);
        self.view.encode(out);
        self.high_cert.encode(out);
    }
}

impl Decode for SnapshotManifestMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotManifestMsg {
            chain_len: u64::decode(r)?,
            chain_head: BlockId::decode(r)?,
            state_root: Digest::decode(r)?,
            record_count: u64::decode(r)?,
            total_bytes: u64::decode(r)?,
            chunk_bytes: u32::decode(r)?,
            chunk_crcs: Vec::decode(r)?,
            view: View::decode(r)?,
            high_cert: Certificate::decode(r)?,
        })
    }
}

impl Encode for SnapshotChunkReqMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.state_root.encode(out);
        self.index.encode(out);
    }
}

impl Decode for SnapshotChunkReqMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SnapshotChunkReqMsg { state_root: Digest::decode(r)?, index: u32::decode(r)? })
    }
}

impl Encode for SnapshotChunkMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.state_root.encode(out);
        self.index.encode(out);
        (self.data.len() as u64).encode(out);
        out.extend_from_slice(&self.data);
    }
}

impl Decode for SnapshotChunkMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let state_root = Digest::decode(r)?;
        let index = u32::decode(r)?;
        // Chunks are raw bytes: decode the length prefix through the same
        // sanity limit as every sequence, then take the slice wholesale
        // (no per-element loop for megabyte payloads).
        let len = r.seq_len("SnapshotChunk.data")?;
        Ok(SnapshotChunkMsg { state_root, index, data: r.take(len)?.to_vec() })
    }
}

impl Encode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Request(tx) => {
                out.push(0);
                tx.encode(out);
            }
            Message::Response(m) => {
                out.push(1);
                m.encode(out);
            }
            Message::Propose(m) => {
                out.push(2);
                m.encode(out);
            }
            Message::Vote(m) => {
                out.push(3);
                m.encode(out);
            }
            Message::Prepare(m) => {
                out.push(4);
                m.encode(out);
            }
            Message::NewView(m) => {
                out.push(5);
                m.encode(out);
            }
            Message::NewSlot(m) => {
                out.push(6);
                m.encode(out);
            }
            Message::Reject(m) => {
                out.push(7);
                m.encode(out);
            }
            Message::Wish(m) => {
                out.push(8);
                m.encode(out);
            }
            Message::Tc(tc) => {
                out.push(9);
                tc.encode(out);
            }
            Message::FetchBlock { id } => {
                out.push(10);
                id.encode(out);
            }
            Message::FetchResp { block } => {
                out.push(11);
                block.encode(out);
            }
            Message::SnapshotReq(m) => {
                out.push(12);
                m.encode(out);
            }
            Message::SnapshotManifest(m) => {
                out.push(13);
                m.encode(out);
            }
            Message::SnapshotChunkReq(m) => {
                out.push(14);
                m.encode(out);
            }
            Message::SnapshotChunk(m) => {
                out.push(15);
                m.encode(out);
            }
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(Message::Request(Transaction::decode(r)?)),
            1 => Ok(Message::Response(ResponseMsg::decode(r)?)),
            2 => Ok(Message::Propose(ProposeMsg::decode(r)?)),
            3 => Ok(Message::Vote(VoteMsg::decode(r)?)),
            4 => Ok(Message::Prepare(PrepareMsg::decode(r)?)),
            5 => Ok(Message::NewView(NewViewMsg::decode(r)?)),
            6 => Ok(Message::NewSlot(NewSlotMsg::decode(r)?)),
            7 => Ok(Message::Reject(RejectMsg::decode(r)?)),
            8 => Ok(Message::Wish(WishMsg::decode(r)?)),
            9 => Ok(Message::Tc(TimeoutCert::decode(r)?)),
            10 => Ok(Message::FetchBlock { id: BlockId::decode(r)? }),
            11 => Ok(Message::FetchResp { block: Arc::<Block>::decode(r)? }),
            12 => Ok(Message::SnapshotReq(SnapshotReqMsg::decode(r)?)),
            13 => Ok(Message::SnapshotManifest(SnapshotManifestMsg::decode(r)?)),
            14 => Ok(Message::SnapshotChunkReq(SnapshotChunkReqMsg::decode(r)?)),
            15 => Ok(Message::SnapshotChunk(SnapshotChunkMsg::decode(r)?)),
            tag => Err(CodecError::BadTag { context: "Message", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertKind;
    use crate::ids::{ClientId, ReplicaId};

    fn roundtrip(m: Message) {
        let bytes = m.encoded();
        let back = Message::decode_exact(&bytes).expect("decode");
        assert_eq!(back, m);
        assert!(m.modeled_wire_size() > 0);
        assert!(!m.kind_name().is_empty());
    }

    fn some_cert() -> Certificate {
        Certificate {
            kind: CertKind::NewSlot,
            view: View(4),
            slot: Slot(2),
            block: BlockId::test(8),
            sigs: vec![(ReplicaId(1), Signature([3u8; 32]))],
        }
    }

    fn some_vote() -> VoteInfo {
        VoteInfo {
            view: View(4),
            slot: Slot(2),
            block: BlockId::test(8),
            share: Signature([5u8; 32]),
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        let block = Arc::new(Block::new(
            ReplicaId(0),
            View(1),
            Slot(1),
            Certificate::genesis(),
            vec![Transaction::kv_write(1, 1, 2, 3)],
        ));
        roundtrip(Message::Request(Transaction::kv_write(9, 1, 2, 3)));
        roundtrip(Message::Response(ResponseMsg {
            tx: TxId::new(ClientId(9), 1),
            block: BlockId::test(1),
            result: Digest([7u8; 32]),
            kind: ReplyKind::Speculative,
            view: View(3),
        }));
        roundtrip(Message::Propose(ProposeMsg {
            block: block.clone(),
            commit_cert: Some(some_cert()),
        }));
        roundtrip(Message::Propose(ProposeMsg { block: block.clone(), commit_cert: None }));
        roundtrip(Message::Vote(VoteMsg { vote: some_vote() }));
        roundtrip(Message::Prepare(PrepareMsg { cert: some_cert() }));
        roundtrip(Message::NewView(NewViewMsg {
            dest_view: View(5),
            high_cert: some_cert(),
            vote: Some(some_vote()),
        }));
        roundtrip(Message::NewView(NewViewMsg {
            dest_view: View(5),
            high_cert: Certificate::genesis(),
            vote: None,
        }));
        roundtrip(Message::NewSlot(NewSlotMsg {
            view: View(4),
            slot: Slot(3),
            high_cert: some_cert(),
            vote: some_vote(),
        }));
        roundtrip(Message::Reject(RejectMsg {
            view: View(4),
            slot: Slot(3),
            high_cert: some_cert(),
        }));
        roundtrip(Message::Wish(WishMsg { view: View(8), share: Signature([1u8; 32]) }));
        roundtrip(Message::Tc(TimeoutCert {
            view: View(8),
            sigs: vec![(ReplicaId(0), Signature([2u8; 32]))],
        }));
        roundtrip(Message::FetchBlock { id: BlockId::test(3) });
        roundtrip(Message::FetchResp { block });
        roundtrip(Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 17 }));
        roundtrip(Message::SnapshotManifest(some_manifest()));
        roundtrip(Message::SnapshotChunkReq(SnapshotChunkReqMsg {
            state_root: Digest([4u8; 32]),
            index: 9,
        }));
        roundtrip(Message::SnapshotChunk(SnapshotChunkMsg {
            state_root: Digest([4u8; 32]),
            index: 9,
            data: (0..200u16).map(|i| i as u8).collect(),
        }));
    }

    fn some_manifest() -> SnapshotManifestMsg {
        SnapshotManifestMsg {
            chain_len: 12,
            chain_head: BlockId::test(11),
            state_root: Digest([6u8; 32]),
            record_count: 1000,
            total_bytes: 700,
            chunk_bytes: 256,
            chunk_crcs: vec![1, 2, 3],
            view: View(13),
            high_cert: some_cert(),
        }
    }

    #[test]
    fn snapshot_messages_reject_truncation() {
        let msgs = [
            Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 17 }),
            Message::SnapshotManifest(some_manifest()),
            Message::SnapshotChunkReq(SnapshotChunkReqMsg {
                state_root: Digest([4u8; 32]),
                index: 9,
            }),
            Message::SnapshotChunk(SnapshotChunkMsg {
                state_root: Digest([4u8; 32]),
                index: 9,
                data: vec![7u8; 64],
            }),
        ];
        for m in msgs {
            let bytes = m.encoded();
            for cut in [1, 2, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    Message::decode_exact(&bytes[..cut]).is_err(),
                    "{} truncated at {cut} must not decode",
                    m.kind_name()
                );
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(
                matches!(Message::decode_exact(&trailing), Err(CodecError::TrailingBytes { .. })),
                "{} with trailing bytes must not decode",
                m.kind_name()
            );
        }
    }

    #[test]
    fn snapshot_chunk_hostile_length_rejected() {
        // A chunk advertising a multi-gigabyte payload must fail on the
        // length prefix, not attempt the allocation.
        let mut bytes = vec![15u8]; // SnapshotChunk tag
        Digest([0u8; 32]).encode(&mut bytes);
        0u32.encode(&mut bytes);
        u64::MAX.encode(&mut bytes);
        assert!(matches!(Message::decode_exact(&bytes), Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn manifest_state_key_ignores_consensus_position() {
        // Two honest peers at the same snapshot position may differ in
        // pacemaker view / adopted certificate; agreement must still form.
        let a = some_manifest();
        let mut b = a.clone();
        b.view = View(99);
        b.high_cert = Certificate::genesis();
        assert_eq!(a.state_key(), b.state_key());
        // Any state-identity field difference breaks the key.
        let mut c = a.clone();
        c.chunk_crcs[1] ^= 1;
        assert_ne!(a.state_key(), c.state_key());
        let mut d = a.clone();
        d.state_root = Digest([7u8; 32]);
        assert_ne!(a.state_key(), d.state_key());
    }

    #[test]
    fn manifest_well_formedness() {
        let m = some_manifest();
        assert!(m.well_formed());
        assert_eq!(m.chunk_count(), 3);
        let mut wrong_count = m.clone();
        wrong_count.chunk_crcs.pop();
        assert!(!wrong_count.well_formed());
        let mut zero_chunk = m.clone();
        zero_chunk.chunk_bytes = 0;
        assert!(!zero_chunk.well_formed());
        let mut huge = m.clone();
        huge.total_bytes = u64::MAX;
        assert!(!huge.well_formed());
    }

    #[test]
    fn propose_wire_size_dominates() {
        let txs: Vec<_> = (0..1000).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        let block =
            Arc::new(Block::new(ReplicaId(0), View(1), Slot(1), Certificate::genesis(), txs));
        let propose = Message::Propose(ProposeMsg { block, commit_cert: None });
        let vote = Message::Vote(VoteMsg { vote: some_vote() });
        assert!(propose.modeled_wire_size() > 50 * vote.modeled_wire_size());
    }
}
