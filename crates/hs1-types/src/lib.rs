//! Core data types shared by every crate of the HotStuff-1 reproduction.
//!
//! * [`ids`] — replica/client identifiers, [`ids::View`], [`ids::Slot`]
//! * [`time`] — virtual clock types used by engines and the simulator
//! * [`rng`] — deterministic splitmix64 RNG (no external crates)
//! * [`tx`] — fixed-size transaction representation (YCSB / TPC-C ops)
//! * [`cert`] — certificates (quorums of signature shares) and timeout
//!   certificates; ordering and extension relations
//! * [`block`] — blocks, block ids, the hard-coded genesis
//! * [`message`] — the complete wire message set of all five protocols
//! * [`codec`] — hand-rolled binary wire format ([`codec::Encode`] /
//!   [`codec::Decode`]), property-tested for roundtripping
//! * [`config`] — system configuration (`n`, `f`, timers, protocol choice)

pub mod block;
pub mod cert;
pub mod codec;
pub mod config;
pub mod ids;
pub mod message;
pub mod rng;
pub mod time;
pub mod tx;

pub use block::{Block, BlockId};
pub use cert::{CertKind, Certificate, TimeoutCert};
pub use codec::{Decode, Encode};
pub use config::{ProtocolKind, SystemConfig};
pub use ids::{ClientId, ReplicaId, Slot, View};
pub use message::{Message, ReplyKind};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
pub use tx::{Transaction, TxId, TxOp};
