//! Identifier newtypes: replicas, clients, views, slots.

/// A replica identifier in `[0, n)` (the paper uses `[1, n]`; zero-based is
/// idiomatic here and only shifts the `id(R) mod n` leader function).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl std::fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A client identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u32);

impl std::fmt::Debug for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A view number. Views advance monotonically; view 0 is the genesis view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct View(pub u64);

impl View {
    pub const GENESIS: View = View(0);

    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    pub fn prev(self) -> Option<View> {
        self.0.checked_sub(1).map(View)
    }

    /// `true` if `self` is exactly `other + 1` (the consecutive-view
    /// requirement of the prefix-commit and no-gap rules).
    pub fn is_successor_of(self, other: View) -> bool {
        self.0 == other.0 + 1
    }
}

impl std::fmt::Debug for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A slot number within a view (slotted HotStuff-1, §6). Slots are 1-based
/// as in the paper; non-slotted protocols use slot 1 for every block, and
/// the genesis block occupies slot 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Slot(pub u32);

impl Slot {
    pub const GENESIS: Slot = Slot(0);
    pub const FIRST: Slot = Slot(1);

    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    pub fn is_successor_of(self, other: Slot) -> bool {
        self.0 == other.0 + 1
    }
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Lexicographic (view, slot) rank used to order blocks and certificates
/// (HotStuff-1 §6.1: "Blocks are ordered lexicographically").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Rank {
    pub view: View,
    pub slot: Slot,
}

impl Rank {
    pub const GENESIS: Rank = Rank { view: View::GENESIS, slot: Slot::GENESIS };

    pub fn new(view: View, slot: Slot) -> Rank {
        Rank { view, slot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_successor() {
        assert!(View(5).is_successor_of(View(4)));
        assert!(!View(5).is_successor_of(View(3)));
        assert!(!View(5).is_successor_of(View(5)));
        assert_eq!(View(4).next(), View(5));
        assert_eq!(View(4).prev(), Some(View(3)));
        assert_eq!(View(0).prev(), None);
    }

    #[test]
    fn slot_successor() {
        assert!(Slot(2).is_successor_of(Slot(1)));
        assert!(!Slot(2).is_successor_of(Slot(2)));
        assert_eq!(Slot::FIRST.next(), Slot(2));
    }

    #[test]
    fn rank_lexicographic() {
        // Same view: slot order decides. Different view: view decides.
        assert!(Rank::new(View(1), Slot(4)) < Rank::new(View(2), Slot(1)));
        assert!(Rank::new(View(2), Slot(1)) < Rank::new(View(2), Slot(2)));
        assert!(Rank::GENESIS < Rank::new(View(0), Slot(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", ReplicaId(3)), "R3");
        assert_eq!(format!("{}", View(7)), "v7");
        assert_eq!(format!("{:?}", Slot(2)), "s2");
        assert_eq!(format!("{:?}", ClientId(9)), "C9");
    }
}
