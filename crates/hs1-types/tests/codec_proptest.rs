//! Property tests: every message round-trips through the wire codec, and
//! the decoder never panics on arbitrary bytes.

use std::sync::Arc;

use hs1_crypto::{Digest, Signature};
use hs1_types::block::{Block, BlockId};
use hs1_types::cert::{CertKind, Certificate, TimeoutCert};
use hs1_types::codec::{Decode, Encode};
use hs1_types::ids::{ClientId, ReplicaId, Slot, View};
use hs1_types::message::{
    Message, NewSlotMsg, NewViewMsg, PrepareMsg, ProposeMsg, RejectMsg, ReplyKind, ResponseMsg,
    VoteInfo, VoteMsg, WishMsg,
};
use hs1_types::tx::{Transaction, TxId, TxOp};
use proptest::prelude::*;

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest)
}

fn arb_sig() -> impl Strategy<Value = Signature> {
    any::<[u8; 32]>().prop_map(Signature)
}

fn arb_block_id() -> impl Strategy<Value = BlockId> {
    arb_digest().prop_map(BlockId)
}

fn arb_txop() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(key, seed)| TxOp::KvWrite { key, seed }),
        any::<u64>().prop_map(|key| TxOp::KvRead { key }),
        (any::<u16>(), any::<u8>(), any::<u16>(), any::<u8>(), any::<u64>()).prop_map(
            |(warehouse, district, customer, lines, seed)| TxOp::TpccNewOrder {
                warehouse,
                district,
                customer,
                lines,
                seed
            }
        ),
        (any::<u16>(), any::<u8>(), any::<u16>(), any::<u32>()).prop_map(
            |(warehouse, district, customer, amount_cents)| TxOp::TpccPayment {
                warehouse,
                district,
                customer,
                amount_cents
            }
        ),
        Just(TxOp::Noop),
    ]
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (any::<u32>(), any::<u64>(), arb_txop())
        .prop_map(|(c, s, op)| Transaction::new(TxId::new(ClientId(c), s), op))
}

fn arb_cert_kind() -> impl Strategy<Value = CertKind> {
    prop_oneof![
        Just(CertKind::Quorum),
        Just(CertKind::Commit),
        Just(CertKind::NewSlot),
        any::<u64>().prop_map(|v| CertKind::NewView { formed_in: View(v) }),
    ]
}

fn arb_cert() -> impl Strategy<Value = Certificate> {
    (
        arb_cert_kind(),
        any::<u64>(),
        any::<u32>(),
        arb_block_id(),
        prop::collection::vec((any::<u32>().prop_map(ReplicaId), arb_sig()), 0..5),
    )
        .prop_map(|(kind, view, slot, block, sigs)| Certificate {
            kind,
            view: View(view),
            slot: Slot(slot),
            block,
            sigs,
        })
}

fn arb_block() -> impl Strategy<Value = Arc<Block>> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        arb_cert(),
        prop::option::of(arb_block_id()),
        prop::collection::vec(arb_tx(), 0..8),
    )
        .prop_map(|(p, v, s, justify, carry, txs)| {
            Arc::new(match carry {
                Some(c) => Block::new_with_carry(ReplicaId(p), View(v), Slot(s), justify, c, txs),
                None => Block::new(ReplicaId(p), View(v), Slot(s), justify, txs),
            })
        })
}

fn arb_vote() -> impl Strategy<Value = VoteInfo> {
    (any::<u64>(), any::<u32>(), arb_block_id(), arb_sig()).prop_map(|(v, s, b, sig)| VoteInfo {
        view: View(v),
        slot: Slot(s),
        block: b,
        share: sig,
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_tx().prop_map(Message::Request),
        (arb_tx(), arb_block_id(), arb_digest(), any::<bool>(), any::<u64>()).prop_map(
            |(tx, block, result, spec, view)| Message::Response(ResponseMsg {
                tx: tx.id,
                block,
                result,
                kind: if spec { ReplyKind::Speculative } else { ReplyKind::Committed },
                view: View(view),
            })
        ),
        (arb_block(), prop::option::of(arb_cert()))
            .prop_map(|(block, commit_cert)| Message::Propose(ProposeMsg { block, commit_cert })),
        arb_vote().prop_map(|vote| Message::Vote(VoteMsg { vote })),
        arb_cert().prop_map(|cert| Message::Prepare(PrepareMsg { cert })),
        (any::<u64>(), arb_cert(), prop::option::of(arb_vote())).prop_map(
            |(dv, high_cert, vote)| Message::NewView(NewViewMsg {
                dest_view: View(dv),
                high_cert,
                vote
            })
        ),
        (any::<u64>(), any::<u32>(), arb_cert(), arb_vote()).prop_map(|(v, s, high_cert, vote)| {
            Message::NewSlot(NewSlotMsg { view: View(v), slot: Slot(s), high_cert, vote })
        }),
        (any::<u64>(), any::<u32>(), arb_cert()).prop_map(|(v, s, high_cert)| {
            Message::Reject(RejectMsg { view: View(v), slot: Slot(s), high_cert })
        }),
        (any::<u64>(), arb_sig())
            .prop_map(|(v, share)| Message::Wish(WishMsg { view: View(v), share })),
        (any::<u64>(), prop::collection::vec((any::<u32>().prop_map(ReplicaId), arb_sig()), 0..4))
            .prop_map(|(v, sigs)| Message::Tc(TimeoutCert { view: View(v), sigs })),
        arb_block_id().prop_map(|id| Message::FetchBlock { id }),
        arb_block().prop_map(|block| Message::FetchResp { block }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_roundtrip(msg in arb_message()) {
        let bytes = msg.encoded();
        let back = Message::decode_exact(&bytes).expect("well-formed encoding must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Hostile input: decoding may fail, but must not panic.
        let _ = Message::decode_exact(&bytes);
    }

    #[test]
    fn block_id_deterministic(block in arb_block()) {
        let again = Block::decode_exact(&block.encoded()).expect("decode");
        prop_assert_eq!(again.id(), block.id());
    }

    #[test]
    fn encoding_is_injective_on_views(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(View(a).encoded() == View(b).encoded(), a == b);
    }
}
