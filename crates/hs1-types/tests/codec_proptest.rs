//! Property tests: every message round-trips through the wire codec, and
//! the decoder never panics on arbitrary bytes.
//!
//! Randomization is driven by the in-repo deterministic [`SplitMix64`]
//! (no external proptest dependency): each property runs a fixed number of
//! seeded cases, so failures reproduce exactly from the printed seed.

use std::sync::Arc;

use hs1_crypto::{Digest, Signature};
use hs1_types::block::{Block, BlockId};
use hs1_types::cert::{CertKind, Certificate, TimeoutCert};
use hs1_types::codec::{Decode, Encode};
use hs1_types::ids::{ClientId, ReplicaId, Slot, View};
use hs1_types::message::{
    Message, NewSlotMsg, NewViewMsg, PrepareMsg, ProposeMsg, RejectMsg, ReplyKind, ResponseMsg,
    SnapshotChunkMsg, SnapshotChunkReqMsg, SnapshotManifestMsg, SnapshotReqMsg, VoteInfo, VoteMsg,
    WishMsg,
};
use hs1_types::rng::SplitMix64;
use hs1_types::tx::{Transaction, TxId, TxOp};

const CASES: u64 = 256;

fn arb_bytes32(r: &mut SplitMix64) -> [u8; 32] {
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        chunk.copy_from_slice(&r.next_u64().to_le_bytes()[..chunk.len()]);
    }
    out
}

fn arb_digest(r: &mut SplitMix64) -> Digest {
    Digest(arb_bytes32(r))
}

fn arb_sig(r: &mut SplitMix64) -> Signature {
    Signature(arb_bytes32(r))
}

fn arb_block_id(r: &mut SplitMix64) -> BlockId {
    BlockId(arb_digest(r))
}

fn arb_txop(r: &mut SplitMix64) -> TxOp {
    match r.next_range(5) {
        0 => TxOp::KvWrite { key: r.next_u64(), seed: r.next_u64() },
        1 => TxOp::KvRead { key: r.next_u64() },
        2 => TxOp::TpccNewOrder {
            warehouse: r.next_u64() as u16,
            district: r.next_u64() as u8,
            customer: r.next_u64() as u16,
            lines: r.next_u64() as u8,
            seed: r.next_u64(),
        },
        3 => TxOp::TpccPayment {
            warehouse: r.next_u64() as u16,
            district: r.next_u64() as u8,
            customer: r.next_u64() as u16,
            amount_cents: r.next_u64() as u32,
        },
        _ => TxOp::Noop,
    }
}

fn arb_tx(r: &mut SplitMix64) -> Transaction {
    let client = ClientId(r.next_u64() as u32);
    let seq = r.next_u64();
    let op = arb_txop(r);
    Transaction::new(TxId::new(client, seq), op)
}

fn arb_cert_kind(r: &mut SplitMix64) -> CertKind {
    match r.next_range(4) {
        0 => CertKind::Quorum,
        1 => CertKind::Commit,
        2 => CertKind::NewSlot,
        _ => CertKind::NewView { formed_in: View(r.next_u64()) },
    }
}

fn arb_sigs(r: &mut SplitMix64, max: u64) -> Vec<(ReplicaId, Signature)> {
    (0..r.next_range(max)).map(|_| (ReplicaId(r.next_u64() as u32), arb_sig(r))).collect()
}

fn arb_cert(r: &mut SplitMix64) -> Certificate {
    Certificate {
        kind: arb_cert_kind(r),
        view: View(r.next_u64()),
        slot: Slot(r.next_u64() as u32),
        block: arb_block_id(r),
        sigs: arb_sigs(r, 5),
    }
}

fn arb_block(r: &mut SplitMix64) -> Arc<Block> {
    let proposer = ReplicaId(r.next_u64() as u32);
    let view = View(r.next_u64());
    let slot = Slot(r.next_u64() as u32);
    let justify = arb_cert(r);
    let carry = if r.chance(0.5) { Some(arb_block_id(r)) } else { None };
    let txs: Vec<Transaction> = (0..r.next_range(8)).map(|_| arb_tx(r)).collect();
    Arc::new(match carry {
        Some(c) => Block::new_with_carry(proposer, view, slot, justify, c, txs),
        None => Block::new(proposer, view, slot, justify, txs),
    })
}

fn arb_vote(r: &mut SplitMix64) -> VoteInfo {
    VoteInfo {
        view: View(r.next_u64()),
        slot: Slot(r.next_u64() as u32),
        block: arb_block_id(r),
        share: arb_sig(r),
    }
}

fn arb_response(r: &mut SplitMix64) -> ResponseMsg {
    ResponseMsg {
        tx: arb_tx(r).id,
        block: arb_block_id(r),
        result: arb_digest(r),
        kind: if r.chance(0.5) { ReplyKind::Speculative } else { ReplyKind::Committed },
        view: View(r.next_u64()),
    }
}

fn arb_manifest(r: &mut SplitMix64) -> SnapshotManifestMsg {
    SnapshotManifestMsg {
        chain_len: r.next_u64(),
        chain_head: arb_block_id(r),
        state_root: arb_digest(r),
        record_count: r.next_u64(),
        total_bytes: r.next_u64(),
        chunk_bytes: r.next_u64() as u32,
        chunk_crcs: (0..r.next_range(6)).map(|_| r.next_u64() as u32).collect(),
        view: View(r.next_u64()),
        high_cert: arb_cert(r),
    }
}

/// One random message of variant index `variant` (0..VARIANTS), so
/// sweeping the variant index guarantees coverage of every arm of
/// [`Message`].
fn arb_message_of(variant: u64, r: &mut SplitMix64) -> Message {
    match variant {
        0 => Message::Request(arb_tx(r)),
        1 => Message::Response(arb_response(r)),
        2 => Message::Propose(ProposeMsg {
            block: arb_block(r),
            commit_cert: if r.chance(0.5) { Some(arb_cert(r)) } else { None },
        }),
        3 => Message::Vote(VoteMsg { vote: arb_vote(r) }),
        4 => Message::Prepare(PrepareMsg { cert: arb_cert(r) }),
        5 => Message::NewView(NewViewMsg {
            dest_view: View(r.next_u64()),
            high_cert: arb_cert(r),
            vote: if r.chance(0.5) { Some(arb_vote(r)) } else { None },
        }),
        6 => Message::NewSlot(NewSlotMsg {
            view: View(r.next_u64()),
            slot: Slot(r.next_u64() as u32),
            high_cert: arb_cert(r),
            vote: arb_vote(r),
        }),
        7 => Message::Reject(RejectMsg {
            view: View(r.next_u64()),
            slot: Slot(r.next_u64() as u32),
            high_cert: arb_cert(r),
        }),
        8 => Message::Wish(WishMsg { view: View(r.next_u64()), share: arb_sig(r) }),
        9 => Message::Tc(TimeoutCert { view: View(r.next_u64()), sigs: arb_sigs(r, 4) }),
        10 => Message::FetchBlock { id: arb_block_id(r) },
        11 => Message::FetchResp { block: arb_block(r) },
        12 => Message::SnapshotReq(SnapshotReqMsg { have_chain_len: r.next_u64() }),
        13 => Message::SnapshotManifest(arb_manifest(r)),
        14 => Message::SnapshotChunkReq(SnapshotChunkReqMsg {
            state_root: arb_digest(r),
            index: r.next_u64() as u32,
        }),
        _ => Message::SnapshotChunk(SnapshotChunkMsg {
            state_root: arb_digest(r),
            index: r.next_u64() as u32,
            data: (0..r.next_range(600)).map(|_| r.next_u64() as u8).collect(),
        }),
    }
}

const VARIANTS: u64 = 16;

fn arb_message(r: &mut SplitMix64) -> Message {
    let v = r.next_range(VARIANTS);
    arb_message_of(v, r)
}

#[test]
fn message_roundtrip() {
    for seed in 0..CASES {
        let mut r = SplitMix64::new(seed);
        let msg = arb_message(&mut r);
        let bytes = msg.encoded();
        let back = Message::decode_exact(&bytes)
            .unwrap_or_else(|e| panic!("seed {seed}: well-formed encoding must decode: {e:?}"));
        assert_eq!(back, msg, "seed {seed}");
    }
}

#[test]
fn every_message_variant_roundtrips() {
    // Exhaustive over variants × seeds, so a codec bug in any single arm
    // cannot hide behind the uniform variant chooser above.
    for variant in 0..VARIANTS {
        for seed in 0..64u64 {
            let mut r = SplitMix64::new(seed * VARIANTS + variant);
            let msg = arb_message_of(variant, &mut r);
            let name = msg.kind_name();
            let bytes = msg.encoded();
            let back = Message::decode_exact(&bytes)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: must decode: {e:?}"));
            assert_eq!(back, msg, "{name} seed {seed}");
        }
    }
}

#[test]
fn decoder_never_panics() {
    // Hostile input: decoding may fail, but must not panic.
    for seed in 0..CASES {
        let mut r = SplitMix64::new(seed);
        let len = r.next_range(512) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| r.next_u64() as u8).collect();
        let _ = Message::decode_exact(&bytes);
    }
}

#[test]
fn decoder_never_panics_on_truncations() {
    // Every prefix of a valid encoding must fail cleanly, not panic.
    for seed in 0..32u64 {
        let mut r = SplitMix64::new(seed);
        let bytes = arb_message(&mut r).encoded();
        for cut in 0..bytes.len() {
            let _ = Message::decode_exact(&bytes[..cut]);
        }
    }
}

#[test]
fn decoder_never_panics_on_bitflips() {
    // Single-bit corruptions of valid encodings must not panic (they may
    // decode to a different valid message; the codec carries no checksum).
    for seed in 0..16u64 {
        let mut r = SplitMix64::new(seed);
        let bytes = arb_message(&mut r).encoded();
        for i in 0..bytes.len().min(256) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << r.next_range(8);
            let _ = Message::decode_exact(&corrupt);
        }
    }
}

#[test]
fn block_id_deterministic() {
    for seed in 0..CASES {
        let mut r = SplitMix64::new(seed);
        let block = arb_block(&mut r);
        let again = Block::decode_exact(&block.encoded()).expect("decode");
        assert_eq!(again.id(), block.id(), "seed {seed}");
    }
}

#[test]
fn encoding_is_injective_on_views() {
    let mut r = SplitMix64::new(0xbeef);
    for _ in 0..CASES {
        let (a, b) = (r.next_u64(), r.next_u64());
        assert_eq!(View(a).encoded() == View(b).encoded(), a == b);
        assert_eq!(View(a).encoded(), View(a).encoded());
    }
}
