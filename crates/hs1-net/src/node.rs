//! The replica runner: hosts an engine behind the TCP mesh, translating
//! between wall-clock time and the engine's virtual clock.
//!
//! With [`NodeRunner::with_storage`] the node is *durable*: it recovers
//! from its write-ahead journal before joining the mesh (replaying the
//! checkpoint + journal into the engine), then journals every commit,
//! certificate, view, and speculation edge as it runs. A killed node
//! restarted on the same directory re-enters at its recovered view and
//! catches up to live peers through the `FetchBlock`/`FetchResp` path:
//! the first proposal it receives references a certificate whose block it
//! does not have, the engine requests the missing body from the proposer,
//! and commits walk the fetched chain back to the recovered head.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::mesh::{Inbound, Mesh};
use hs1_core::replica::{Action, Replica, Timer};
use hs1_crypto::Sha256;
use hs1_storage::{RecoveryInfo, ReplicaStorage, StorageConfig, StorageError};
use hs1_types::message::ResponseMsg;
use hs1_types::{Message, SimTime};

/// Hosts one engine on the mesh until `run_for` elapses.
pub struct NodeRunner {
    engine: Box<dyn Replica>,
    mesh: Mesh,
    start: Instant,
    timers: BinaryHeap<Reverse<(SimTime, u64, Timer)>>,
    timer_seq: u64,
    /// Committed blocks observed (for smoke-test introspection).
    pub committed_blocks: u64,
    /// Recovery diagnostics when the node was opened with storage.
    pub recovery: Option<RecoveryInfo>,
}

impl NodeRunner {
    pub fn new(engine: Box<dyn Replica>, mesh: Mesh) -> NodeRunner {
        NodeRunner {
            engine,
            mesh,
            start: Instant::now(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            committed_blocks: 0,
            recovery: None,
        }
    }

    /// Durable node: recover `engine` from the journal in `dir` (replay
    /// first, then install the journal as the engine's persistence), so
    /// a crash–restart cycle on the same directory resumes safely.
    pub fn with_storage(
        mut engine: Box<dyn Replica>,
        mesh: Mesh,
        dir: impl AsRef<Path>,
        cfg: StorageConfig,
    ) -> Result<NodeRunner, StorageError> {
        let (state, storage) = ReplicaStorage::open(dir.as_ref(), cfg)?;
        let recovery = storage.recovery_info.clone();
        engine.restore(state);
        engine.set_persistence(Box::new(storage));
        let mut runner = NodeRunner::new(engine, mesh);
        runner.recovery = Some(recovery);
        Ok(runner)
    }

    /// Sever every connection and release the listen port (the "kill"
    /// half of a kill–restart cycle; peers reconnect lazily).
    pub fn shutdown(&self) {
        self.mesh.shutdown();
    }

    /// Committed-state root of the hosted engine (recovery convergence
    /// checks).
    pub fn state_root(&self) -> hs1_crypto::Digest {
        self.engine.state_root()
    }

    /// Length of the hosted engine's committed chain (genesis included).
    pub fn committed_chain_len(&self) -> usize {
        self.engine.committed_chain().len()
    }

    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    /// Run the node loop for `duration` wall-clock time.
    pub fn run_for(&mut self, duration: Duration) {
        self.start = Instant::now();
        let mut out = Vec::new();
        self.engine.on_init(self.now(), &mut out);
        self.dispatch(out);
        let deadline = Instant::now() + duration;
        while Instant::now() < deadline {
            // Fire due timers.
            let now = self.now();
            while let Some(Reverse((at, _, timer))) = self.timers.peek().copied() {
                if at > now {
                    break;
                }
                self.timers.pop();
                let mut out = Vec::new();
                self.engine.on_timer(timer, self.now(), &mut out);
                self.dispatch(out);
            }
            // Wait for the next message or the next timer deadline.
            let wait = self
                .timers
                .peek()
                .map(|Reverse((at, _, _))| Duration::from_nanos(at.0.saturating_sub(self.now().0)))
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            match self.mesh.inbox.recv_timeout(wait) {
                Ok(Inbound::FromReplica(from, msg)) => {
                    let mut out = Vec::new();
                    self.engine.on_message(from, msg, self.now(), &mut out);
                    self.dispatch(out);
                }
                Ok(Inbound::FromClient(_client, msg)) => {
                    if let Message::Request(tx) = msg {
                        self.engine.enqueue_txs(&[tx]);
                    }
                }
                Err(_) => {}
            }
        }
    }

    fn dispatch(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => self.mesh.send_replica(to, msg),
                Action::Broadcast { msg } => self.mesh.broadcast(msg),
                Action::SetTimer { timer, at } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse((at, self.timer_seq, timer)));
                }
                Action::Executed { block, digest, kind } => {
                    // Fan out per-transaction responses to the issuing
                    // clients. The per-transaction result folds the block
                    // digest with the transaction id.
                    for tx in &block.txs {
                        let mut h = Sha256::new();
                        h.update(&digest.0);
                        h.update_u64(tx.id.client.0 as u64);
                        h.update_u64(tx.id.seq);
                        let result = h.finalize();
                        self.mesh.send_client(
                            tx.id.client,
                            Message::Response(ResponseMsg {
                                tx: tx.id,
                                block: block.id(),
                                result,
                                kind,
                                view: block.view,
                            }),
                        );
                    }
                }
                Action::Committed { .. } => self.committed_blocks += 1,
                Action::RolledBack { .. } | Action::EnteredView { .. } => {}
            }
        }
    }
}
