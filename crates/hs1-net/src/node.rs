//! The replica runner: hosts an engine behind the TCP mesh, translating
//! between wall-clock time and the engine's virtual clock.
//!
//! With [`NodeRunner::with_storage`] the node is *durable*: it recovers
//! from its write-ahead journal before joining the mesh (replaying the
//! checkpoint + journal into the engine), then journals every commit,
//! certificate, view, and speculation edge as it runs. A killed node
//! restarted on the same directory re-enters at its recovered view and
//! catches up to live peers through the `FetchBlock`/`FetchResp` path:
//! the first proposal it receives references a certificate whose block it
//! does not have, the engine requests the missing body from the proposer,
//! and commits walk the fetched chain back to the recovered head.
//!
//! Every durable node also *serves snapshots*: `SnapshotReq` /
//! `SnapshotChunkReq` messages are answered out of its newest checkpoint
//! (see `hs1-statesync`). With [`NodeRunner::with_state_sync`] the node
//! additionally runs the *requesting* side before joining consensus: if
//! `f + 1` peers agree on a snapshot that is further ahead than the
//! configured gap threshold, the node downloads and verifies the image,
//! installs it into the engine and its own storage, and only then starts
//! the engine — leaving just the short residual suffix to the per-block
//! fetch path. A fresh empty-disk replica joins a long-running cluster in
//! O(state) instead of O(history).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::http::HttpServer;
use crate::mesh::{Inbound, Mesh};
use hs1_adversary::AdversaryMutator;
use hs1_core::persist::RecoveredState;
use hs1_core::replica::{Action, Replica, Timer};
use hs1_crypto::Sha256;
use hs1_obs::Obs;
use hs1_statesync::{SnapshotServer, SyncClient, SyncConfig, SyncPhase, SyncStats};
use hs1_storage::{RecoveryInfo, ReplicaStorage, StorageConfig, StorageError};
use hs1_types::message::ResponseMsg;
use hs1_types::{Message, ReplicaId, SimTime};

/// Node-level state-sync tuning: the protocol knobs plus the wall-clock
/// budget after which the node gives up and falls back to per-block
/// replay (snapshot sync is an optimization; it must never be able to
/// wedge a join).
#[derive(Clone, Debug)]
pub struct StateSyncConfig {
    pub sync: SyncConfig,
    /// Abandon the sync phase (and start consensus anyway) after this.
    pub overall_timeout: Duration,
}

impl StateSyncConfig {
    pub fn new(sync: SyncConfig) -> StateSyncConfig {
        StateSyncConfig { sync, overall_timeout: Duration::from_secs(10) }
    }
}

/// Hosts one engine on the mesh until `run_for` elapses.
pub struct NodeRunner {
    engine: Box<dyn Replica>,
    mesh: Mesh,
    start: Instant,
    timers: BinaryHeap<Reverse<(SimTime, u64, Timer)>>,
    timer_seq: u64,
    /// Snapshot serving side (installed for every durable node).
    server: Option<SnapshotServer>,
    /// Adversary layer over the *node-owned* outbound paths (snapshot
    /// serving lives outside the engine; engine traffic is made
    /// adversarial by wrapping the engine in
    /// `hs1_adversary::AdversaryEngine` instead).
    adversary: Option<AdversaryMutator>,
    /// Storage held back until the sync phase decides what to install
    /// (`with_state_sync` only).
    pending_sync: Option<(ReplicaStorage, StateSyncConfig)>,
    /// Storage held back until `run_for` (`with_storage` only) so an
    /// observer attached after construction still reaches it.
    pending_storage: Option<ReplicaStorage>,
    /// Observability sink (noop unless installed; see `hs1-obs`).
    obs: Obs,
    /// Non-statesync traffic that arrived during the sync phase, replayed
    /// into the engine when it starts.
    deferred: Vec<Inbound>,
    /// Committed blocks observed (for smoke-test introspection).
    pub committed_blocks: u64,
    /// Recovery diagnostics when the node was opened with storage.
    pub recovery: Option<RecoveryInfo>,
    /// Counters from the sync phase (`with_state_sync` only).
    pub sync_stats: Option<SyncStats>,
    /// Did the node install a verified snapshot (vs replay/fallback)?
    pub synced_via_snapshot: bool,
    /// Live introspection responder (see [`NodeRunner::serve_introspection`]).
    #[cfg(unix)]
    introspection: Option<HttpServer>,
    /// The `/status` body, refreshed by the node loop.
    #[cfg(unix)]
    status: Option<crate::http::StatusCell>,
    /// The recorder behind `/metrics` (auto-attached or caller-supplied).
    #[cfg(unix)]
    introspection_rec: Option<std::sync::Arc<std::sync::Mutex<hs1_obs::RecordingObserver>>>,
    /// Last `/status` refresh (throttles the refresh to ~4 Hz).
    #[cfg(unix)]
    status_at: Instant,
}

impl NodeRunner {
    pub fn new(engine: Box<dyn Replica>, mesh: Mesh) -> NodeRunner {
        NodeRunner {
            engine,
            mesh,
            start: Instant::now(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            server: None,
            adversary: None,
            pending_sync: None,
            pending_storage: None,
            obs: Obs::noop(),
            deferred: Vec::new(),
            committed_blocks: 0,
            recovery: None,
            sync_stats: None,
            synced_via_snapshot: false,
            #[cfg(unix)]
            introspection: None,
            #[cfg(unix)]
            status: None,
            #[cfg(unix)]
            introspection_rec: None,
            #[cfg(unix)]
            status_at: Instant::now(),
        }
    }

    /// Durable node: recover `engine` from the journal in `dir` (replay
    /// first, then install the journal as the engine's persistence), so
    /// a crash–restart cycle on the same directory resumes safely. The
    /// node serves snapshots to syncing peers out of the same directory.
    pub fn with_storage(
        mut engine: Box<dyn Replica>,
        mesh: Mesh,
        dir: impl AsRef<Path>,
        cfg: StorageConfig,
    ) -> Result<NodeRunner, StorageError> {
        let (state, storage) = ReplicaStorage::open(dir.as_ref(), cfg)?;
        let recovery = storage.recovery_info.clone();
        engine.restore(state);
        let mut runner = NodeRunner::new(engine, mesh);
        runner.server = Some(SnapshotServer::new(dir.as_ref()));
        runner.recovery = Some(recovery);
        // Installed at `run_for` (after restore, before the first
        // `on_init` — the Persistence contract), so a later
        // `set_observer` still reaches the journal hooks.
        runner.pending_storage = Some(storage);
        Ok(runner)
    }

    /// Durable node that *first* tries snapshot state sync: local journal
    /// recovery runs as in [`NodeRunner::with_storage`], but the engine
    /// is not started until the sync phase (the first part of
    /// [`NodeRunner::run_for`]) has either installed a verified peer
    /// snapshot on top of the recovered state or decided replay is the
    /// better catch-up (gap below threshold, no agreement in time).
    pub fn with_state_sync(
        mut engine: Box<dyn Replica>,
        mesh: Mesh,
        dir: impl AsRef<Path>,
        cfg: StorageConfig,
        sync_cfg: StateSyncConfig,
    ) -> Result<NodeRunner, StorageError> {
        let (state, storage) = ReplicaStorage::open(dir.as_ref(), cfg)?;
        let recovery = storage.recovery_info.clone();
        engine.restore(state);
        let mut runner = NodeRunner::new(engine, mesh);
        runner.server = Some(SnapshotServer::new(dir.as_ref()));
        runner.recovery = Some(recovery);
        runner.pending_sync = Some((storage, sync_cfg));
        Ok(runner)
    }

    /// Route the node-owned outbound paths (snapshot serving) through an
    /// `hs1-adversary` mutator — e.g. `AdversaryStrategy::CorruptSnapshot`
    /// makes this node serve chunks that fail the manifest's CRC index,
    /// which syncing peers must reject and rotate away from. One
    /// implementation serves the simulator and the TCP stack; see
    /// `hs1_adversary::AdversaryEngine` for the engine-traffic half.
    pub fn set_adversary(&mut self, mutator: AdversaryMutator) {
        self.adversary = Some(mutator);
    }

    /// Install an observability sink (typically wall-clocked:
    /// `Obs::recording(Clock::wall())`) in the node loop, the hosted
    /// engine, the transport, and — for durable nodes — the journal
    /// hooks. Node-level instrumentation is metrics-only: per-peer
    /// send/recv counters and queue-depth gauges; the mesh adds
    /// transport counters (bytes/frames/syscalls), per-peer outbound
    /// queue gauges, shed counters, and the send-stall histogram.
    pub fn set_observer(&mut self, obs: Obs) {
        self.engine.set_observer(obs.clone());
        self.obs = obs.with_actor(self.engine.id().0);
        self.mesh.set_observer(self.obs.clone());
    }

    /// Frames the transport has shed under backpressure (see
    /// [`crate::mesh::NetStats`]).
    pub fn shed_frames(&self) -> u64 {
        self.mesh.shed_frames()
    }

    /// Live transport counters for this node's mesh.
    pub fn net_stats(&self) -> crate::mesh::NetStatsSnapshot {
        self.mesh.stats()
    }

    /// Serve a snapshot response, mutated by the adversary layer when one
    /// is installed.
    fn serve_snapshot(&mut self, to: ReplicaId, msg: &Message) {
        let Some(server) = &mut self.server else { return };
        let Some(resp) = server.handle(msg) else { return };
        match &mut self.adversary {
            Some(adv) => {
                for (t, m) in adv.mutate(to, resp) {
                    self.mesh.send_replica(t, m);
                }
            }
            None => self.mesh.send_replica(to, resp),
        }
    }

    /// Snapshot chunk size served by this node. Deployment-wide setting:
    /// the chunk size is part of the manifest agreement key, so every
    /// serving replica must use the same value.
    pub fn set_snapshot_chunk_bytes(&mut self, chunk_bytes: u32) {
        if let Some(server) = &mut self.server {
            server.set_chunk_bytes(chunk_bytes);
        }
    }

    /// Serve live introspection endpoints (`GET /metrics`, `GET /status`)
    /// on `host:port` (`port` 0 picks an ephemeral port; the bound port
    /// is returned). If no observer is attached yet, a wall-clocked
    /// recording observer is attached automatically so `/metrics` has
    /// something to serve; if the caller already attached their own
    /// sink, use [`NodeRunner::serve_introspection_with`] and hand over
    /// the recorder so scrapes can snapshot it.
    #[cfg(unix)]
    pub fn serve_introspection(&mut self, host: &str, port: u16) -> std::io::Result<u16> {
        let rec = match &self.introspection_rec {
            Some(rec) => rec.clone(),
            None if self.obs.enabled() => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "an observer is already attached; use serve_introspection_with",
                ));
            }
            None => {
                let (obs, rec) = Obs::recording(hs1_obs::Clock::wall());
                self.set_observer(obs);
                rec
            }
        };
        self.serve_introspection_with(host, port, rec)
    }

    /// [`NodeRunner::serve_introspection`] with an explicit recorder —
    /// for harnesses that attached their own
    /// `Obs::recording`/[`hs1_obs::RecordingObserver`] (or a fan-out
    /// lane) and want `/metrics` served from it.
    #[cfg(unix)]
    pub fn serve_introspection_with(
        &mut self,
        host: &str,
        port: u16,
        rec: std::sync::Arc<std::sync::Mutex<hs1_obs::RecordingObserver>>,
    ) -> std::io::Result<u16> {
        use std::sync::{Arc, Mutex};
        let status = Arc::new(Mutex::new(String::from("{}\n")));
        let metrics_rec = rec.clone();
        let server = HttpServer::serve(
            host,
            port,
            Arc::new(move || metrics_rec.lock().expect("recorder").snapshot().to_prometheus()),
            status.clone(),
        )?;
        let port = server.port();
        self.introspection = Some(server);
        self.introspection_rec = Some(rec);
        self.status = Some(status);
        self.refresh_status();
        Ok(port)
    }

    /// Rebuild the `/status` JSON from live node state. Cheap enough to
    /// call at the loop's idle cadence; does nothing when introspection
    /// is off.
    #[cfg(unix)]
    fn refresh_status(&mut self) {
        let Some(cell) = &self.status else { return };
        let stats = self.mesh.stats();
        let mut peers = String::new();
        for (i, (peer, frames, bytes)) in self.mesh.queue_depths().into_iter().enumerate() {
            if i > 0 {
                peers.push(',');
            }
            peers.push_str(&format!(
                "{{\"peer\":{peer},\"queue_frames\":{frames},\"queue_bytes\":{bytes}}}"
            ));
        }
        let body = format!(
            "{{\"replica\":{},\"backend\":\"{}\",\"view\":{},\"chain_len\":{},\
             \"head\":\"{:016x}\",\"committed_blocks\":{},\"reconnects\":{},\
             \"frames_shed\":{},\"peers\":[{peers}]}}\n",
            self.engine.id().0,
            self.mesh.backend().name(),
            self.engine.current_view().0,
            self.committed_chain_len(),
            hs1_obs::block_key(self.engine.committed_head()),
            self.committed_blocks,
            stats.reconnects,
            stats.frames_shed,
        );
        *cell.lock().expect("status lock") = body;
        self.status_at = Instant::now();
    }

    /// Sever every connection and release the listen port (the "kill"
    /// half of a kill–restart cycle; peers reconnect lazily).
    pub fn shutdown(&self) {
        self.mesh.shutdown();
    }

    /// Committed-state root of the hosted engine (recovery convergence
    /// checks).
    pub fn state_root(&self) -> hs1_crypto::Digest {
        self.engine.state_root()
    }

    /// Length of the hosted engine's committed chain (genesis included).
    pub fn committed_chain_len(&self) -> usize {
        self.engine.committed_chain().len()
    }

    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }

    /// Run the node loop for `duration` wall-clock time. A node built
    /// with [`NodeRunner::with_state_sync`] spends the start of the
    /// window in the sync phase (bounded by its `overall_timeout` and by
    /// `duration`), then runs consensus for the remainder.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        if let Some((mut storage, sync_cfg)) = self.pending_sync.take() {
            self.run_sync_phase(&mut storage, &sync_cfg, deadline);
            // Whatever the sync phase decided, the journal goes live now
            // (install_snapshot already ran inside on success).
            storage.set_observer(self.obs.clone());
            self.engine.set_persistence(Box::new(storage));
        }
        if let Some(mut storage) = self.pending_storage.take() {
            storage.set_observer(self.obs.clone());
            self.engine.set_persistence(Box::new(storage));
        }

        self.start = Instant::now();
        let mut out = Vec::new();
        self.engine.on_init(self.now(), &mut out);
        self.dispatch(out);
        // Replay traffic that arrived while the sync phase held the
        // inbox: stale proposals seed the block store (shortening the
        // residual fetch), requests enter the mempool.
        for inbound in std::mem::take(&mut self.deferred) {
            self.handle_inbound(inbound);
        }
        while Instant::now() < deadline {
            // Fire due timers.
            let now = self.now();
            while let Some(Reverse((at, _, timer))) = self.timers.peek().copied() {
                if at > now {
                    break;
                }
                self.timers.pop();
                let mut out = Vec::new();
                self.engine.on_timer(timer, self.now(), &mut out);
                self.dispatch(out);
            }
            // Wait for the next message or the next timer deadline.
            let wait = self
                .timers
                .peek()
                .map(|Reverse((at, _, _))| Duration::from_nanos(at.0.saturating_sub(self.now().0)))
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            if self.obs.enabled() {
                self.obs.gauge("timer_queue_depth", 0, self.timers.len() as u64);
            }
            #[cfg(unix)]
            if self.status.is_some() && self.status_at.elapsed() >= Duration::from_millis(250) {
                self.refresh_status();
            }
            if let Ok(inbound) = self.mesh.inbox.recv_timeout(wait) {
                self.handle_inbound(inbound);
            }
        }
        #[cfg(unix)]
        self.refresh_status();
        self.obs.flush();
    }

    fn handle_inbound(&mut self, inbound: Inbound) {
        if let Inbound::FromReplica(from, _) = &inbound {
            self.obs.counter("msgs_recv", from.0, 1);
        }
        match inbound {
            Inbound::FromReplica(from, msg) => match msg {
                // Serving side of state sync lives at the node layer;
                // engines never see snapshot traffic.
                Message::SnapshotReq(_) | Message::SnapshotChunkReq(_) => {
                    self.serve_snapshot(from, &msg);
                }
                // Stale sync-phase replies (e.g. a slow manifest).
                Message::SnapshotManifest(_) | Message::SnapshotChunk(_) => {}
                _ => {
                    let mut out = Vec::new();
                    self.engine.on_message(from, msg, self.now(), &mut out);
                    self.dispatch(out);
                }
            },
            Inbound::FromClient(_client, msg) => {
                if let Message::Request(tx) = msg {
                    self.obs.counter("requests_recv", 0, 1);
                    self.engine.enqueue_txs(&[tx]);
                }
            }
        }
    }

    /// The requesting side of snapshot state sync: drive the
    /// `hs1-statesync` client against the mesh until it finishes or the
    /// budget runs out, deferring all other traffic. On success the
    /// verified image is installed into the engine *and* journaled as a
    /// local checkpoint, so a crash right after the sync recovers from
    /// disk instead of re-downloading.
    fn run_sync_phase(
        &mut self,
        storage: &mut ReplicaStorage,
        cfg: &StateSyncConfig,
        run_deadline: Instant,
    ) {
        let me = self.engine.id();
        let peers: Vec<ReplicaId> =
            (0..self.mesh.n() as u32).map(ReplicaId).filter(|r| *r != me).collect();
        let have = self.engine.committed_chain().len() as u64;
        let mut client = SyncClient::new(cfg.sync.clone(), peers, have);
        let deadline = run_deadline.min(Instant::now() + cfg.overall_timeout);

        let mut out: Vec<(ReplicaId, Message)> = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            client.poll(now, &mut out);
            for (to, msg) in out.drain(..) {
                self.mesh.send_replica(to, msg);
            }
            match client.phase() {
                SyncPhase::Done | SyncPhase::Declined | SyncPhase::Failed => break,
                SyncPhase::Collecting | SyncPhase::Downloading => {}
            }
            match self.mesh.inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(Inbound::FromReplica(from, msg)) => match &msg {
                    Message::SnapshotManifest(_) | Message::SnapshotChunk(_) => {
                        client.on_message(from, &msg, Instant::now(), &mut out);
                    }
                    Message::SnapshotReq(_) | Message::SnapshotChunkReq(_) => {
                        self.serve_snapshot(from, &msg);
                    }
                    _ => self.deferred.push(Inbound::FromReplica(from, msg)),
                },
                Ok(other) => self.deferred.push(other),
                Err(_) => {}
            }
        }
        for (to, msg) in out.drain(..) {
            self.mesh.send_replica(to, msg);
        }

        self.sync_stats = Some(client.stats);
        if client.phase() == SyncPhase::Done {
            if let Some(synced) = client.take_synced() {
                let store = synced.image.restore_store();
                storage.install_snapshot(
                    &store,
                    &synced.image.chain,
                    synced.view,
                    Some(synced.high_cert.clone()),
                );
                self.engine.restore(RecoveredState {
                    view: synced.view,
                    high_cert: Some(synced.high_cert),
                    committed_store: Some(store),
                    committed_ids: synced.image.chain,
                    decided: Vec::new(),
                    speculated: Vec::new(),
                });
                self.synced_via_snapshot = true;
            }
        }
    }

    fn dispatch(&mut self, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    self.obs.counter("msgs_sent", to.0, 1);
                    self.mesh.send_replica(to, msg)
                }
                Action::Broadcast { msg } => {
                    self.obs.counter("msgs_broadcast", 0, 1);
                    self.mesh.broadcast(msg)
                }
                Action::SetTimer { timer, at } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse((at, self.timer_seq, timer)));
                }
                Action::Executed { block, digest, kind } => {
                    // Fan out per-transaction responses to the issuing
                    // clients. The per-transaction result folds the block
                    // digest with the transaction id.
                    self.obs.counter("responses_sent", 0, block.txs.len() as u64);
                    for tx in &block.txs {
                        let mut h = Sha256::new();
                        h.update(&digest.0);
                        h.update_u64(tx.id.client.0 as u64);
                        h.update_u64(tx.id.seq);
                        let result = h.finalize();
                        self.mesh.send_client(
                            tx.id.client,
                            Message::Response(ResponseMsg {
                                tx: tx.id,
                                block: block.id(),
                                result,
                                kind,
                                view: block.view,
                            }),
                        );
                    }
                }
                Action::Committed { .. } => self.committed_blocks += 1,
                Action::RolledBack { .. } | Action::EnteredView { .. } => {}
            }
        }
    }
}
