//! A TCP client driver: broadcasts requests to every replica and
//! applies the paper's finality rules to the streamed responses.
//!
//! Connections are *links*, not sockets: when a replica restarts (or
//! was down at startup), its link redials with jittered exponential
//! backoff on the next submission instead of staying dead for the rest
//! of the session — without this, every restart permanently cost the
//! client one of the ≤ f connections its quorums can tolerate losing.
//!
//! Two drive modes: [`ClientDriver::run_closed_loop`] (one outstanding
//! request, resubmitted on finality — the latency probe) and
//! [`ClientDriver::run_open_loop`] (submissions paced at an offered
//! rate regardless of completions — the saturation probe used by
//! `net_loadgen`).

use std::net::TcpStream;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, Sender};

use crate::framing::{self, PeerKind};
use hs1_core::client::FinalityTracker;
use hs1_types::message::ResponseMsg;
use hs1_types::{ClientId, Message, ProtocolKind, ReplicaId, Transaction, TxId, TxOp};

/// Latency sample: (tx, microseconds to finality).
pub type Sample = (TxId, u64);

/// First redial delay; doubles (with jitter) up to [`RECONNECT_MAX`].
const RECONNECT_BASE: Duration = Duration::from_millis(50);
const RECONNECT_MAX: Duration = Duration::from_secs(2);

/// One replica connection with its redial state.
struct Link {
    replica: ReplicaId,
    port: u16,
    stream: Option<TcpStream>,
    /// Next delay to wait after a failure (exponential).
    delay: Duration,
    /// Earliest time another dial attempt is allowed.
    next_attempt: Instant,
}

/// Counters from an open-loop run.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpenLoopReport {
    pub submitted: u64,
    pub finalized: u64,
    /// Reconnect dials that succeeded after a link died.
    pub reconnects: u64,
}

/// Drives one client id against a local cluster.
pub struct ClientDriver {
    id: ClientId,
    host: String,
    links: Vec<Link>,
    responses: Receiver<(ReplicaId, ResponseMsg)>,
    response_tx: Sender<(ReplicaId, ResponseMsg)>,
    tracker: FinalityTracker,
    /// SplitMix64 state for backoff jitter.
    rng: u64,
    pub reconnects: u64,
}

impl ClientDriver {
    /// Connect to the `n` replicas at `host:base_port + i`. Up to `f`
    /// replicas may be unreachable (down, or not yet started): their
    /// links start in backoff and are redialed as the session runs —
    /// finality quorums are collected from the live majority meanwhile,
    /// the same tolerance a BFT client needs at submission time anyway.
    pub fn connect(
        id: ClientId,
        n: usize,
        host: &str,
        base_port: u16,
        protocol: ProtocolKind,
        f: usize,
    ) -> std::io::Result<ClientDriver> {
        let (tx, rx) = channel();
        let mut driver = ClientDriver {
            id,
            host: host.to_string(),
            links: (0..n)
                .map(|r| Link {
                    replica: ReplicaId(r as u32),
                    port: base_port + r as u16,
                    stream: None,
                    delay: RECONNECT_BASE,
                    next_attempt: Instant::now(),
                })
                .collect(),
            responses: rx,
            response_tx: tx,
            tracker: FinalityTracker::new(n, f, protocol),
            rng: 0xC11E_17D0 ^ ((id.0 as u64) << 20 | base_port as u64),
            reconnects: 0,
        };
        let mut unreachable = 0usize;
        let mut last_err = None;
        for i in 0..n {
            if let Err(e) = driver.dial(i) {
                unreachable += 1;
                last_err = Some(e);
            }
        }
        if unreachable > f {
            return Err(last_err.expect("unreachable > f implies an error"));
        }
        Ok(driver)
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Dial link `i`: connect, identify, spawn the reader thread for the
    /// response stream. On failure the link's backoff state advances.
    fn dial(&mut self, i: usize) -> std::io::Result<()> {
        let (host, port, replica) = (self.host.clone(), self.links[i].port, self.links[i].replica);
        let attempt = (|| {
            let mut stream = TcpStream::connect((host.as_str(), port))?;
            stream.set_nodelay(true)?;
            framing::send_hello(&mut stream, PeerKind::Client(self.id.0))?;
            Ok::<TcpStream, std::io::Error>(stream)
        })();
        match attempt {
            Ok(stream) => {
                let mut read_half = stream.try_clone()?;
                let tx = self.response_tx.clone();
                std::thread::Builder::new()
                    .name(format!("client-{}-r{}", self.id.0, replica.0))
                    .spawn(move || {
                        while let Ok(msg) = framing::read_msg(&mut read_half) {
                            if let Message::Response(resp) = msg {
                                if tx.send((replica, resp)).is_err() {
                                    break;
                                }
                            }
                        }
                    })?;
                let link = &mut self.links[i];
                link.stream = Some(stream);
                link.delay = RECONNECT_BASE;
                Ok(())
            }
            Err(e) => {
                let delay = self.links[i].delay;
                let nanos = delay.as_nanos().max(1) as u64;
                // ±50% jitter so clients don't redial a restarting
                // replica in lockstep.
                let jitter = Duration::from_nanos(nanos / 2 + self.next_rand() % nanos);
                let link = &mut self.links[i];
                link.next_attempt = Instant::now() + jitter;
                link.delay = (delay * 2).min(RECONNECT_MAX);
                Err(e)
            }
        }
    }

    /// Broadcast one request, redialing any dead link whose backoff has
    /// expired. Per-link write failures kill that link (it re-enters
    /// backoff); quorums only need the live majority.
    fn submit(&mut self, seq: u64) -> TxId {
        let tx = Transaction::new(
            TxId::new(self.id, seq),
            TxOp::KvWrite { key: seq * 31 + self.id.0 as u64, seed: seq },
        );
        let msg = Message::Request(tx);
        let now = Instant::now();
        for i in 0..self.links.len() {
            if self.links[i].stream.is_none()
                && now >= self.links[i].next_attempt
                && self.dial(i).is_ok()
            {
                self.reconnects += 1;
            }
            if let Some(stream) = &mut self.links[i].stream {
                if framing::write_msg(stream, &msg).is_err() {
                    // The replica went away mid-session: sever and let
                    // the backoff path bring the link back later.
                    self.links[i].stream = None;
                    let delay = self.links[i].delay;
                    let nanos = delay.as_nanos().max(1) as u64;
                    let jitter = Duration::from_nanos(nanos / 2 + self.next_rand() % nanos);
                    self.links[i].next_attempt = Instant::now() + jitter;
                    self.links[i].delay = (delay * 2).min(RECONNECT_MAX);
                }
            }
        }
        tx.id
    }

    /// Run a closed loop for `duration`; returns finality latency samples.
    pub fn run_closed_loop(&mut self, duration: Duration) -> std::io::Result<Vec<Sample>> {
        let deadline = Instant::now() + duration;
        let mut samples = Vec::new();
        let mut seq = 0u64;
        let mut current = self.submit(seq);
        let mut submitted_at = Instant::now();
        // A request submitted while < quorum replicas were reachable can
        // stall; resubmit it periodically rather than wedging the loop.
        let mut last_activity = Instant::now();
        while Instant::now() < deadline {
            if let Ok((from, resp)) = self.responses.recv_timeout(Duration::from_millis(20)) {
                if self.tracker.on_response(from, &resp).is_some() && resp.tx == current {
                    samples.push((current, submitted_at.elapsed().as_micros() as u64));
                    seq += 1;
                    current = self.submit(seq);
                    submitted_at = Instant::now();
                    last_activity = Instant::now();
                }
            } else if last_activity.elapsed() > Duration::from_millis(500) {
                // Mempools dedup by TxId, so re-broadcasting the same
                // transaction (now that links may have recovered) is safe.
                let _ = self.submit(seq);
                last_activity = Instant::now();
            }
        }
        Ok(samples)
    }

    /// Submit at a paced offered rate for `duration` regardless of
    /// completions, then drain responses for `drain`. This is the
    /// saturation probe: `finalized / duration` is goodput.
    pub fn run_open_loop(
        &mut self,
        duration: Duration,
        rate_per_sec: u64,
        drain: Duration,
    ) -> std::io::Result<OpenLoopReport> {
        let start = Instant::now();
        let deadline = start + duration;
        let interval = Duration::from_nanos(1_000_000_000 / rate_per_sec.max(1));
        // Total arrivals the schedule can ever owe: a submit() that
        // blocks on a saturated socket must not turn into a catch-up
        // burst beyond the offered rate once it returns.
        let target = (duration.as_secs_f64() * rate_per_sec as f64).round() as u64;
        let mut report = OpenLoopReport::default();
        let mut finalized = 0u64;
        while Instant::now() < deadline {
            // Submit everything the pacing schedule owes us.
            while report.submitted < target
                && start + interval * report.submitted as u32 <= Instant::now()
            {
                self.submit(report.submitted);
                report.submitted += 1;
            }
            while let Ok((from, resp)) = self.responses.try_recv() {
                if self.tracker.on_response(from, &resp).is_some() {
                    finalized += 1;
                }
            }
            if report.submitted % 4096 == 0 {
                self.tracker.gc();
            }
            let next = start + interval * report.submitted as u32;
            if let Some(wait) = next.checked_duration_since(Instant::now()) {
                if let Ok((from, resp)) = self.responses.recv_timeout(wait.min(interval)) {
                    if self.tracker.on_response(from, &resp).is_some() {
                        finalized += 1;
                    }
                }
            }
        }
        let drain_deadline = Instant::now() + drain;
        while Instant::now() < drain_deadline {
            match self.responses.recv_timeout(Duration::from_millis(20)) {
                Ok((from, resp)) => {
                    if self.tracker.on_response(from, &resp).is_some() {
                        finalized += 1;
                    }
                }
                Err(_) => break,
            }
        }
        report.finalized = finalized;
        report.reconnects = self.reconnects;
        Ok(report)
    }
}
