//! A closed-loop TCP client: broadcasts requests to every replica and
//! applies the paper's finality rules to the streamed responses.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver};

use crate::framing::{self, PeerKind};
use hs1_core::client::FinalityTracker;
use hs1_types::{ClientId, Message, ProtocolKind, ReplicaId, Transaction, TxId, TxOp};

/// Latency sample: (tx, microseconds to finality).
pub type Sample = (TxId, u64);

/// Drives one client id against a local cluster.
pub struct ClientDriver {
    id: ClientId,
    streams: Vec<TcpStream>,
    responses: Receiver<(ReplicaId, hs1_types::message::ResponseMsg)>,
    tracker: FinalityTracker,
}

impl ClientDriver {
    /// Connect to the `n` replicas at `host:base_port + i`. Up to `f`
    /// replicas may be unreachable (down, or not yet started): their
    /// streams are skipped and finality quorums are collected from the
    /// live majority — the same tolerance a BFT client needs at
    /// submission time anyway.
    pub fn connect(
        id: ClientId,
        n: usize,
        host: &str,
        base_port: u16,
        protocol: ProtocolKind,
        f: usize,
    ) -> std::io::Result<ClientDriver> {
        let (tx, rx) = channel();
        let mut streams = Vec::with_capacity(n);
        let mut unreachable = 0usize;
        for r in 0..n {
            let mut stream = match TcpStream::connect((host, base_port + r as u16)) {
                Ok(s) => s,
                Err(e) => {
                    unreachable += 1;
                    if unreachable > f {
                        return Err(e);
                    }
                    continue;
                }
            };
            stream.set_nodelay(true)?;
            framing::send_hello(&mut stream, PeerKind::Client(id.0))?;
            let mut read_half = stream.try_clone()?;
            let tx = tx.clone();
            let rid = ReplicaId(r as u32);
            std::thread::Builder::new().name(format!("client-{}-r{r}", id.0)).spawn(move || {
                while let Ok(msg) = framing::read_msg(&mut read_half) {
                    if let Message::Response(resp) = msg {
                        if tx.send((rid, resp)).is_err() {
                            break;
                        }
                    }
                }
            })?;
            streams.push(stream);
        }
        Ok(ClientDriver {
            id,
            streams,
            responses: rx,
            tracker: FinalityTracker::new(n, f, protocol),
        })
    }

    fn submit(&mut self, seq: u64) -> std::io::Result<TxId> {
        let tx = Transaction::new(
            TxId::new(self.id, seq),
            TxOp::KvWrite { key: seq * 31 + self.id.0 as u64, seed: seq },
        );
        // A BFT client tolerates up to f unreachable replicas (e.g. a
        // crashed node mid-restart): per-stream write failures are
        // dropped, finality quorums only need the live majority.
        for s in &mut self.streams {
            let _ = framing::write_msg(s, &Message::Request(tx));
        }
        Ok(tx.id)
    }

    /// Run a closed loop for `duration`; returns finality latency samples.
    pub fn run_closed_loop(&mut self, duration: Duration) -> std::io::Result<Vec<Sample>> {
        let deadline = Instant::now() + duration;
        let mut samples = Vec::new();
        let mut seq = 0u64;
        let mut current = self.submit(seq)?;
        let mut submitted_at = Instant::now();
        while Instant::now() < deadline {
            if let Ok((from, resp)) = self.responses.recv_timeout(Duration::from_millis(20)) {
                if self.tracker.on_response(from, &resp).is_some() && resp.tx == current {
                    samples.push((current, submitted_at.elapsed().as_micros() as u64));
                    seq += 1;
                    current = self.submit(seq)?;
                    submitted_at = Instant::now();
                }
            }
        }
        Ok(samples)
    }
}
