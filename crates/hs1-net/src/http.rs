//! A tiny HTTP/1.0 introspection responder for live nodes.
//!
//! Serves exactly two read-only endpoints from a running
//! [`crate::node::NodeRunner`]:
//!
//! * `GET /metrics` — Prometheus text exposition of the node's current
//!   `MetricsSnapshot` (rendered on demand by a caller-supplied closure,
//!   so every scrape sees fresh counters).
//! * `GET /status` — a small JSON document (current view, chain head,
//!   per-peer queue gauges, reconnect counts) refreshed by the node loop
//!   and served as-is.
//!
//! The responder is deliberately minimal: HTTP/1.0, `Connection: close`,
//! one short-lived blocking handler per accepted connection, bounded
//! request reads. It rides the same [`crate::poll`] primitives as the
//! reactor — a nonblocking listener plus a [`crate::poll::Waker`] in one
//! `poll(2)` set — so shutdown is prompt and the accept thread never
//! spins. Introspection is a *pure observer* of the node: handlers read
//! shared strings and call a snapshot closure; nothing feeds back into
//! consensus.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::poll::{poll_fds, PollFd, Waker, POLLIN};

/// Renders the `/metrics` body on demand.
pub type MetricsFn = Arc<dyn Fn() -> String + Send + Sync>;

/// The `/status` body, refreshed by the node loop between requests.
pub type StatusCell = Arc<Mutex<String>>;

/// A running introspection responder (stops and joins on drop).
pub struct HttpServer {
    port: u16,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `host:port` (`port` 0 picks an ephemeral port) and serve
    /// until drop. `metrics` renders `/metrics`; `status` holds the
    /// current `/status` body.
    pub fn serve(
        host: &str,
        port: u16,
        metrics: MetricsFn,
        status: StatusCell,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind((host, port))?;
        let port = listener.local_addr()?.port();
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = Waker::pair()?;
        let thread =
            std::thread::Builder::new().name(format!("hs1-http-{port}")).spawn(move || {
                loop {
                    let mut fds = [
                        PollFd::new(listener.as_raw_fd(), POLLIN),
                        PollFd::new(wake_rx.raw_fd(), POLLIN),
                    ];
                    let _ = poll_fds(&mut fds, -1);
                    if fds[1].readable() {
                        // The only wake source is Drop: stop serving.
                        return;
                    }
                    // Drain the accept backlog; connections are handled
                    // inline — introspection traffic is a handful of
                    // short scrapes, not a workload.
                    while let Ok((conn, _)) = listener.accept() {
                        handle(conn, &metrics, &status);
                    }
                }
            })?;
        Ok(HttpServer { port, waker, thread: Some(thread) })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Read the request head (bounded), route, respond, close.
fn handle(mut conn: TcpStream, metrics: &MetricsFn, status: &StatusCell) {
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
    // Accepted from a nonblocking listener: the connection inherits
    // nonblocking on some platforms — undo it so the timeouts govern.
    let _ = conn.set_nonblocking(false);

    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the header terminator, the cap, EOF, or timeout. GET
    // requests have no body, so the head is all there is to read.
    while len < buf.len() && !buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
        match conn.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => len += n,
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (code, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", metrics()),
            "/status" => {
                ("200 OK", "application/json", status.lock().expect("status lock").clone())
            }
            _ => {
                ("404 Not Found", "text/plain", "not found: try /metrics or /status\n".to_string())
            }
        }
    };
    let _ = write!(
        conn,
        "HTTP/1.0 {code}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = conn.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut conn = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(conn, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    fn server() -> HttpServer {
        let status = Arc::new(Mutex::new("{\"view\":7}".to_string()));
        HttpServer::serve(
            "127.0.0.1",
            0,
            Arc::new(|| "# TYPE hs1_up gauge\nhs1_up 1\n".to_string()),
            status,
        )
        .unwrap()
    }

    #[test]
    fn serves_metrics_and_status() {
        let srv = server();
        let metrics = get(srv.port(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(metrics.ends_with("hs1_up 1\n"));
        let status = get(srv.port(), "/status");
        assert!(status.contains("application/json"));
        assert!(status.ends_with("{\"view\":7}"));
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let srv = server();
        assert!(get(srv.port(), "/nope").starts_with("HTTP/1.0 404"));
        let mut conn = TcpStream::connect(("127.0.0.1", srv.port())).unwrap();
        write!(conn, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        conn.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn status_updates_are_visible_and_drop_stops_the_server() {
        let status = Arc::new(Mutex::new("old".to_string()));
        let srv = HttpServer::serve("127.0.0.1", 0, Arc::new(String::new), status.clone()).unwrap();
        let port = srv.port();
        *status.lock().unwrap() = "new".to_string();
        assert!(get(port, "/status").ends_with("new"));
        drop(srv); // joins the accept thread
        assert!(
            TcpStream::connect(("127.0.0.1", port)).is_err() || {
                // The OS may still accept briefly; a request must at least
                // get no response once the thread is gone.
                let mut conn = TcpStream::connect(("127.0.0.1", port)).unwrap();
                let _ = write!(conn, "GET /status HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                let _ = conn.read_to_string(&mut out);
                out.is_empty()
            }
        );
    }
}
