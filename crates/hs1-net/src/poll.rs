//! A minimal std-only readiness wrapper around `poll(2)`.
//!
//! The reactor backend (`crate::reactor`) needs exactly three OS
//! facilities that `std` does not expose directly: level-triggered
//! readiness over a set of sockets, a way to wake a sleeping reactor
//! from another thread, and (for backpressure tests) a small send
//! buffer. All three live here behind a ~40-line FFI surface onto libc
//! symbols that `std` already links — no new dependency, no new crate.
//!
//! Everything in this module is `cfg(unix)`; on non-unix hosts the mesh
//! falls back to the thread-per-connection backend (see
//! [`crate::mesh::Backend`]), so nothing outside this file needs a
//! non-unix poll emulation.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;

/// Readable / acceptable.
pub const POLLIN: i16 = 0x001;
/// Writable (or a completed nonblocking connect).
pub const POLLOUT: i16 = 0x004;
/// Error condition (reported by the kernel even when not requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// Mirrors `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    pub fd: RawFd,
    pub events: i16,
    pub revents: i16,
}

impl PollFd {
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Any readiness (or error/hup — both mean "attend to this fd").
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
    fn setsockopt(
        fd: std::ffi::c_int,
        level: std::ffi::c_int,
        optname: std::ffi::c_int,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> std::ffi::c_int;
}

/// Block until at least one fd is ready or `timeout_ms` elapses
/// (`0` = return immediately, negative = wait forever). Returns the
/// number of ready fds; `EINTR` is absorbed as `Ok(0)` so callers just
/// loop.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `PollFd` is `repr(C)` and layout-identical to `struct
    // pollfd`; the slice pointer/length pair describes exactly the
    // memory the kernel may write `revents` into.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

#[cfg(target_os = "linux")]
const SOL_SOCKET: std::ffi::c_int = 1;
#[cfg(target_os = "linux")]
const SO_SNDBUF: std::ffi::c_int = 7;
#[cfg(target_os = "linux")]
const SO_RCVBUF: std::ffi::c_int = 8;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: std::ffi::c_int = 0xffff;
#[cfg(not(target_os = "linux"))]
const SO_SNDBUF: std::ffi::c_int = 0x1001;
#[cfg(not(target_os = "linux"))]
const SO_RCVBUF: std::ffi::c_int = 0x1002;

fn set_buf_opt(fd: RawFd, opt: std::ffi::c_int, bytes: usize) -> io::Result<()> {
    let val: std::ffi::c_int = bytes.min(std::ffi::c_int::MAX as usize) as std::ffi::c_int;
    // SAFETY: `optval` points at a live c_int of the advertised length
    // for the duration of the call.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            &val as *const std::ffi::c_int as *const std::ffi::c_void,
            std::mem::size_of::<std::ffi::c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Set `SO_SNDBUF` on a socket (the kernel clamps and may double the
/// value). Used to make kernel-buffer backpressure arrive early enough
/// for the bounded-queue shedding policy to be observable in tests.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buf_opt(fd, SO_SNDBUF, bytes)
}

/// Set `SO_RCVBUF` (same clamping rules). Setting it on a listener
/// before connections arrive makes accepted sockets inherit the small
/// window — how the backpressure smoke test's throttling proxy keeps
/// the kernel from absorbing the stall it is trying to create.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buf_opt(fd, SO_RCVBUF, bytes)
}

/// Cross-thread reactor wakeup: a nonblocking `UnixStream` pair. The
/// read end sits in the poll set; [`Waker::wake`] writes one byte. A
/// full pipe means a wakeup is already pending, so `WouldBlock` is
/// success.
pub struct Waker {
    tx: UnixStream,
}

/// The pollable read end owned by the reactor.
pub struct WakeReceiver {
    rx: UnixStream,
}

impl Waker {
    pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeReceiver { rx }))
    }

    /// Wake the reactor (idempotent while a wakeup is pending).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl WakeReceiver {
    pub fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Drain all pending wakeup bytes.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (mut b, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no readiness.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());

        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        let mut byte = [0u8; 1];
        b.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");
    }

    #[test]
    fn waker_wakes_a_poll() {
        let (waker, rx) = Waker::pair().unwrap();
        let mut fds = [PollFd::new(rx.raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "no wake pending");
        waker.wake();
        waker.wake(); // coalesces, never blocks
        let mut fds = [PollFd::new(rx.raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        rx.drain();
        let mut fds = [PollFd::new(rx.raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0, "drained");
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let s = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(s.as_raw_fd(), 4096).expect("setsockopt");
    }
}
