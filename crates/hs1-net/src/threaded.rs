//! The original thread-per-connection transport, kept as the measured
//! baseline for the reactor backend (see `net_loadgen`) and as the
//! fallback on non-unix hosts.
//!
//! Shape: one accept loop, one writer thread per outbound peer draining
//! an unbounded channel with blocking writes (two syscalls per frame —
//! length prefix, then body), one reader thread per inbound connection.
//! No reconnect, no bounded queues, no coalescing: exactly the
//! pre-reactor behavior, plus [`NetStats`] counting so an A/B run can
//! compare syscall and byte traffic across backends.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::framing::{self, PeerKind};
use crate::mesh::StreamRegistry;
use crate::mesh::{deregister_stream, register_stream, Inbound, MeshConfig, NetStats};
use hs1_types::codec::Encode;
use hs1_types::{ClientId, Message, ReplicaId};

/// Outbound handle to one peer: a channel drained by its writer thread.
#[derive(Clone)]
struct Outbound(Sender<Message>);

pub(crate) struct Threaded {
    me: ReplicaId,
    base_port: u16,
    host: String,
    replicas: Arc<Mutex<HashMap<u32, Outbound>>>,
    clients: Arc<Mutex<HashMap<u32, Outbound>>>,
    /// Every live stream (accepted and dialed) so shutdown can sever
    /// them and a restarted node can rebind the port.
    streams: StreamRegistry,
    stream_seq: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    /// The port the accept loop actually listens on (shutdown pokes it).
    listen_port: u16,
}

impl Threaded {
    pub(crate) fn start(
        me: ReplicaId,
        _n: usize,
        host: &str,
        base_port: u16,
        cfg: &MeshConfig,
        stats: Arc<NetStats>,
        inbox_tx: Sender<Inbound>,
    ) -> std::io::Result<Threaded> {
        let listen_port = cfg.listen_port.unwrap_or(base_port + me.0 as u16);
        let t = Threaded {
            me,
            base_port,
            host: host.to_string(),
            replicas: Arc::new(Mutex::new(HashMap::new())),
            clients: Arc::new(Mutex::new(HashMap::new())),
            streams: Arc::new(Mutex::new(HashMap::new())),
            stream_seq: Arc::new(AtomicU64::new(0)),
            shutting_down: Arc::new(AtomicBool::new(false)),
            stats,
            listen_port,
        };
        let listener = TcpListener::bind((host, listen_port))?;
        let inbox_tx2 = inbox_tx;
        let clients = t.clients.clone();
        let streams = t.streams.clone();
        let stream_seq = t.stream_seq.clone();
        let shutting_down = t.shutting_down.clone();
        let stats = t.stats.clone();
        thread::Builder::new().name(format!("accept-{}", me.0)).spawn(move || {
            for stream in listener.incoming() {
                if shutting_down.load(Ordering::SeqCst) {
                    break; // drops the listener: the port is free again
                }
                let Ok(stream) = stream else { continue };
                let token = register_stream(&streams, &stream_seq, &stream);
                let res = handle_incoming(
                    stream,
                    token,
                    inbox_tx2.clone(),
                    clients.clone(),
                    streams.clone(),
                    stats.clone(),
                );
                if res.is_err() {
                    // No reader thread took ownership (handshake failed).
                    deregister_stream(&streams, token);
                }
            }
        })?;
        Ok(t)
    }

    /// Sever every live stream (peers' writers fail and lazily
    /// reconnect later) and unblock the accept loop so the listener —
    /// and its port — are released.
    pub(crate) fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for (_, s) in self.streams.lock().unwrap().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.replicas.lock().unwrap().clear();
        self.clients.lock().unwrap().clear();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect((self.host.as_str(), self.listen_port));
    }

    /// Send to a replica, connecting lazily (drops on failure — the
    /// engines tolerate message loss via timeouts).
    pub(crate) fn send_replica(&self, to: ReplicaId, msg: Message) {
        let mut peers = self.replicas.lock().unwrap();
        if let std::collections::hash_map::Entry::Vacant(e) = peers.entry(to.0) {
            if let Some(out) = self.connect(to) {
                e.insert(out);
            } else {
                return;
            }
        }
        if let Some(out) = peers.get(&to.0) {
            if out.0.send(msg).is_err() {
                peers.remove(&to.0);
            }
        }
    }

    /// Send a response to a connected client (no-op if unknown).
    pub(crate) fn send_client(&self, to: ClientId, msg: Message) {
        let clients = self.clients.lock().unwrap();
        if let Some(out) = clients.get(&to.0) {
            let _ = out.0.send(msg);
        }
    }

    fn connect(&self, to: ReplicaId) -> Option<Outbound> {
        let addr = (self.host.as_str(), self.base_port + to.0 as u16);
        let mut stream = TcpStream::connect_timeout(
            &std::net::ToSocketAddrs::to_socket_addrs(&addr).ok()?.next()?,
            Duration::from_millis(500),
        )
        .ok()?;
        stream.set_nodelay(true).ok()?;
        framing::send_hello(&mut stream, PeerKind::Replica(self.me.0)).ok()?;
        let token = register_stream(&self.streams, &self.stream_seq, &stream);
        // Reader for the reverse direction of this stream is handled by
        // the remote's accept loop; here we only write.
        Some(spawn_writer(
            stream,
            &format!("w-{}-{}", self.me.0, to.0),
            Some((self.streams.clone(), token)),
            self.stats.clone(),
        ))
    }
}

fn spawn_writer(
    mut stream: TcpStream,
    name: &str,
    registration: Option<(StreamRegistry, Option<u64>)>,
    stats: Arc<NetStats>,
) -> Outbound {
    let (tx, rx) = channel::<Message>();
    let _ = thread::Builder::new().name(name.to_string()).spawn(move || {
        while let Ok(msg) = rx.recv() {
            // Same syscall profile as the original transport: one write
            // for the length prefix, one for the body, per frame.
            let body = msg.encoded();
            let len = (body.len() as u32).to_be_bytes();
            if stream.write_all(&len).is_err() || stream.write_all(&body).is_err() {
                break;
            }
            stats.tx_frames.fetch_add(1, Ordering::Relaxed);
            stats.tx_bytes.fetch_add(4 + body.len() as u64, Ordering::Relaxed);
            stats.write_calls.fetch_add(2, Ordering::Relaxed);
        }
        if let Some((registry, token)) = registration {
            deregister_stream(&registry, token);
        }
    });
    Outbound(tx)
}

fn handle_incoming(
    mut stream: TcpStream,
    token: Option<u64>,
    inbox: Sender<Inbound>,
    clients: Arc<Mutex<HashMap<u32, Outbound>>>,
    streams: StreamRegistry,
    stats: Arc<NetStats>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let hello = framing::recv_hello(&mut stream)?;
    match hello {
        PeerKind::Replica(id) => {
            thread::Builder::new().name(format!("r-replica-{id}")).spawn(move || {
                while let Ok(msg) = framing::read_msg(&mut stream) {
                    stats.rx_frames.fetch_add(1, Ordering::Relaxed);
                    if inbox.send(Inbound::FromReplica(ReplicaId(id), msg)).is_err() {
                        break;
                    }
                }
                deregister_stream(&streams, token);
            })?;
        }
        PeerKind::Client(id) => {
            // Register the write half so responses can reach the client
            // (the reader thread owns the registry token; the writer half
            // shares the same underlying socket).
            let write_half = stream.try_clone()?;
            clients.lock().unwrap().insert(
                id,
                spawn_writer(write_half, &format!("w-client-{id}"), None, stats.clone()),
            );
            thread::Builder::new().name(format!("r-client-{id}")).spawn(move || {
                while let Ok(msg) = framing::read_msg(&mut stream) {
                    stats.rx_frames.fetch_add(1, Ordering::Relaxed);
                    if inbox.send(Inbound::FromClient(ClientId(id), msg)).is_err() {
                        break;
                    }
                }
                deregister_stream(&streams, token);
            })?;
        }
    }
    Ok(())
}
