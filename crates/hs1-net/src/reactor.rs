//! The readiness-driven transport backend.
//!
//! One reactor thread per mesh owns every socket. The engine thread
//! never touches the network: `send_*` encodes once, pushes the frame
//! into a bounded per-peer [`FrameQueue`] and (only if the reactor is
//! asleep in `poll`) writes one wakeup byte. The reactor loop is:
//!
//! ```text
//!            engine thread                    reactor thread
//!   send_replica/broadcast ──► FrameQueue ──► dial pending peers
//!        (encode once,            │           flush queues (writev ≤64
//!         enforce caps,           │             frames per syscall)
//!         shed oldest)            │           poll(listener, waker, conns)
//!                                 └── wake ─► accept / handshake
//!                                             read frames ──► inbox
//!                                             reconnect backoff timers
//!                                             metrics tick (~100ms)
//! ```
//!
//! Backpressure: a slow peer's queue coalesces (frames pile up and go
//! out in big writev batches when the socket drains), then sheds
//! oldest-first past the caps — the engines already tolerate loss of
//! stale consensus traffic via timeouts, and blocking the proposer on
//! the slowest peer is exactly the failure mode this backend removes.
//! Reconnect: a dead peer link enters jittered exponential backoff
//! (base doubling to a max, ±50% jitter so a restarted replica isn't
//! hammered in lockstep) and is redialed as soon as traffic for it
//! exists.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::framing::{hello_bytes, parse_hello, Frame, FrameQueue, FrameReader, PeerKind};
use crate::mesh::{Inbound, MeshConfig, NetStats, NetStatsSnapshot};
use crate::poll::{poll_fds, set_send_buffer, PollFd, WakeReceiver, Waker, POLLIN, POLLOUT};
use hs1_obs::Obs;
use hs1_types::{ClientId, Message, ReplicaId};

/// State shared between the engine-facing [`crate::mesh::Mesh`] handle
/// and the reactor thread.
pub(crate) struct Shared {
    me: u32,
    n: usize,
    cfg: MeshConfig,
    /// Per-replica outbound queues (`queues[me]` is unused).
    queues: Vec<Mutex<FrameQueue>>,
    /// Outbound queues of currently-connected clients.
    client_queues: Mutex<HashMap<u32, Arc<Mutex<FrameQueue>>>>,
    shutting_down: AtomicBool,
    /// True while the reactor is (about to be) blocked in `poll`; lets
    /// the hot enqueue path skip the wakeup syscall when the reactor is
    /// already running.
    sleeping: AtomicBool,
    /// Bumped on every enqueue; the reactor rechecks it after raising
    /// `sleeping` so an enqueue in the gap is never slept through.
    pending_epoch: AtomicU64,
    obs: Mutex<Obs>,
    stats: Arc<NetStats>,
    waker: Waker,
}

impl Shared {
    pub(crate) fn enqueue_replica(&self, peer: u32, frame: Frame) {
        if self.shutting_down.load(Ordering::Relaxed) || peer as usize >= self.n {
            return;
        }
        let shed = {
            let mut q = self.queues[peer as usize].lock().expect("queue lock");
            q.push(frame);
            q.enforce_caps(self.cfg.queue_frames, self.cfg.queue_bytes)
        };
        if shed > 0 {
            self.stats.frames_shed.fetch_add(shed, Ordering::Relaxed);
        }
        self.notify();
    }

    pub(crate) fn enqueue_client(&self, client: u32, frame: Frame) {
        if self.shutting_down.load(Ordering::Relaxed) {
            return;
        }
        let Some(queue) = self.client_queues.lock().expect("clients lock").get(&client).cloned()
        else {
            return; // unknown client: drop, same as the threaded backend
        };
        let shed = {
            let mut q = queue.lock().expect("client queue lock");
            q.push(frame);
            q.enforce_caps(self.cfg.queue_frames, self.cfg.queue_bytes)
        };
        if shed > 0 {
            self.stats.frames_shed.fetch_add(shed, Ordering::Relaxed);
        }
        self.notify();
    }

    pub(crate) fn set_observer(&self, obs: Obs) {
        *self.obs.lock().expect("obs lock") = obs;
        self.notify();
    }

    /// Current depth of every peer's outbound queue:
    /// `(peer, frames, bytes)` for each peer except `me`. The same
    /// numbers the metrics tick publishes as `net_out_queue_*` gauges,
    /// read on demand for the `/status` introspection endpoint.
    pub(crate) fn queue_depths(&self) -> Vec<(usize, u64, u64)> {
        (0..self.n)
            .filter(|&peer| peer as u32 != self.me)
            .map(|peer| {
                let q = self.queues[peer].lock().expect("queue lock");
                (peer, q.len() as u64, q.bytes() as u64)
            })
            .collect()
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    fn notify(&self) {
        self.pending_epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

/// Bind the listener, spawn the reactor thread, and hand back the
/// shared state + join handle.
pub(crate) fn start(
    me: ReplicaId,
    n: usize,
    host: &str,
    base_port: u16,
    cfg: MeshConfig,
    stats: Arc<NetStats>,
    inbox: Sender<Inbound>,
) -> std::io::Result<(Arc<Shared>, std::thread::JoinHandle<()>)> {
    let listen_port = cfg.listen_port.unwrap_or(base_port + me.0 as u16);
    let listener = TcpListener::bind((host, listen_port))?;
    listener.set_nonblocking(true)?;
    let (waker, wake_rx) = Waker::pair()?;
    let shared = Arc::new(Shared {
        me: me.0,
        n,
        cfg,
        queues: (0..n).map(|_| Mutex::new(FrameQueue::new())).collect(),
        client_queues: Mutex::new(HashMap::new()),
        shutting_down: AtomicBool::new(false),
        sleeping: AtomicBool::new(false),
        pending_epoch: AtomicU64::new(0),
        obs: Mutex::new(Obs::noop()),
        stats,
        waker,
    });
    let reactor = Reactor {
        shared: shared.clone(),
        host: host.to_string(),
        base_port,
        listener,
        wake_rx,
        inbox,
        conns: HashMap::new(),
        next_token: 0,
        links: (0..n).map(|_| Link::Idle).collect(),
        ever_connected: vec![false; n],
        rng: 0x9E37_79B9 ^ ((me.0 as u64) << 32 | base_port as u64),
        obs_local: Obs::noop(),
        emitted: NetStatsSnapshot::default(),
        last_tick: Instant::now(),
    };
    let handle = std::thread::Builder::new()
        .name(format!("reactor-{}", me.0))
        .spawn(move || reactor.run())?;
    Ok((shared, handle))
}

/// Outbound link state for one replica peer.
enum Link {
    /// No connection and no recent failure; dialed as soon as traffic
    /// for the peer exists.
    Idle,
    Connected {
        token: u64,
    },
    /// Waiting out the jittered exponential backoff after a failure.
    Backoff {
        until: Instant,
        delay: Duration,
    },
}

enum ConnKind {
    /// Accepted, waiting for the 5-byte hello.
    HandshakeIn { buf: [u8; 5], got: usize },
    /// Accepted from replica `id` (read side of the peer's dial).
    ReplicaIn(u32),
    /// Accepted from client `id`; responses drain through `queue`.
    ClientIn { id: u32, queue: Arc<Mutex<FrameQueue>> },
    /// Dialed to replica `id` (write side; peers never write back here).
    ReplicaOut(u32),
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    reader: FrameReader,
    /// Ask poll for POLLOUT (a flush hit `WouldBlock`).
    want_write: bool,
    /// When the current send stall began (kernel buffer full).
    stall_since: Option<Instant>,
}

struct Reactor {
    shared: Arc<Shared>,
    host: String,
    base_port: u16,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    inbox: Sender<Inbound>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    links: Vec<Link>,
    ever_connected: Vec<bool>,
    /// SplitMix64 state for backoff jitter.
    rng: u64,
    /// Copy of the attached observer, refreshed each metrics tick.
    obs_local: Obs,
    /// Counter values already published to the observer.
    emitted: NetStatsSnapshot,
    last_tick: Instant,
}

impl Reactor {
    fn run(mut self) {
        while !self.shared.shutting_down.load(Ordering::SeqCst) {
            let epoch = self.shared.pending_epoch.load(Ordering::SeqCst);
            self.dial_pending();
            self.flush_connected();
            self.tick_metrics(false);

            let mut fds = Vec::with_capacity(2 + self.conns.len());
            fds.push(PollFd::new(self.wake_rx.raw_fd(), POLLIN));
            fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
            let mut tokens = Vec::with_capacity(self.conns.len());
            for (&token, conn) in &self.conns {
                let mut events = POLLIN;
                if conn.want_write {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(token);
            }

            self.shared.sleeping.store(true, Ordering::SeqCst);
            let timeout = if self.shared.pending_epoch.load(Ordering::SeqCst) != epoch {
                0 // an enqueue raced our pre-sleep window: don't sleep
            } else {
                self.poll_timeout_ms()
            };
            let _ = poll_fds(&mut fds, timeout);
            self.shared.sleeping.store(false, Ordering::SeqCst);

            if fds[0].readable() {
                self.wake_rx.drain();
            }
            if fds[1].readable() {
                self.accept_new();
            }
            for (i, &token) in tokens.iter().enumerate() {
                let fd = fds[2 + i];
                if fd.readable() {
                    self.handle_readable(token);
                }
                if fd.writable() && self.conns.contains_key(&token) {
                    self.flush_token(token);
                }
            }
        }
        // Drain bookkeeping so a mesh rebuild on the same port starts
        // clean; the final tick publishes whatever counters remain.
        self.conns.clear();
        for q in &self.shared.queues {
            q.lock().expect("queue lock").clear();
        }
        self.shared.client_queues.lock().expect("clients lock").clear();
        self.tick_metrics(true);
        self.obs_local.flush();
    }

    /// Milliseconds until the nearest deadline: a backoff expiry with
    /// pending traffic, or the next metrics tick.
    fn poll_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let tick_deadline =
            (self.last_tick + self.shared.cfg.metrics_interval).saturating_duration_since(now);
        let mut nearest = tick_deadline;
        for (peer, link) in self.links.iter().enumerate() {
            if let Link::Backoff { until, .. } = link {
                if !self.shared.queues[peer].lock().expect("queue lock").is_empty() {
                    nearest = nearest.min(until.saturating_duration_since(now));
                }
            }
        }
        nearest.as_millis().min(i32::MAX as u128) as i32
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64: tiny, seedable, good enough for backoff jitter.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `delay` with ±50% jitter: uniform in `[delay/2, delay*3/2)`.
    fn jittered(&mut self, delay: Duration) -> Duration {
        let nanos = delay.as_nanos().max(1) as u64;
        Duration::from_nanos(nanos / 2 + self.next_rand() % nanos)
    }

    /// Dial every disconnected peer that has traffic waiting and whose
    /// backoff (if any) has expired.
    fn dial_pending(&mut self) {
        let now = Instant::now();
        for peer in 0..self.shared.n {
            if peer as u32 == self.shared.me {
                continue;
            }
            match self.links[peer] {
                Link::Connected { .. } => continue,
                Link::Backoff { until, .. } if until > now => continue,
                _ => {}
            }
            if self.shared.queues[peer].lock().expect("queue lock").is_empty() {
                continue;
            }
            match self.dial(peer as u32) {
                Ok(stream) => {
                    if self.ever_connected[peer] {
                        self.shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        if self.obs_local.enabled() {
                            self.obs_local.counter("net_reconnects", peer as u32, 1);
                        }
                    }
                    self.ever_connected[peer] = true;
                    let token = self.insert_conn(stream, ConnKind::ReplicaOut(peer as u32));
                    self.links[peer] = Link::Connected { token };
                }
                Err(_) => {
                    let delay = match self.links[peer] {
                        Link::Backoff { delay, .. } => {
                            (delay * 2).min(self.shared.cfg.reconnect_max)
                        }
                        _ => self.shared.cfg.reconnect_base,
                    };
                    let jitter = self.jittered(delay);
                    self.links[peer] = Link::Backoff { until: now + jitter, delay };
                }
            }
        }
    }

    /// One dial attempt: connect (bounded), handshake while still in
    /// blocking mode (5 bytes into an empty send buffer cannot stall),
    /// then go nonblocking.
    fn dial(&mut self, peer: u32) -> std::io::Result<TcpStream> {
        let addr = (self.host.as_str(), self.base_port + peer as u16)
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no addr"))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.shared.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        if let Some(bytes) = self.shared.cfg.send_buffer {
            let _ = set_send_buffer(stream.as_raw_fd(), bytes);
        }
        stream.write_all(&hello_bytes(PeerKind::Replica(self.shared.me)))?;
        stream.set_nonblocking(true)?;
        Ok(stream)
    }

    fn insert_conn(&mut self, stream: TcpStream, kind: ConnKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(
            token,
            Conn { stream, kind, reader: FrameReader::new(), want_write: false, stall_since: None },
        );
        token
    }

    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.insert_conn(stream, ConnKind::HandshakeIn { buf: [0; 5], got: 0 });
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Flush every connected replica link and client connection with
    /// queued frames.
    fn flush_connected(&mut self) {
        let replica_tokens: Vec<u64> = self
            .links
            .iter()
            .filter_map(|l| match l {
                Link::Connected { token } => Some(*token),
                _ => None,
            })
            .collect();
        for token in replica_tokens {
            self.flush_token(token);
        }
        let client_tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| matches!(c.kind, ConnKind::ClientIn { .. }))
            .map(|(&t, _)| t)
            .collect();
        for token in client_tokens {
            self.flush_token(token);
        }
    }

    /// Drain one connection's queue into its socket. Disconnects on
    /// write errors.
    fn flush_token(&mut self, token: u64) {
        let res = {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let client_queue;
            let queue: &Mutex<FrameQueue> = match &conn.kind {
                ConnKind::ReplicaOut(p) => &self.shared.queues[*p as usize],
                ConnKind::ClientIn { queue, .. } => {
                    client_queue = queue.clone();
                    &client_queue
                }
                _ => return,
            };
            let mut q = queue.lock().expect("queue lock");
            if q.is_empty() {
                conn.want_write = false;
                return;
            }
            q.write_to(&mut conn.stream)
        };
        self.finish_flush(token, res);
    }

    fn finish_flush(&mut self, token: u64, res: std::io::Result<crate::framing::WriteProgress>) {
        match res {
            Ok(p) => {
                if p.bytes > 0 {
                    self.shared.stats.tx_bytes.fetch_add(p.bytes, Ordering::Relaxed);
                    self.shared.stats.tx_frames.fetch_add(p.frames, Ordering::Relaxed);
                    self.shared.stats.write_calls.fetch_add(p.calls, Ordering::Relaxed);
                }
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if p.would_block {
                    conn.want_write = true;
                    if conn.stall_since.is_none() {
                        conn.stall_since = Some(Instant::now());
                    }
                } else {
                    conn.want_write = false;
                    if let Some(t0) = conn.stall_since.take() {
                        if self.obs_local.enabled() {
                            self.obs_local
                                .observe_nanos("net_send_stall_ns", t0.elapsed().as_nanos() as u64);
                        }
                    }
                }
            }
            Err(_) => self.disconnect(token),
        }
    }

    fn handle_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        // Finish the handshake first; data may follow in the same burst.
        if let ConnKind::HandshakeIn { buf, got } = &mut conn.kind {
            loop {
                match conn.stream.read(&mut buf[*got..]) {
                    Ok(0) => {
                        self.disconnect(token);
                        return;
                    }
                    Ok(n) => {
                        *got += n;
                        if *got == buf.len() {
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.disconnect(token);
                        return;
                    }
                }
            }
            let hello = *buf;
            match parse_hello(&hello) {
                Ok(PeerKind::Replica(id)) => {
                    conn.kind = ConnKind::ReplicaIn(id);
                    // The peer just proved it is alive: skip any backoff
                    // still pending from dial failures while it was down,
                    // so queued traffic for it (e.g. the reply to the
                    // message it is about to send) flows immediately.
                    if let Some(link @ Link::Backoff { .. }) = self.links.get_mut(id as usize) {
                        *link = Link::Idle;
                    }
                }
                Ok(PeerKind::Client(id)) => {
                    let queue = Arc::new(Mutex::new(FrameQueue::new()));
                    conn.kind = ConnKind::ClientIn { id, queue: queue.clone() };
                    // A reconnecting client replaces its stale queue.
                    self.shared.client_queues.lock().expect("clients lock").insert(id, queue);
                }
                Err(_) => {
                    self.disconnect(token);
                    return;
                }
            }
        }

        let Some(conn) = self.conns.get_mut(&token) else { return };
        let outcome = conn.reader.read_from(&mut conn.stream);
        match outcome {
            Ok(o) => {
                if o.bytes > 0 {
                    self.shared.stats.rx_bytes.fetch_add(o.bytes, Ordering::Relaxed);
                    self.shared
                        .stats
                        .rx_frames
                        .fetch_add(o.messages.len() as u64, Ordering::Relaxed);
                    self.shared.stats.read_calls.fetch_add(o.calls, Ordering::Relaxed);
                }
                let from = match &conn.kind {
                    ConnKind::ReplicaIn(id) | ConnKind::ReplicaOut(id) => Sender2::Replica(*id),
                    ConnKind::ClientIn { id, .. } => Sender2::Client(*id),
                    ConnKind::HandshakeIn { .. } => return, // still incomplete
                };
                let eof = o.eof;
                for msg in o.messages {
                    let _ = self.inbox.send(from.wrap(msg));
                }
                if eof {
                    self.disconnect(token);
                }
            }
            Err(_) => self.disconnect(token),
        }
    }

    fn disconnect(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        match conn.kind {
            ConnKind::ReplicaOut(peer) => {
                // A half-sent frame cannot resume on a new connection.
                self.shared.queues[peer as usize].lock().expect("queue lock").abandon_partial();
                let delay = self.shared.cfg.reconnect_base;
                let jitter = self.jittered(delay);
                self.links[peer as usize] = Link::Backoff { until: Instant::now() + jitter, delay };
            }
            ConnKind::ClientIn { id, queue } => {
                let mut map = self.shared.client_queues.lock().expect("clients lock");
                // Only remove the registration if it is still ours (a
                // reconnected client may have replaced it already).
                if map.get(&id).is_some_and(|cur| Arc::ptr_eq(cur, &queue)) {
                    map.remove(&id);
                }
            }
            _ => {}
        }
    }

    /// Publish counters/gauges to the attached observer. Runs at
    /// `metrics_interval` (and once at shutdown with `force`).
    fn tick_metrics(&mut self, force: bool) {
        if !force && self.last_tick.elapsed() < self.shared.cfg.metrics_interval {
            return;
        }
        self.last_tick = Instant::now();
        self.obs_local = self.shared.obs.lock().expect("obs lock").clone();
        if !self.obs_local.enabled() {
            return;
        }
        let snap = self.shared.stats.snapshot();
        let deltas = [
            ("net_tx_frames", snap.tx_frames - self.emitted.tx_frames),
            ("net_tx_bytes", snap.tx_bytes - self.emitted.tx_bytes),
            ("net_writev_calls", snap.write_calls - self.emitted.write_calls),
            ("net_rx_frames", snap.rx_frames - self.emitted.rx_frames),
            ("net_rx_bytes", snap.rx_bytes - self.emitted.rx_bytes),
            ("net_read_calls", snap.read_calls - self.emitted.read_calls),
            ("net_frames_shed", snap.frames_shed - self.emitted.frames_shed),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                self.obs_local.counter(name, 0, delta);
            }
        }
        self.emitted = snap;
        for peer in 0..self.shared.n {
            if peer as u32 == self.shared.me {
                continue;
            }
            let (frames, bytes) = {
                let q = self.shared.queues[peer].lock().expect("queue lock");
                (q.len() as u64, q.bytes() as u64)
            };
            self.obs_local.gauge("net_out_queue_frames", peer as u32, frames);
            self.obs_local.gauge("net_out_queue_bytes", peer as u32, bytes);
        }
    }
}

/// Tiny helper naming the inbound attribution of a connection.
#[derive(Clone, Copy)]
enum Sender2 {
    Replica(u32),
    Client(u32),
}

impl Sender2 {
    fn wrap(self, msg: Message) -> Inbound {
        match self {
            Sender2::Replica(id) => Inbound::FromReplica(ReplicaId(id), msg),
            Sender2::Client(id) => Inbound::FromClient(ClientId(id), msg),
        }
    }
}
