//! Wall-clock transport load generator: A/B-measures the two mesh
//! backends on one localhost box and emits `bench_results/fig_net_knee.csv`.
//!
//! Two legs:
//!
//! * **mesh_bcast** — 4 bare meshes, node 0 broadcasts a fixed count of
//!   small consensus-sized frames as fast as a bounded backlog allows;
//!   throughput = frames delivered at the three receivers over elapsed
//!   time. Run once per backend (`threads`, `reactor`), best of
//!   `TRIALS`. This is the floor assertion the `net-perf` CI job
//!   enforces: the readiness loop must beat thread-per-connection in
//!   the same run on the same machine, or the process exits nonzero.
//! * **cluster** — a real 4-replica consensus deployment driven by an
//!   open-loop client at stepped offered rates; goodput rows show where
//!   the TCP path knees (reactor backend).
//!
//! ```text
//! cargo run --release -p hs1-net --bin net_loadgen -- [--out PATH] [--skip-floor]
//! ```

use std::io::Write as _;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hs1_core::{build_replica, Fault};
use hs1_ledger::ExecConfig;
use hs1_net::client_driver::ClientDriver;
use hs1_net::mesh::{Backend, Mesh, MeshConfig};
use hs1_net::node::NodeRunner;
use hs1_obs::{Clock, Histogram, Obs};
use hs1_types::{
    ClientId, Message, ProtocolKind, ReplicaId, SimDuration, SystemConfig, Transaction,
};

/// Broadcasts per mesh_bcast trial (×3 receivers = frames delivered).
const BCAST_COUNT: u64 = 40_000;
/// Keep at most this many frames in flight (enqueued − sent) so the
/// threaded backend's unbounded channels stay bounded and the reactor's
/// bounded queues never shed (caps are far above the per-peer share).
const BACKLOG_CAP: u64 = 4_000;
const TRIALS: usize = 2;
/// Offered rates for the cluster knee leg (tx/s).
const CLUSTER_RATES: [u64; 3] = [2_000, 8_000, 24_000];

/// Reserve a contiguous run of `n` free loopback ports (same idiom as
/// tests/tcp_smoke.rs).
fn free_base_port(n: u16) -> u16 {
    for _ in 0..32 {
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let base = probe.local_addr().expect("addr").port();
        drop(probe);
        if base.checked_add(n).is_none() {
            continue;
        }
        let all_free = (0..n).all(|i| TcpListener::bind(("127.0.0.1", base + i)).map(drop).is_ok());
        if all_free {
            return base;
        }
    }
    panic!("could not find {n} contiguous free loopback ports");
}

/// Send-stall summary for one lane: sample count plus p50/p99 of the
/// `net_send_stall_ns` histogram the reactor records when a partial
/// write leaves a peer's flush blocked on `POLLOUT`. `None` when the
/// lane produced no observer data (the threaded baseline ignores
/// observers — stalls there are invisible by construction).
#[derive(Clone, Copy)]
struct StallSummary {
    count: u64,
    p50_ns: u64,
    p99_ns: u64,
}

fn stall_summary(h: Option<&Histogram>) -> Option<StallSummary> {
    h.map(|h| StallSummary { count: h.count(), p50_ns: h.quantile(0.5), p99_ns: h.quantile(0.99) })
}

struct BcastResult {
    delivered: u64,
    elapsed: Duration,
    fps: f64,
    tx_frames: u64,
    write_calls: u64,
    shed: u64,
    stalls: Option<StallSummary>,
}

/// One mesh_bcast trial on `backend`: 4 meshes, node 0 firehoses
/// broadcasts under the backlog cap, receivers count deliveries.
fn mesh_bcast_trial(backend: Backend) -> BcastResult {
    let n = 4usize;
    let base_port = free_base_port(n as u16);
    let cfg = MeshConfig { backend, ..MeshConfig::default() };
    let meshes: Vec<Mesh> = (0..n)
        .map(|i| {
            Mesh::start_with(ReplicaId(i as u32), n, "127.0.0.1", base_port, cfg.clone())
                .expect("bind mesh")
        })
        .collect();

    let delivered = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut drainers = Vec::new();
    let mut receivers = meshes.into_iter().collect::<Vec<_>>();
    let sender_mesh = receivers.remove(0);
    // Record the sender's send-stall histogram (reactor only; the
    // threaded baseline ignores observers).
    let (obs, rec) = Obs::recording(Clock::wall());
    sender_mesh.set_observer(obs.with_actor(0));
    for mesh in receivers {
        let delivered = delivered.clone();
        let stop = stop.clone();
        drainers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match mesh.inbox.recv_timeout(Duration::from_millis(50)) {
                    Ok(_) => {
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                    Err(_) => break,
                }
            }
            mesh.shutdown();
        }));
    }

    // A consensus-vote-sized payload: small frames are the case writev
    // coalescing exists for.
    let msg = Message::Request(Transaction::kv_write(9, 1, 2, 3));
    let expected = BCAST_COUNT * 3;
    let start = Instant::now();
    for i in 0..BCAST_COUNT {
        sender_mesh.send_replica(ReplicaId(1), msg.clone());
        sender_mesh.send_replica(ReplicaId(2), msg.clone());
        sender_mesh.send_replica(ReplicaId(3), msg.clone());
        if i % 256 == 0 {
            // Self-pace against the slower of (kernel handoff, receiver
            // drain) so neither backend builds an unbounded backlog.
            while (i + 1) * 3 - delivered.load(Ordering::Relaxed) > BACKLOG_CAP {
                std::thread::yield_now();
            }
        }
    }
    // Wait (bounded) for the tail to arrive.
    let deadline = Instant::now() + Duration::from_secs(30);
    while delivered.load(Ordering::Relaxed) < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = start.elapsed();
    let got = delivered.load(Ordering::Relaxed);
    let stats = sender_mesh.stats();
    stop.store(true, Ordering::Relaxed);
    sender_mesh.shutdown();
    for d in drainers {
        let _ = d.join();
    }
    let stalls = stall_summary(rec.lock().unwrap().histogram(0, "net_send_stall_ns"));
    BcastResult {
        delivered: got,
        elapsed,
        fps: got as f64 / elapsed.as_secs_f64(),
        tx_frames: stats.tx_frames,
        write_calls: stats.write_calls,
        shed: stats.frames_shed,
        stalls,
    }
}

fn best_of(backend: Backend) -> BcastResult {
    let mut best: Option<BcastResult> = None;
    for t in 0..TRIALS {
        let r = mesh_bcast_trial(backend);
        eprintln!(
            "  {} trial {}: {:.0} frames/s ({} delivered in {:?}, {} writes, shed {})",
            backend.name(),
            t,
            r.fps,
            r.delivered,
            r.elapsed,
            r.write_calls,
            r.shed
        );
        if best.as_ref().is_none_or(|b| r.fps > b.fps) {
            best = Some(r);
        }
    }
    best.expect("at least one trial")
}

struct ClusterRow {
    offered: u64,
    submitted: u64,
    finalized: u64,
    goodput: f64,
    tx_frames: u64,
    write_calls: u64,
    shed: u64,
    stalls: Option<StallSummary>,
}

/// One 4-replica consensus run on the reactor backend with an open-loop
/// client at `rate` tx/s.
fn cluster_run(rate: u64) -> ClusterRow {
    let n = 4usize;
    let base_port = free_base_port(n as u16);
    let protocol = ProtocolKind::HotStuff1;
    let run_for = Duration::from_millis(1500);
    let mut sys = SystemConfig::new(n);
    sys.view_timer = SimDuration::from_millis(100);
    sys.delta = SimDuration::from_millis(10);
    sys.batch_size = 64;

    let stats = Arc::new(std::sync::Mutex::new((0u64, 0u64, 0u64, Histogram::default())));
    let mut replicas = Vec::new();
    for id in 0..n as u32 {
        let sys = sys.clone();
        let stats = stats.clone();
        replicas.push(std::thread::spawn(move || {
            let engine =
                build_replica(protocol, sys, ReplicaId(id), Fault::Honest, ExecConfig::default());
            let cfg = MeshConfig { backend: Backend::Reactor, ..MeshConfig::default() };
            let mesh = Mesh::start_with(ReplicaId(id), n, "127.0.0.1", base_port, cfg)
                .expect("bind replica");
            let mut runner = NodeRunner::new(engine, mesh);
            let (obs, rec) = Obs::recording(Clock::wall());
            runner.set_observer(obs);
            runner.run_for(run_for);
            let s = runner.net_stats();
            runner.shutdown();
            let rec = rec.lock().unwrap();
            let mut agg = stats.lock().unwrap();
            agg.0 += s.tx_frames;
            agg.1 += s.write_calls;
            agg.2 += s.frames_shed;
            if let Some(h) = rec.histogram(id, "net_send_stall_ns") {
                agg.3.merge(h);
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(150));
    let f = SystemConfig::new(n).f();
    let mut client = ClientDriver::connect(ClientId(0), n, "127.0.0.1", base_port, protocol, f)
        .expect("connect client");
    let window = Duration::from_millis(1000);
    let report = client.run_open_loop(window, rate, Duration::from_millis(200)).expect("open loop");
    drop(client);
    for r in replicas {
        let _ = r.join();
    }
    let agg = stats.lock().unwrap();
    let (tx_frames, write_calls, shed) = (agg.0, agg.1, agg.2);
    let stalls = stall_summary(Some(&agg.3));
    ClusterRow {
        offered: rate,
        submitted: report.submitted,
        finalized: report.finalized,
        goodput: report.finalized as f64 / window.as_secs_f64(),
        tx_frames,
        write_calls,
        shed,
        stalls,
    }
}

fn main() {
    let mut out_path = String::from("bench_results/fig_net_knee.csv");
    let mut skip_floor = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--skip-floor" => skip_floor = true,
            other => {
                eprintln!("unknown arg {other}");
                std::process::exit(2);
            }
        }
    }

    let mut csv = String::from(
        "leg,backend,offered,delivered,elapsed_ms,fps,goodput_tps,tx_frames,write_calls,frames_per_call,shed\n",
    );

    eprintln!("mesh_bcast leg: {BCAST_COUNT} broadcasts x 3 peers, best of {TRIALS}");
    let threads = best_of(Backend::Threads);
    let reactor = best_of(Backend::Reactor);
    for (name, r) in [("threads", &threads), ("reactor", &reactor)] {
        let fpc = r.tx_frames as f64 / r.write_calls.max(1) as f64;
        csv.push_str(&format!(
            "mesh_bcast,{name},{},{},{},{:.0},,{},{},{:.2},{}\n",
            BCAST_COUNT * 3,
            r.delivered,
            r.elapsed.as_millis(),
            r.fps,
            r.tx_frames,
            r.write_calls,
            fpc,
            r.shed
        ));
    }
    let speedup = reactor.fps / threads.fps;
    eprintln!(
        "mesh_bcast: reactor {:.0} frames/s vs threads {:.0} frames/s ({speedup:.2}x)",
        reactor.fps, threads.fps
    );

    eprintln!("cluster leg: 4 replicas, open-loop client, rates {CLUSTER_RATES:?}");
    let mut cluster_rows = Vec::new();
    for rate in CLUSTER_RATES {
        let row = cluster_run(rate);
        eprintln!(
            "  offered {rate}/s: submitted {}, finalized {}, goodput {:.0}/s",
            row.submitted, row.finalized, row.goodput
        );
        let fpc = row.tx_frames as f64 / row.write_calls.max(1) as f64;
        csv.push_str(&format!(
            "cluster,reactor,{},{},,,{:.0},{},{},{:.2},{}\n",
            row.offered, row.finalized, row.goodput, row.tx_frames, row.write_calls, fpc, row.shed
        ));
        cluster_rows.push(row);
    }

    // Per-lane backpressure summary: send-stall latency (recorded by
    // the reactor whenever a partial write leaves a peer blocked on
    // POLLOUT) and frames shed by the bounded-queue policy. The
    // threaded baseline has no observer hooks, so its stall column
    // reads "-" — invisible stalls, which is part of the A/B story.
    let ms = |ns: u64| ns as f64 / 1e6;
    eprintln!("send-stall / shed per lane (net_send_stall_ns):");
    eprintln!("  {:<24} {:>8} {:>12} {:>12} {:>8}", "lane", "stalls", "p50", "p99", "shed");
    // "-" means the lane has no stall observations at all (the threaded
    // baseline has no hooks; a reactor lane that never flushed under
    // POLLOUT never creates the histogram). An explicit 0 means the
    // reactor was watching and genuinely never stalled.
    let mut lanes: Vec<(String, Option<StallSummary>, u64)> = vec![
        ("mesh_bcast/threads".to_string(), threads.stalls.filter(|s| s.count > 0), threads.shed),
        ("mesh_bcast/reactor".to_string(), reactor.stalls, reactor.shed),
    ];
    for row in &cluster_rows {
        lanes.push((format!("cluster@{}", row.offered), row.stalls, row.shed));
    }
    for (lane, stalls, shed) in lanes {
        match stalls {
            Some(s) => eprintln!(
                "  {lane:<24} {:>8} {:>9.3}ms {:>9.3}ms {:>8}",
                s.count,
                ms(s.p50_ns),
                ms(s.p99_ns),
                shed
            ),
            None => eprintln!("  {lane:<24} {:>8} {:>12} {:>12} {:>8}", "-", "-", "-", shed),
        }
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut file = std::fs::File::create(&out_path).expect("create csv");
    file.write_all(csv.as_bytes()).expect("write csv");
    eprintln!("wrote {out_path}");

    // The floor assertion the net-perf CI job enforces: the readiness
    // loop must strictly beat the thread-per-connection baseline
    // measured in the same process on the same machine.
    if skip_floor {
        eprintln!("floor assertion skipped (--skip-floor)");
    } else if reactor.fps <= threads.fps {
        eprintln!(
            "FLOOR VIOLATION: reactor {:.0} frames/s <= threads {:.0} frames/s",
            reactor.fps, threads.fps
        );
        std::process::exit(1);
    } else {
        eprintln!("floor ok: reactor beats threads by {speedup:.2}x");
    }
}
