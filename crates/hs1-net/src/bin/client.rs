//! `hs1-client` — closed-loop client against a local HotStuff-1 cluster.
//!
//! Usage: `hs1-client <n> [protocol] [base_port] [seconds]`

use std::time::Duration;

use hs1_net::client_driver::ClientDriver;
use hs1_net::DEFAULT_BASE_PORT;
use hs1_obs::{Clock, Obs};
use hs1_types::{ClientId, ProtocolKind, SystemConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 {
        eprintln!("usage: hs1-client <n> [protocol] [base_port] [seconds]");
        std::process::exit(2);
    }
    let n: usize = args[1].parse().expect("n");
    let protocol = match args.get(2).map(String::as_str).unwrap_or("hs1") {
        "hs" => ProtocolKind::HotStuff,
        "hs2" => ProtocolKind::HotStuff2,
        "hs1-basic" => ProtocolKind::HotStuff1Basic,
        "hs1-slotted" => ProtocolKind::HotStuff1Slotted,
        _ => ProtocolKind::HotStuff1,
    };
    let base_port: u16 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_BASE_PORT);
    let seconds: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(10);

    let f = SystemConfig::new(n).f();
    let mut driver = ClientDriver::connect(ClientId(0), n, "127.0.0.1", base_port, protocol, f)
        .expect("connect to cluster");
    let samples = driver.run_closed_loop(Duration::from_secs(seconds)).expect("run");
    if samples.is_empty() {
        println!("no transactions finalized");
        return;
    }
    let mean_us: u64 = samples.iter().map(|(_, us)| us).sum::<u64>() / samples.len() as u64;
    println!(
        "{} transactions finalized, mean latency {:.2} ms",
        samples.len(),
        mean_us as f64 / 1000.0
    );
    // Re-route the per-sample data through the shared metrics snapshot
    // formatter so the TCP summary uses the same schema as sim reports.
    let (obs, rec) = Obs::recording(Clock::wall());
    obs.counter("txs_finalized", 0, samples.len() as u64);
    for (_, us) in &samples {
        obs.observe_nanos("client_e2e_ns", us * 1000);
    }
    print!("{}", rec.lock().expect("recorder").snapshot().to_table());
}
