//! `hs1-replica` — run one replica of a HotStuff-1 deployment over TCP.
//!
//! Usage: `hs1-replica <id> <n> [protocol] [base_port] [seconds]`
//! where protocol ∈ {hs, hs2, hs1, hs1-basic, hs1-slotted}.

use std::time::Duration;

use hs1_core::{build_replica, Fault};
use hs1_ledger::ExecConfig;
use hs1_net::mesh::Mesh;
use hs1_net::node::NodeRunner;
use hs1_net::DEFAULT_BASE_PORT;
use hs1_obs::{Clock, Obs};
use hs1_types::{ProtocolKind, ReplicaId, SystemConfig};

fn parse_protocol(s: &str) -> ProtocolKind {
    match s {
        "hs" => ProtocolKind::HotStuff,
        "hs2" => ProtocolKind::HotStuff2,
        "hs1-basic" => ProtocolKind::HotStuff1Basic,
        "hs1-slotted" => ProtocolKind::HotStuff1Slotted,
        _ => ProtocolKind::HotStuff1,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: hs1-replica <id> <n> [protocol] [base_port] [seconds]");
        std::process::exit(2);
    }
    let id: u32 = args[1].parse().expect("id");
    let n: usize = args[2].parse().expect("n");
    let protocol = parse_protocol(args.get(3).map(String::as_str).unwrap_or("hs1"));
    let base_port: u16 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_BASE_PORT);
    let seconds: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(30);

    let mut cfg = SystemConfig::new(n);
    cfg.view_timer = hs1_types::SimDuration::from_millis(200);
    cfg.delta = hs1_types::SimDuration::from_millis(20);
    cfg.batch_size = 64;
    let engine = build_replica(protocol, cfg, ReplicaId(id), Fault::Honest, ExecConfig::default());
    let mesh = Mesh::start(ReplicaId(id), n, "127.0.0.1", base_port).expect("bind");
    println!("replica {id}/{n} [{}] on port {}", protocol.name(), base_port + id as u16);
    let mut runner = NodeRunner::new(engine, mesh);
    // Wall-clock observer: the summary below shares the metrics schema
    // with the simulator's snapshots (byte-identical traces are only
    // promised under the sim's manual clock).
    let (obs, rec) = Obs::recording(Clock::wall());
    runner.set_observer(obs);
    runner.run_for(Duration::from_secs(seconds));
    println!("replica {id} done: {} blocks committed", runner.committed_blocks);
    print!("{}", rec.lock().expect("recorder").snapshot().to_table());
}
