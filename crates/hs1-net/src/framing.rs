//! Length-prefixed message framing with an identification handshake.
//!
//! Two families of helpers live here:
//!
//! * The original blocking helpers ([`write_msg`] / [`read_msg`] /
//!   [`send_hello`] / [`recv_hello`]) used by the client driver, the
//!   thread-per-connection backend, and tests.
//! * The nonblocking building blocks for the reactor backend:
//!   [`encode_frame`] (encode once, fan out by reference),
//!   [`FrameQueue`] (a bounded outbound queue that coalesces many
//!   frames into one `writev`-style [`Write::write_vectored`] call and
//!   resumes cleanly across partial writes), and [`FrameReader`]
//!   (incremental reassembly of frames from arbitrarily-split reads,
//!   with the same hostile-length rejection as [`read_msg`]).

use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use hs1_types::codec::{Decode, Encode};
use hs1_types::Message;

/// Who is on the other end of a connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerKind {
    Replica(u32),
    Client(u32),
}

/// The 5-byte handshake for `kind`: tag byte + big-endian id.
pub fn hello_bytes(kind: PeerKind) -> [u8; 5] {
    let (tag, id) = match kind {
        PeerKind::Replica(id) => (0u8, id),
        PeerKind::Client(id) => (1u8, id),
    };
    let mut buf = [0u8; 5];
    buf[0] = tag;
    buf[1..5].copy_from_slice(&id.to_be_bytes());
    buf
}

/// Decode the 5-byte handshake.
pub fn parse_hello(buf: &[u8; 5]) -> std::io::Result<PeerKind> {
    let id = u32::from_be_bytes(buf[1..5].try_into().expect("4 bytes"));
    match buf[0] {
        0 => Ok(PeerKind::Replica(id)),
        1 => Ok(PeerKind::Client(id)),
        t => {
            Err(std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad hello tag {t}")))
        }
    }
}

/// Write the 5-byte handshake: kind tag + id.
pub fn send_hello(stream: &mut TcpStream, kind: PeerKind) -> std::io::Result<()> {
    stream.write_all(&hello_bytes(kind))
}

/// Read the handshake.
pub fn recv_hello(stream: &mut TcpStream) -> std::io::Result<PeerKind> {
    let mut buf = [0u8; 5];
    stream.read_exact(&mut buf)?;
    parse_hello(&buf)
}

/// Write one framed message: u32 length prefix + encoded body.
pub fn write_msg(stream: &mut TcpStream, msg: &Message) -> std::io::Result<()> {
    let body = msg.encoded();
    let len = body.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&body)
}

/// Maximum accepted frame (hostile-peer defense).
const MAX_FRAME: u32 = 64 << 20;

/// Read one framed message.
pub fn read_msg(stream: &mut TcpStream) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Message::decode_exact(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// A wire frame: length prefix + encoded body, behind an `Arc` so a
/// broadcast encodes once and every per-peer queue shares the bytes.
pub type Frame = Arc<[u8]>;

/// Encode `msg` into one shareable frame.
pub fn encode_frame(msg: &Message) -> Frame {
    let body = msg.encoded();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    frame.into()
}

/// Most frames handed to one `write_vectored` call. 64 small consensus
/// messages per syscall is the coalescing win; more slices buy little
/// and cost stack.
const WRITEV_BATCH: usize = 64;

/// Outcome of one [`FrameQueue::write_to`] attempt.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WriteProgress {
    /// Bytes accepted by the sink.
    pub bytes: u64,
    /// Frames fully flushed (a partially-written head is not counted).
    pub frames: u64,
    /// `write_vectored` calls issued (syscalls on a real socket).
    pub calls: u64,
    /// The sink reported `WouldBlock` (the queue may still be nonempty).
    pub would_block: bool,
}

/// Bounded per-peer outbound queue with writev coalescing.
///
/// Frames are flushed strictly in order; a partial write leaves a byte
/// offset into the head frame and the next attempt resumes there, so
/// frame boundaries survive arbitrary split points. Backpressure is
/// explicit: [`FrameQueue::enforce_caps`] sheds **oldest-first** (the
/// engines tolerate loss of stale consensus messages far better than
/// blocking the proposer), never touching a head frame whose prefix is
/// already on the wire — shedding that one would desynchronize the
/// peer's framing.
#[derive(Default)]
pub struct FrameQueue {
    frames: VecDeque<Frame>,
    /// Bytes of `frames[0]` already written to the sink.
    head_offset: usize,
    /// Total unsent bytes across all queued frames (minus `head_offset`).
    bytes: usize,
}

impl FrameQueue {
    pub fn new() -> FrameQueue {
        FrameQueue::default()
    }

    pub fn push(&mut self, frame: Frame) {
        self.bytes += frame.len();
        self.frames.push_back(frame);
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Queued frames (including a partially-written head).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Unsent bytes still queued.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Shed oldest frames until the queue is within `max_frames` /
    /// `max_bytes`. Returns the number of frames shed. The in-flight
    /// head frame (offset > 0) and the newest frame are never shed: the
    /// head must finish for framing integrity, and shedding the frame
    /// that was just pushed would turn the queue into a black hole.
    pub fn enforce_caps(&mut self, max_frames: usize, max_bytes: usize) -> u64 {
        let mut shed = 0u64;
        while (self.frames.len() > max_frames || self.bytes > max_bytes) && self.frames.len() > 1 {
            let idx = usize::from(self.head_offset > 0);
            if idx + 1 >= self.frames.len() {
                break; // only the in-flight head and the newest remain
            }
            let dropped = self.frames.remove(idx).expect("index checked");
            self.bytes -= dropped.len();
            shed += 1;
        }
        shed
    }

    /// Drop a partially-written head frame (connection died mid-frame;
    /// resending its prefix on a fresh connection would corrupt the
    /// peer's framing, and the tail alone is not a valid frame).
    /// Returns true if a frame was abandoned.
    pub fn abandon_partial(&mut self) -> bool {
        if self.head_offset == 0 {
            return false;
        }
        let head = self.frames.pop_front().expect("offset implies a head");
        self.bytes -= head.len() - self.head_offset;
        self.head_offset = 0;
        true
    }

    /// Drop everything (mesh shutdown).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.head_offset = 0;
        self.bytes = 0;
    }

    /// Flush as much as the sink accepts, coalescing up to
    /// `WRITEV_BATCH` (64) frames per `write_vectored` call. Stops on
    /// `WouldBlock` (reported in the progress, not as an error) or when
    /// the queue drains; `Interrupted` is retried.
    pub fn write_to(&mut self, sink: &mut impl Write) -> std::io::Result<WriteProgress> {
        let mut progress = WriteProgress::default();
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.frames.len().min(WRITEV_BATCH));
            for (i, frame) in self.frames.iter().take(WRITEV_BATCH).enumerate() {
                let start = if i == 0 { self.head_offset } else { 0 };
                slices.push(IoSlice::new(&frame[start..]));
            }
            let written = match sink.write_vectored(&slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "sink accepted zero bytes",
                    ));
                }
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    progress.would_block = true;
                    return Ok(progress);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            progress.calls += 1;
            progress.bytes += written as u64;
            self.bytes -= written;
            let mut remaining = written;
            while remaining > 0 {
                let head_left = self.frames[0].len() - self.head_offset;
                if remaining >= head_left {
                    remaining -= head_left;
                    self.frames.pop_front();
                    self.head_offset = 0;
                    progress.frames += 1;
                } else {
                    self.head_offset += remaining;
                    remaining = 0;
                }
            }
        }
        Ok(progress)
    }
}

/// Bytes drained from the socket per [`FrameReader::read_from`] call
/// before yielding back to the event loop (keeps one firehose peer from
/// starving the rest of the poll set).
const READ_BUDGET: usize = 256 * 1024;

/// Incremental frame reassembly for nonblocking reads.
///
/// Feed it whatever the socket yields — single bytes, half a length
/// prefix, ten frames at once — and take complete messages out. Frame
/// boundaries are reconstructed exactly; a length prefix above the
/// `MAX_FRAME` limit (64 MiB) is rejected as `InvalidData` before any body
/// bytes are buffered (hostile-length defense, identical to
/// [`read_msg`]).
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Read position of the parsed prefix of `buf` (compacted lazily).
    pos: usize,
}

/// One socket drain's outcome.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    pub messages: Vec<Message>,
    pub bytes: u64,
    /// `read` calls issued.
    pub calls: u64,
    /// The peer closed the connection cleanly.
    pub eof: bool,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Buffer `bytes` and extract every complete frame.
    pub fn push_bytes(&mut self, bytes: &[u8], out: &mut Vec<Message>) -> std::io::Result<()> {
        self.buf.extend_from_slice(bytes);
        self.extract(out)
    }

    fn extract(&mut self, out: &mut Vec<Message>) -> std::io::Result<()> {
        loop {
            let avail = self.buf.len() - self.pos;
            if avail < 4 {
                break;
            }
            let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes");
            let len = u32::from_be_bytes(len_bytes);
            if len > MAX_FRAME {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("frame of {len} bytes exceeds limit"),
                ));
            }
            let total = 4 + len as usize;
            if avail < total {
                break;
            }
            let body = &self.buf[self.pos + 4..self.pos + total];
            let msg = Message::decode_exact(body)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push(msg);
            self.pos += total;
        }
        // Compact once the parsed prefix dominates the buffer.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(())
    }

    /// Drain the (nonblocking) stream until `WouldBlock`, EOF, or the
    /// per-call read budget is spent, decoding every complete frame.
    pub fn read_from(&mut self, stream: &mut impl Read) -> std::io::Result<ReadOutcome> {
        let mut outcome = ReadOutcome::default();
        let mut chunk = [0u8; 16 * 1024];
        while (outcome.bytes as usize) < READ_BUDGET {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    outcome.eof = true;
                    break;
                }
                Ok(n) => {
                    outcome.calls += 1;
                    outcome.bytes += n as u64;
                    self.push_bytes(&chunk[..n], &mut outcome.messages)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_types::Transaction;
    use std::net::TcpListener;

    #[test]
    fn roundtrip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let hello = recv_hello(&mut s).unwrap();
            let msg = read_msg(&mut s).unwrap();
            (hello, msg)
        });
        let mut out = TcpStream::connect(addr).unwrap();
        send_hello(&mut out, PeerKind::Client(7)).unwrap();
        let msg = Message::Request(Transaction::kv_write(7, 1, 2, 3));
        write_msg(&mut out, &msg).unwrap();
        let (hello, got) = handle.join().unwrap();
        assert_eq!(hello, PeerKind::Client(7));
        assert_eq!(got, msg);
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_msg(&mut s).map(|_| ())
        });
        let mut out = TcpStream::connect(addr).unwrap();
        out.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert!(handle.join().unwrap().is_err());
    }

    /// A sink that accepts at most `cap` bytes per write call — drives
    /// every partial-write resumption path in [`FrameQueue`].
    struct Chokepoint {
        accepted: Vec<u8>,
        cap: usize,
        calls: u64,
    }

    impl Chokepoint {
        fn new(cap: usize) -> Chokepoint {
            Chokepoint { accepted: Vec::new(), cap, calls: 0 }
        }
    }

    impl Write for Chokepoint {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            self.calls += 1;
            let mut budget = self.cap;
            let mut written = 0;
            for b in bufs {
                if budget == 0 {
                    break;
                }
                let n = b.len().min(budget);
                self.accepted.extend_from_slice(&b[..n]);
                written += n;
                budget -= n;
            }
            Ok(written)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn test_messages(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::Request(Transaction::kv_write(i as u32, i as u64, i as u64 * 7, 1)))
            .collect()
    }

    /// Decode a byte stream that must contain exactly `want` frames in
    /// order.
    fn decode_stream(bytes: &[u8], want: &[Message]) {
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        reader.push_bytes(bytes, &mut got).expect("clean stream");
        assert_eq!(got, want, "frame boundaries preserved");
    }

    #[test]
    fn frame_queue_coalesces_into_one_vectored_call() {
        let msgs = test_messages(10);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        let mut sink = Chokepoint::new(usize::MAX);
        let progress = q.write_to(&mut sink).unwrap();
        assert_eq!(progress.calls, 1, "ten frames, one writev");
        assert_eq!(progress.frames, 10);
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        decode_stream(&sink.accepted, &msgs);
    }

    #[test]
    fn frame_boundaries_survive_every_split_point() {
        // Write the same 7 frames through sinks that accept 1, 2, 3, 5,
        // 13, ... bytes per call: every possible split point inside a
        // length prefix and inside a body is exercised.
        let msgs = test_messages(7);
        for cap in [1usize, 2, 3, 5, 13, 31, 64, 127, 1000] {
            let mut q = FrameQueue::new();
            for m in &msgs {
                q.push(encode_frame(m));
            }
            let total: usize = q.bytes();
            let mut sink = Chokepoint::new(cap);
            let progress = q.write_to(&mut sink).unwrap();
            assert!(q.is_empty(), "cap {cap}: queue drained");
            assert_eq!(progress.bytes as usize, total, "cap {cap}: all bytes written");
            assert_eq!(progress.frames, 7, "cap {cap}");
            decode_stream(&sink.accepted, &msgs);
        }
    }

    /// A sink that accepts `cap` bytes then reports `WouldBlock`,
    /// modeling a full kernel send buffer.
    struct Saturating {
        inner: Chokepoint,
        budget: usize,
    }

    impl Write for Saturating {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"));
            }
            self.inner.cap = self.budget;
            let n = self.inner.write_vectored(bufs)?;
            self.budget -= n;
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_write_resumes_mid_frame_across_attempts() {
        let msgs = test_messages(4);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        let frame_len = encode_frame(&msgs[0]).len();
        // First attempt: the sink takes one and a half frames then blocks.
        let mut sink = Saturating { inner: Chokepoint::new(0), budget: frame_len + frame_len / 2 };
        let p1 = q.write_to(&mut sink).unwrap();
        assert!(p1.would_block);
        assert_eq!(p1.frames, 1, "one frame fully flushed");
        assert!(!q.is_empty());
        // Second attempt on a reopened sink budget: everything drains and
        // the byte stream still parses as exactly the original frames.
        sink.budget = usize::MAX;
        let p2 = q.write_to(&mut sink).unwrap();
        assert!(!p2.would_block);
        assert_eq!(p1.frames + p2.frames, 4);
        decode_stream(&sink.inner.accepted, &msgs);
    }

    #[test]
    fn shed_oldest_first_never_the_inflight_head() {
        let msgs = test_messages(6);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        // Start writing frame 0 so its prefix is "on the wire".
        let mut sink = Saturating { inner: Chokepoint::new(0), budget: 2 };
        let p = q.write_to(&mut sink).unwrap();
        assert!(p.would_block && p.frames == 0);
        // Cap of 3 frames: sheds must take the oldest *unsent* frames
        // (1, 2, 3), keeping the in-flight head and the newest.
        let shed = q.enforce_caps(3, usize::MAX);
        assert_eq!(shed, 3);
        assert_eq!(q.len(), 3);
        sink.budget = usize::MAX;
        q.write_to(&mut sink).unwrap();
        decode_stream(&sink.inner.accepted, &[msgs[0].clone(), msgs[4].clone(), msgs[5].clone()]);
    }

    #[test]
    fn byte_cap_sheds_and_newest_survives() {
        let msgs = test_messages(5);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        let shed = q.enforce_caps(usize::MAX, 1);
        // Caps below a single frame still keep the newest frame: a
        // queue must never become a black hole.
        assert_eq!(shed, 4);
        assert_eq!(q.len(), 1);
        let mut sink = Chokepoint::new(usize::MAX);
        q.write_to(&mut sink).unwrap();
        decode_stream(&sink.accepted, &msgs[4..]);
    }

    #[test]
    fn abandon_partial_resynchronizes_after_disconnect() {
        let msgs = test_messages(3);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        let mut sink = Saturating { inner: Chokepoint::new(0), budget: 3 };
        q.write_to(&mut sink).unwrap();
        // Connection died with 3 bytes of frame 0 sent. A fresh
        // connection must never see the rest of frame 0.
        assert!(q.abandon_partial());
        assert!(!q.abandon_partial(), "idempotent");
        let mut fresh = Chokepoint::new(usize::MAX);
        q.write_to(&mut fresh).unwrap();
        decode_stream(&fresh.accepted, &msgs[1..]);
    }

    #[test]
    fn frame_reader_rejects_hostile_length() {
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        // A 4 GiB length prefix must be rejected from the prefix alone.
        let err = reader.push_bytes(&u32::MAX.to_be_bytes(), &mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(out.is_empty());
    }

    #[test]
    fn frame_reader_reassembles_byte_at_a_time() {
        let msgs = test_messages(3);
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in &stream {
            reader.push_bytes(std::slice::from_ref(b), &mut out).unwrap();
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn frame_queue_then_reader_roundtrip_over_socket() {
        // End to end over a real nonblocking socket pair: the writev
        // side and the reassembly side agree on every boundary.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        tx.set_nonblocking(true).unwrap();
        rx.set_nonblocking(true).unwrap();

        let msgs = test_messages(40);
        let mut q = FrameQueue::new();
        for m in &msgs {
            q.push(encode_frame(m));
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut tx = tx;
        let mut rx = rx;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < msgs.len() {
            assert!(std::time::Instant::now() < deadline, "socket roundtrip stalled");
            let _ = q.write_to(&mut tx).unwrap();
            let outcome = reader.read_from(&mut rx).unwrap();
            got.extend(outcome.messages);
            if q.is_empty() && outcome.bytes == 0 {
                std::thread::yield_now();
            }
        }
        assert_eq!(got, msgs);
    }
}
