//! Length-prefixed message framing with an identification handshake.

use std::io::{Read, Write};
use std::net::TcpStream;

use hs1_types::codec::{Decode, Encode};
use hs1_types::Message;

/// Who is on the other end of a connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PeerKind {
    Replica(u32),
    Client(u32),
}

/// Write the 5-byte handshake: kind tag + id.
pub fn send_hello(stream: &mut TcpStream, kind: PeerKind) -> std::io::Result<()> {
    let (tag, id) = match kind {
        PeerKind::Replica(id) => (0u8, id),
        PeerKind::Client(id) => (1u8, id),
    };
    let mut buf = [0u8; 5];
    buf[0] = tag;
    buf[1..5].copy_from_slice(&id.to_be_bytes());
    stream.write_all(&buf)
}

/// Read the handshake.
pub fn recv_hello(stream: &mut TcpStream) -> std::io::Result<PeerKind> {
    let mut buf = [0u8; 5];
    stream.read_exact(&mut buf)?;
    let id = u32::from_be_bytes(buf[1..5].try_into().expect("4 bytes"));
    match buf[0] {
        0 => Ok(PeerKind::Replica(id)),
        1 => Ok(PeerKind::Client(id)),
        t => {
            Err(std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad hello tag {t}")))
        }
    }
}

/// Write one framed message: u32 length prefix + encoded body.
pub fn write_msg(stream: &mut TcpStream, msg: &Message) -> std::io::Result<()> {
    let body = msg.encoded();
    let len = body.len() as u32;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&body)
}

/// Maximum accepted frame (hostile-peer defense).
const MAX_FRAME: u32 = 64 << 20;

/// Read one framed message.
pub fn read_msg(stream: &mut TcpStream) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Message::decode_exact(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_types::Transaction;
    use std::net::TcpListener;

    #[test]
    fn roundtrip_over_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let hello = recv_hello(&mut s).unwrap();
            let msg = read_msg(&mut s).unwrap();
            (hello, msg)
        });
        let mut out = TcpStream::connect(addr).unwrap();
        send_hello(&mut out, PeerKind::Client(7)).unwrap();
        let msg = Message::Request(Transaction::kv_write(7, 1, 2, 3));
        write_msg(&mut out, &msg).unwrap();
        let (hello, got) = handle.join().unwrap();
        assert_eq!(hello, PeerKind::Client(7));
        assert_eq!(got, msg);
    }

    #[test]
    fn oversized_frame_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_msg(&mut s).map(|_| ())
        });
        let mut out = TcpStream::connect(addr).unwrap();
        out.write_all(&u32::MAX.to_be_bytes()).unwrap();
        assert!(handle.join().unwrap().is_err());
    }
}
