//! The peer mesh: maintains connections between replicas and to clients,
//! with one writer thread per peer and reader threads feeding a shared
//! inbox.

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::framing::{self, PeerKind};
use hs1_types::{ClientId, Message, ReplicaId};

/// Inbound event delivered to the node loop.
pub enum Inbound {
    FromReplica(ReplicaId, Message),
    FromClient(ClientId, Message),
}

/// Outbound handle to one peer: a channel drained by its writer thread.
#[derive(Clone)]
struct Outbound(Sender<Message>);

/// Live streams keyed by a registration token. Reader/writer threads
/// deregister their stream when they exit, so the registry holds only
/// live connections (no fd leak on reconnecting peers) while still
/// letting [`Mesh::shutdown`] sever everything at once.
type StreamRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

fn register_stream(registry: &StreamRegistry, seq: &AtomicU64, s: &TcpStream) -> Option<u64> {
    let clone = s.try_clone().ok()?;
    let token = seq.fetch_add(1, Ordering::Relaxed);
    registry.lock().unwrap().insert(token, clone);
    Some(token)
}

fn deregister_stream(registry: &StreamRegistry, token: Option<u64>) {
    if let Some(t) = token {
        registry.lock().unwrap().remove(&t);
    }
}

/// The mesh of a single replica process.
pub struct Mesh {
    me: ReplicaId,
    n: usize,
    base_port: u16,
    host: String,
    replicas: Arc<Mutex<HashMap<u32, Outbound>>>,
    clients: Arc<Mutex<HashMap<u32, Outbound>>>,
    /// Every live stream (accepted and dialed) so [`Mesh::shutdown`] can
    /// sever them and a restarted node can rebind the port.
    streams: StreamRegistry,
    stream_seq: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
    pub inbox: Receiver<Inbound>,
    inbox_tx: Sender<Inbound>,
}

impl Mesh {
    /// Bind the listener for `me` and start accepting.
    pub fn start(me: ReplicaId, n: usize, host: &str, base_port: u16) -> std::io::Result<Mesh> {
        let (inbox_tx, inbox) = channel();
        let mesh = Mesh {
            me,
            n,
            base_port,
            host: host.to_string(),
            replicas: Arc::new(Mutex::new(HashMap::new())),
            clients: Arc::new(Mutex::new(HashMap::new())),
            streams: Arc::new(Mutex::new(HashMap::new())),
            stream_seq: Arc::new(AtomicU64::new(0)),
            shutting_down: Arc::new(AtomicBool::new(false)),
            inbox,
            inbox_tx,
        };
        let listener = TcpListener::bind((host, base_port + me.0 as u16))?;
        let inbox_tx = mesh.inbox_tx.clone();
        let clients = mesh.clients.clone();
        let streams = mesh.streams.clone();
        let stream_seq = mesh.stream_seq.clone();
        let shutting_down = mesh.shutting_down.clone();
        thread::Builder::new().name(format!("accept-{}", me.0)).spawn(move || {
            for stream in listener.incoming() {
                if shutting_down.load(Ordering::SeqCst) {
                    break; // drops the listener: the port is free again
                }
                let Ok(stream) = stream else { continue };
                let token = register_stream(&streams, &stream_seq, &stream);
                let res = handle_incoming(
                    stream,
                    token,
                    inbox_tx.clone(),
                    clients.clone(),
                    streams.clone(),
                );
                if res.is_err() {
                    // No reader thread took ownership (handshake failed).
                    deregister_stream(&streams, token);
                }
            }
        })?;
        Ok(mesh)
    }

    /// Deployment size this mesh was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tear the mesh down: sever every live stream (peers' writers fail
    /// and lazily reconnect later) and unblock the accept loop so the
    /// listener — and its port — are released. After this the node can be
    /// "restarted" in-process by building a fresh [`Mesh`] on the same
    /// port, which is how the crash-recovery example kills a node.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for (_, s) in self.streams.lock().unwrap().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.replicas.lock().unwrap().clear();
        self.clients.lock().unwrap().clear();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect((self.host.as_str(), self.base_port + self.me.0 as u16));
    }

    /// Send to a replica, connecting lazily (drops on failure — the
    /// engines tolerate message loss via timeouts).
    pub fn send_replica(&self, to: ReplicaId, msg: Message) {
        if to == self.me {
            let _ = self.inbox_tx.send(Inbound::FromReplica(self.me, msg));
            return;
        }
        let mut peers = self.replicas.lock().unwrap();
        if let std::collections::hash_map::Entry::Vacant(e) = peers.entry(to.0) {
            if let Some(out) = self.connect(to) {
                e.insert(out);
            } else {
                return;
            }
        }
        if let Some(out) = peers.get(&to.0) {
            if out.0.send(msg).is_err() {
                peers.remove(&to.0);
            }
        }
    }

    pub fn broadcast(&self, msg: Message) {
        for r in 0..self.n {
            self.send_replica(ReplicaId(r as u32), msg.clone());
        }
    }

    /// Send a response to a connected client (no-op if unknown).
    pub fn send_client(&self, to: ClientId, msg: Message) {
        let clients = self.clients.lock().unwrap();
        if let Some(out) = clients.get(&to.0) {
            let _ = out.0.send(msg);
        }
    }

    fn connect(&self, to: ReplicaId) -> Option<Outbound> {
        let addr = (self.host.as_str(), self.base_port + to.0 as u16);
        let mut stream = TcpStream::connect_timeout(
            &std::net::ToSocketAddrs::to_socket_addrs(&addr).ok()?.next()?,
            Duration::from_millis(500),
        )
        .ok()?;
        stream.set_nodelay(true).ok()?;
        framing::send_hello(&mut stream, PeerKind::Replica(self.me.0)).ok()?;
        let token = register_stream(&self.streams, &self.stream_seq, &stream);
        // Reader for the reverse direction of this stream is handled by
        // the remote's accept loop; here we only write.
        Some(spawn_writer(
            stream,
            &format!("w-{}-{}", self.me.0, to.0),
            Some((self.streams.clone(), token)),
        ))
    }
}

fn spawn_writer(
    mut stream: TcpStream,
    name: &str,
    registration: Option<(StreamRegistry, Option<u64>)>,
) -> Outbound {
    let (tx, rx) = channel::<Message>();
    let _ = thread::Builder::new().name(name.to_string()).spawn(move || {
        while let Ok(msg) = rx.recv() {
            if framing::write_msg(&mut stream, &msg).is_err() {
                break;
            }
        }
        if let Some((registry, token)) = registration {
            deregister_stream(&registry, token);
        }
    });
    Outbound(tx)
}

fn handle_incoming(
    mut stream: TcpStream,
    token: Option<u64>,
    inbox: Sender<Inbound>,
    clients: Arc<Mutex<HashMap<u32, Outbound>>>,
    streams: StreamRegistry,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let hello = framing::recv_hello(&mut stream)?;
    match hello {
        PeerKind::Replica(id) => {
            thread::Builder::new().name(format!("r-replica-{id}")).spawn(move || {
                while let Ok(msg) = framing::read_msg(&mut stream) {
                    if inbox.send(Inbound::FromReplica(ReplicaId(id), msg)).is_err() {
                        break;
                    }
                }
                deregister_stream(&streams, token);
            })?;
        }
        PeerKind::Client(id) => {
            // Register the write half so responses can reach the client
            // (the reader thread owns the registry token; the writer half
            // shares the same underlying socket).
            let write_half = stream.try_clone()?;
            clients
                .lock()
                .unwrap()
                .insert(id, spawn_writer(write_half, &format!("w-client-{id}"), None));
            thread::Builder::new().name(format!("r-client-{id}")).spawn(move || {
                while let Ok(msg) = framing::read_msg(&mut stream) {
                    if inbox.send(Inbound::FromClient(ClientId(id), msg)).is_err() {
                        break;
                    }
                }
                deregister_stream(&streams, token);
            })?;
        }
    }
    Ok(())
}
