//! The peer mesh: maintains connections between replicas and to
//! clients behind one small API (`send_replica` / `broadcast` /
//! `send_client` / `inbox`), with two interchangeable transport
//! backends:
//!
//! * [`Backend::Reactor`] (default on unix) — a readiness-driven event
//!   loop: one reactor thread per mesh owns every socket nonblocking,
//!   drains per-peer bounded [`crate::framing::FrameQueue`]s with writev coalescing,
//!   sheds oldest-first under backpressure, and redials dead peers with
//!   jittered exponential backoff (the private `reactor` module).
//! * [`Backend::Threads`] — the original thread-per-connection
//!   implementation (one writer thread per peer, blocking writes,
//!   unbounded channels). Kept as the measured baseline for
//!   `net_loadgen`'s A/B floor and as the non-unix fallback.
//!
//! Sending never blocks the caller on the network in either backend:
//! the reactor enqueues into a bounded queue (shedding the oldest
//! frames of a slow peer instead of waiting), the threaded backend
//! enqueues into an unbounded channel (the old behavior — memory is
//! its backpressure policy, which is exactly why it is no longer the
//! default).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::framing::encode_frame;
use crate::threaded;
use hs1_obs::Obs;
use hs1_types::{ClientId, Message, ReplicaId};

#[cfg(unix)]
use crate::reactor;

/// Inbound event delivered to the node loop.
pub enum Inbound {
    FromReplica(ReplicaId, Message),
    FromClient(ClientId, Message),
}

/// Which transport implementation a mesh runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Readiness-driven event loop (nonblocking sockets + `poll(2)`,
    /// writev coalescing, bounded queues, reconnect). Unix only; on
    /// other hosts it silently falls back to [`Backend::Threads`].
    Reactor,
    /// Thread-per-connection blocking I/O (the pre-reactor transport).
    Threads,
}

impl Backend {
    /// `HS1_NET_BACKEND=threads|reactor` overrides the default
    /// (reactor on unix, threads elsewhere).
    fn from_env() -> Backend {
        match std::env::var("HS1_NET_BACKEND").as_deref() {
            Ok("threads") | Ok("threaded") => Backend::Threads,
            Ok("reactor") => Backend::Reactor,
            _ => {
                if cfg!(unix) {
                    Backend::Reactor
                } else {
                    Backend::Threads
                }
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Backend::Reactor => "reactor",
            Backend::Threads => "threads",
        }
    }
}

/// Transport tuning. [`MeshConfig::default`] is what every production
/// entry point ([`Mesh::start`]) uses; tests shrink the queue caps and
/// send buffer to make backpressure observable quickly.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    pub backend: Backend,
    /// Per-peer outbound queue cap in frames; beyond it the oldest
    /// unsent frames are shed (reactor backend only).
    pub queue_frames: usize,
    /// Per-peer outbound queue cap in bytes.
    pub queue_bytes: usize,
    /// First reconnect delay after a peer connection dies; doubles per
    /// failed attempt (with ±50% jitter) up to `reconnect_max`.
    pub reconnect_base: Duration,
    pub reconnect_max: Duration,
    /// Bound on one dial attempt (loopback dials resolve instantly;
    /// this caps the reactor stall a blackholed peer could cause).
    pub connect_timeout: Duration,
    /// Listen on this port instead of `base_port + me` (lets tests
    /// interpose a proxy at the advertised port).
    pub listen_port: Option<u16>,
    /// Shrink `SO_SNDBUF` on dialed peer connections so kernel-buffer
    /// backpressure reaches the bounded queues quickly (tests only;
    /// `None` keeps the OS default).
    pub send_buffer: Option<usize>,
    /// How often the reactor publishes queue gauges / counter deltas to
    /// the attached observer.
    pub metrics_interval: Duration,
}

impl Default for MeshConfig {
    fn default() -> MeshConfig {
        MeshConfig {
            backend: Backend::from_env(),
            queue_frames: 8192,
            queue_bytes: 16 << 20,
            reconnect_base: Duration::from_millis(50),
            reconnect_max: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
            listen_port: None,
            send_buffer: None,
            metrics_interval: Duration::from_millis(100),
        }
    }
}

/// Transport counters, shared across the send paths and the reactor /
/// writer threads. Exposed raw for harnesses ([`Mesh::stats`]) and
/// mirrored into `hs1-obs` counters by the reactor's metrics tick.
#[derive(Default)]
pub struct NetStats {
    /// Frames fully handed to the kernel.
    pub tx_frames: AtomicU64,
    pub tx_bytes: AtomicU64,
    /// Write syscalls issued (`writev` for the reactor — the coalescing
    /// ratio is `tx_frames / write_calls`).
    pub write_calls: AtomicU64,
    pub rx_frames: AtomicU64,
    pub rx_bytes: AtomicU64,
    pub read_calls: AtomicU64,
    /// Frames shed oldest-first by the bounded-queue backpressure
    /// policy (slow or disconnected peers).
    pub frames_shed: AtomicU64,
    /// Successful re-dials of a peer that had been connected before.
    pub reconnects: AtomicU64,
}

/// Point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStatsSnapshot {
    pub tx_frames: u64,
    pub tx_bytes: u64,
    pub write_calls: u64,
    pub rx_frames: u64,
    pub rx_bytes: u64,
    pub read_calls: u64,
    pub frames_shed: u64,
    pub reconnects: u64,
}

impl NetStats {
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            tx_frames: self.tx_frames.load(Ordering::Relaxed),
            tx_bytes: self.tx_bytes.load(Ordering::Relaxed),
            write_calls: self.write_calls.load(Ordering::Relaxed),
            rx_frames: self.rx_frames.load(Ordering::Relaxed),
            rx_bytes: self.rx_bytes.load(Ordering::Relaxed),
            read_calls: self.read_calls.load(Ordering::Relaxed),
            frames_shed: self.frames_shed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }
}

enum Inner {
    #[cfg(unix)]
    Reactor {
        shared: Arc<reactor::Shared>,
        thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    },
    Threads(threaded::Threaded),
}

/// The mesh of a single replica process.
pub struct Mesh {
    me: ReplicaId,
    n: usize,
    inner: Inner,
    stats: Arc<NetStats>,
    down: AtomicBool,
    pub inbox: Receiver<Inbound>,
    inbox_tx: Sender<Inbound>,
}

impl Mesh {
    /// Bind the listener for `me` and start the default transport.
    pub fn start(me: ReplicaId, n: usize, host: &str, base_port: u16) -> std::io::Result<Mesh> {
        Mesh::start_with(me, n, host, base_port, MeshConfig::default())
    }

    /// Bind and start with explicit transport tuning.
    pub fn start_with(
        me: ReplicaId,
        n: usize,
        host: &str,
        base_port: u16,
        cfg: MeshConfig,
    ) -> std::io::Result<Mesh> {
        let (inbox_tx, inbox) = channel();
        let stats = Arc::new(NetStats::default());
        let backend = if cfg!(unix) { cfg.backend } else { Backend::Threads };
        let inner = match backend {
            #[cfg(unix)]
            Backend::Reactor => {
                let (shared, thread) =
                    reactor::start(me, n, host, base_port, cfg, stats.clone(), inbox_tx.clone())?;
                Inner::Reactor { shared, thread: Mutex::new(Some(thread)) }
            }
            #[cfg(not(unix))]
            Backend::Reactor => unreachable!("non-unix backend forced to Threads above"),
            Backend::Threads => Inner::Threads(threaded::Threaded::start(
                me,
                n,
                host,
                base_port,
                &cfg,
                stats.clone(),
                inbox_tx.clone(),
            )?),
        };
        Ok(Mesh { me, n, inner, stats, down: AtomicBool::new(false), inbox, inbox_tx })
    }

    /// Deployment size this mesh was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Which backend this mesh is running.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { .. } => Backend::Reactor,
            Inner::Threads(_) => Backend::Threads,
        }
    }

    /// Transport counters (live; see [`NetStats`]).
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Frames shed by the backpressure policy so far.
    pub fn shed_frames(&self) -> u64 {
        self.stats.frames_shed.load(Ordering::Relaxed)
    }

    /// Live per-peer outbound queue depths, `(peer, frames, bytes)` —
    /// the instantaneous values behind the `net_out_queue_*` gauges.
    /// Empty on the threaded backend (unbounded channels have no
    /// meaningful depth to report).
    pub fn queue_depths(&self) -> Vec<(usize, u64, u64)> {
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, .. } => shared.queue_depths(),
            Inner::Threads(_) => Vec::new(),
        }
    }

    /// Attach an observability sink: the reactor publishes per-peer
    /// queue gauges, transport counters, and the send-stall histogram
    /// through it (the threaded baseline ignores it — it predates the
    /// metrics layer and exists only for A/B comparison).
    pub fn set_observer(&self, obs: Obs) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, .. } => shared.set_observer(obs),
            Inner::Threads(_) => {}
        }
    }

    /// Tear the mesh down: sever every live connection and release the
    /// listen port. Idempotent. After this the node can be "restarted"
    /// in-process by building a fresh [`Mesh`] on the same port, which
    /// is how the crash-recovery example kills a node; the reactor
    /// thread is joined so the port is genuinely free on return.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, thread } => {
                shared.request_shutdown();
                if let Some(handle) = thread.lock().expect("reactor handle").take() {
                    let _ = handle.join();
                }
            }
            Inner::Threads(t) => t.shutdown(),
        }
    }

    /// Send to a replica. Never blocks on the network: the reactor
    /// enqueues (shedding oldest frames past the per-peer cap), the
    /// threaded backend hands off to the peer's writer thread.
    /// Connections are established lazily and — reactor only — redialed
    /// automatically with backoff after failures.
    pub fn send_replica(&self, to: ReplicaId, msg: Message) {
        if to == self.me {
            let _ = self.inbox_tx.send(Inbound::FromReplica(self.me, msg));
            return;
        }
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, .. } => shared.enqueue_replica(to.0, encode_frame(&msg)),
            Inner::Threads(t) => t.send_replica(to, msg),
        }
    }

    pub fn broadcast(&self, msg: Message) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, .. } => {
                // Encode once; every peer queue shares the same frame.
                let frame = encode_frame(&msg);
                for r in 0..self.n as u32 {
                    if r != self.me.0 {
                        shared.enqueue_replica(r, frame.clone());
                    }
                }
                let _ = self.inbox_tx.send(Inbound::FromReplica(self.me, msg));
            }
            Inner::Threads(_) => {
                for r in 0..self.n {
                    self.send_replica(ReplicaId(r as u32), msg.clone());
                }
            }
        }
    }

    /// Send a response to a connected client (no-op if unknown).
    pub fn send_client(&self, to: ClientId, msg: Message) {
        match &self.inner {
            #[cfg(unix)]
            Inner::Reactor { shared, .. } => shared.enqueue_client(to.0, encode_frame(&msg)),
            Inner::Threads(t) => t.send_client(to, msg),
        }
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Shared helper: register a live stream for shutdown-severing
/// (threaded backend bookkeeping, re-exported for `threaded.rs`).
pub(crate) type StreamRegistry = Arc<Mutex<HashMap<u64, std::net::TcpStream>>>;

pub(crate) fn register_stream(
    registry: &StreamRegistry,
    seq: &AtomicU64,
    s: &std::net::TcpStream,
) -> Option<u64> {
    let clone = s.try_clone().ok()?;
    let token = seq.fetch_add(1, Ordering::Relaxed);
    registry.lock().unwrap().insert(token, clone);
    Some(token)
}

pub(crate) fn deregister_stream(registry: &StreamRegistry, token: Option<u64>) {
    if let Some(t) = token {
        registry.lock().unwrap().remove(&t);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use hs1_obs::Clock;
    use hs1_types::Transaction;
    use std::net::TcpListener;
    use std::time::Instant;

    fn free_base_port(n: u16) -> u16 {
        for _ in 0..32 {
            let probe = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
            let base = probe.local_addr().expect("addr").port();
            drop(probe);
            if base.checked_add(n).is_none() {
                continue;
            }
            let all_free =
                (0..n).all(|i| TcpListener::bind(("127.0.0.1", base + i)).map(drop).is_ok());
            if all_free {
                return base;
            }
        }
        panic!("could not find {n} contiguous free loopback ports");
    }

    fn request(seq: u64) -> Message {
        Message::Request(Transaction::kv_write(0, seq, seq, seq))
    }

    /// Regression: per-peer `net_out_queue_*` gauges must report the
    /// *current* depth every tick — including 0 once a peer's queue
    /// drains — not hold the last nonzero sample. A last-value gauge
    /// that is only published `if depth > 0` would pass every
    /// queue-buildup test and still lie forever after the drain.
    #[test]
    fn queue_gauges_report_zero_after_drain() {
        let n = 2usize;
        let base = free_base_port(n as u16);
        let cfg = MeshConfig {
            backend: Backend::Reactor,
            metrics_interval: Duration::from_millis(5),
            ..MeshConfig::default()
        };
        let a = Mesh::start_with(ReplicaId(0), n, "127.0.0.1", base, cfg.clone()).expect("mesh a");
        let (obs, rec) = Obs::recording(Clock::wall());
        a.set_observer(obs.with_actor(0));

        // Peer 1 is down: frames pile up in its queue; a metrics tick
        // must observe a nonzero gauge.
        for seq in 0..64 {
            a.send_replica(ReplicaId(1), request(seq));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let depths = a.queue_depths();
            assert_eq!(depths.len(), 1, "one peer besides me");
            if depths[0].1 > 0 {
                break;
            }
            assert!(Instant::now() < deadline, "queue never built up");
        }
        // Wait until a tick has published the nonzero depth.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = rec.lock().unwrap().snapshot();
            let gauge = snap
                .rows
                .iter()
                .find(|r| r.kind == "gauge" && r.name == "net_out_queue_frames" && r.idx == 1)
                .map(|r| r.value);
            if gauge.is_some_and(|v| v > 0) {
                break;
            }
            assert!(Instant::now() < deadline, "nonzero queue gauge never published");
            std::thread::sleep(Duration::from_millis(2));
        }

        // Bring peer 1 up; the queue drains and the *published* gauge
        // must come back to exactly 0.
        let b = Mesh::start_with(ReplicaId(1), n, "127.0.0.1", base, cfg).expect("mesh b");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = rec.lock().unwrap().snapshot();
            let frames = snap
                .rows
                .iter()
                .find(|r| r.kind == "gauge" && r.name == "net_out_queue_frames" && r.idx == 1)
                .map(|r| r.value);
            let bytes = snap
                .rows
                .iter()
                .find(|r| r.kind == "gauge" && r.name == "net_out_queue_bytes" && r.idx == 1)
                .map(|r| r.value);
            if frames == Some(0) && bytes == Some(0) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "queue gauges stuck at {frames:?} frames / {bytes:?} bytes after drain"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(b);
        drop(a);
    }
}
