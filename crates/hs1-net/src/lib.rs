//! Real TCP transport: run the same engines multi-process on a LAN or
//! localhost.
//!
//! * [`framing`] — length-prefixed frames over `std::net::TcpStream` with
//!   a small identification handshake.
//! * [`mesh`] — the peer mesh: one writer thread per peer, reader threads
//!   feeding a single inbox channel.
//! * [`node`] — [`node::NodeRunner`]: hosts a [`hs1_core::Replica`] behind
//!   the mesh, maps wall-clock time onto the engine's virtual clock, fires
//!   timers, and fans `Executed` actions out as per-transaction
//!   [`hs1_types::message::ResponseMsg`]s to connected clients. With
//!   [`node::NodeRunner::with_storage`] the node recovers from an
//!   `hs1-storage` journal before joining and journals durably while
//!   running (see `examples/crash_recovery.rs`); durable nodes also serve
//!   `hs1-statesync` snapshots, and [`node::NodeRunner::with_state_sync`]
//!   makes a lagging or fresh replica pull a verified snapshot before
//!   joining consensus (see `examples/state_sync.rs`).
//! * [`client_driver`] — a closed-loop client: broadcasts requests to all
//!   replicas and applies the paper's finality rules via
//!   [`hs1_core::client::FinalityTracker`].
//!
//! Binaries `hs1-replica` and `hs1-client` (see `src/bin/`) wire these
//! into runnable processes; `examples/local_cluster_tcp.rs` runs a full
//! deployment inside one process.

pub mod client_driver;
pub mod framing;
pub mod mesh;
pub mod node;

/// Default base port; replica `i` listens on `base + i`.
pub const DEFAULT_BASE_PORT: u16 = 42000;
