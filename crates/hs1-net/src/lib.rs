//! Real TCP transport: run the same engines multi-process on a LAN or
//! localhost.
//!
//! * [`framing`] — length-prefixed frames with an identification
//!   handshake: blocking helpers for the client driver plus the
//!   nonblocking building blocks ([`framing::FrameQueue`] writev
//!   coalescing, [`framing::FrameReader`] incremental reassembly) used
//!   by the reactor.
//! * [`mesh`] — the peer mesh behind one stable API with two backends:
//!   the default readiness-driven reactor (nonblocking sockets +
//!   `poll(2)`, bounded per-peer queues that shed oldest-first under
//!   backpressure, jittered-exponential reconnect) and the original
//!   thread-per-connection baseline (`HS1_NET_BACKEND=threads`), kept
//!   for A/B measurement by `net_loadgen`.
//! * [`poll`] — the minimal std-only `poll(2)` wrapper and cross-thread
//!   waker the reactor runs on (unix; other hosts use the threaded
//!   backend).
//! * [`node`] — [`node::NodeRunner`]: hosts a [`hs1_core::Replica`] behind
//!   the mesh, maps wall-clock time onto the engine's virtual clock, fires
//!   timers, and fans `Executed` actions out as per-transaction
//!   [`hs1_types::message::ResponseMsg`]s to connected clients. With
//!   [`node::NodeRunner::with_storage`] the node recovers from an
//!   `hs1-storage` journal before joining and journals durably while
//!   running (see `examples/crash_recovery.rs`); durable nodes also serve
//!   `hs1-statesync` snapshots, and [`node::NodeRunner::with_state_sync`]
//!   makes a lagging or fresh replica pull a verified snapshot before
//!   joining consensus (see `examples/state_sync.rs`).
//! * [`client_driver`] — a closed-loop client: broadcasts requests to all
//!   replicas and applies the paper's finality rules via
//!   [`hs1_core::client::FinalityTracker`]; reconnects with backoff when
//!   a replica restarts mid-session.
//! * [`http`] — a std-only HTTP/1.0 introspection responder (unix) built
//!   on the same [`poll`] primitives: `GET /metrics` serves Prometheus
//!   text, `GET /status` a live JSON summary of the hosted node. Wired
//!   into a running node by [`node::NodeRunner::serve_introspection`].
//!
//! Binaries `hs1-replica` and `hs1-client` (see `src/bin/`) wire these
//! into runnable processes; `net_loadgen` A/B-measures the two mesh
//! backends on a localhost cluster; `examples/local_cluster_tcp.rs`
//! runs a full deployment inside one process.

pub mod client_driver;
pub mod framing;
#[cfg(unix)]
pub mod http;
pub mod mesh;
pub mod node;
pub mod poll;
mod reactor;
mod threaded;

/// Default base port; replica `i` listens on `base + i`.
pub const DEFAULT_BASE_PORT: u16 = 42000;
