//! The in-memory recorder and its export formats.
//!
//! [`RecordingObserver`] buffers the trace in emission order and keeps
//! counters/gauges/histograms in `BTreeMap`s keyed by
//! `(actor, name, idx)`, so every export walks a deterministic order —
//! no HashMap iteration order can leak into a file that tests compare
//! byte-for-byte.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use crate::event::TraceEvent;
use crate::Observer;

/// Number of log2 buckets: bucket `b` holds samples whose value has `b`
/// significant bits (0 → value 0, 1 → 1, 2 → 2..=3, …, 64 → ≥ 2^63).
const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket log2 latency histogram (nanosecond samples).
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { counts: [0; LOG2_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram's samples into this one (bucket-wise; the
    /// merged quantiles are exact at bucket resolution). Used when
    /// combining per-replica recorders into one cluster view.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The upper edge of the bucket holding the `q`-quantile sample
    /// (`q` in 0..=1). Log2 buckets bound the answer within 2x — enough
    /// for attribution ("is the p99 fsync 1ms or 30ms"), cheap enough to
    /// record on every sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket `b`: 2^b - 1; the top bucket
                // (b = 64) has no finite doubled edge, so it covers
                // everything up to u64::MAX.
                return if b == 0 {
                    0
                } else {
                    (1u64 << (b - 1)).checked_mul(2).map_or(u64::MAX, |hi| hi - 1)
                };
            }
        }
        self.max
    }
}

/// One metrics-snapshot row, already flattened for formatting.
#[derive(Clone, Debug)]
pub struct MetricRow {
    pub actor: u32,
    /// `"counter"`, `"gauge"`, or `"hist"`.
    pub kind: &'static str,
    pub name: String,
    pub idx: u32,
    /// Counter/gauge value; histogram sample count.
    pub value: u64,
    /// Histogram-only summary fields (zero for counters/gauges).
    pub sum: u64,
    pub p50: u64,
    pub p99: u64,
    pub max: u64,
}

/// A point-in-time export of all counters, gauges, and histograms, in
/// deterministic row order. One schema serves the simulator reports, the
/// chaos replay tool, and the TCP bins.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub rows: Vec<MetricRow>,
}

impl MetricsSnapshot {
    /// The CSV header matching [`MetricsSnapshot::to_csv`].
    pub fn csv_header() -> &'static str {
        "actor,kind,name,idx,value,sum,p50,p99,max"
    }

    /// The snapshot as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::csv_header());
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.actor, r.kind, r.name, r.idx, r.value, r.sum, r.p50, r.p99, r.max
            ));
        }
        out
    }

    /// A human-readable aligned table (the TCP bins' summary format).
    /// Histogram durations render in milliseconds.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let label = if r.idx == 0 {
                format!("{}/{}", r.actor, r.name)
            } else {
                format!("{}/{}[{}]", r.actor, r.name, r.idx)
            };
            match r.kind {
                "hist" => {
                    let mean_ms =
                        if r.value == 0 { 0.0 } else { r.sum as f64 / r.value as f64 / 1e6 };
                    out.push_str(&format!(
                        "  {label:<32} n={:<8} mean={:.3}ms p50<{:.3}ms p99<{:.3}ms max={:.3}ms\n",
                        r.value,
                        mean_ms,
                        r.p50 as f64 / 1e6,
                        r.p99 as f64 / 1e6,
                        r.max as f64 / 1e6,
                    ));
                }
                _ => out.push_str(&format!("  {label:<32} {}\n", r.value)),
            }
        }
        out
    }

    /// Sum of a counter across actors and indices (tests, quick checks).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.rows.iter().filter(|r| r.kind == "counter" && r.name == name).map(|r| r.value).sum()
    }

    /// The snapshot in Prometheus text exposition format (version 0.0.4,
    /// what the `/metrics` introspection endpoint serves). Counters get a
    /// `hs1_` prefix and the conventional `_total` suffix; histograms are
    /// exposed as summaries with p50/p99 quantile samples (quantile edges
    /// are log2-bucket upper bounds, like everywhere else in this crate).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last: Option<(&str, &str)> = None;
        for r in &self.rows {
            let metric = match r.kind {
                "counter" => format!("hs1_{}_total", r.name),
                _ => format!("hs1_{}", r.name),
            };
            let labels = format!("{{actor=\"{}\",idx=\"{}\"}}", r.actor, r.idx);
            if last != Some((r.kind, r.name.as_str())) {
                let ptype = match r.kind {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    _ => "summary",
                };
                out.push_str(&format!("# TYPE {metric} {ptype}\n"));
                last = Some((r.kind, r.name.as_str()));
            }
            match r.kind {
                "hist" => {
                    let l = format!("actor=\"{}\",idx=\"{}\"", r.actor, r.idx);
                    out.push_str(&format!(
                        "{metric}{{{l},quantile=\"0.5\"}} {}\n{metric}{{{l},quantile=\"0.99\"}} {}\n\
                         {metric}_sum{{{l}}} {}\n{metric}_count{{{l}}} {}\n",
                        r.p50, r.p99, r.sum, r.value
                    ));
                }
                _ => out.push_str(&format!("{metric}{labels} {}\n", r.value)),
            }
        }
        out
    }
}

type MetricKey = (u32, &'static str, u32);

/// Buffers everything in memory; exports JSONL + metrics snapshots.
#[derive(Default)]
pub struct RecordingObserver {
    trace: Vec<TraceEvent>,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, u64>,
    hists: BTreeMap<(u32, &'static str), Histogram>,
    /// When set, [`Observer::flush`] writes the JSONL trace here.
    trace_path: Option<PathBuf>,
}

impl RecordingObserver {
    pub fn new() -> RecordingObserver {
        RecordingObserver::default()
    }

    /// Arrange for [`Observer::flush`] to write the trace to `path` —
    /// harnesses set this up-front so even an invariant-violation exit
    /// leaves the trace on disk.
    pub fn set_trace_path(&mut self, path: PathBuf) {
        self.trace_path = Some(path);
    }

    /// The buffered trace, in emission order.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Fallible variant of [`Observer::flush`]: write the trace to the
    /// configured path, surfacing I/O errors to the caller.
    pub fn flush_to_path(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.trace_path else { return Ok(()) };
        let mut f = std::fs::File::create(path)?;
        self.write_jsonl(&mut f)?;
        f.flush()
    }

    /// Write the trace as JSONL.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> std::io::Result<()> {
        for ev in &self.trace {
            writeln!(w, "{}", ev.to_json())?;
        }
        Ok(())
    }

    /// The trace as one JSONL string (byte-comparable across runs).
    pub fn jsonl_string(&self) -> String {
        let mut s = String::new();
        for ev in &self.trace {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// Flatten counters, gauges, and histograms into a snapshot. Row
    /// order is the `BTreeMap` key order: counters, then gauges, then
    /// histograms, each sorted by (actor, name, idx).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut rows = Vec::new();
        for (&(actor, name, idx), &value) in &self.counters {
            rows.push(MetricRow {
                actor,
                kind: "counter",
                name: name.to_string(),
                idx,
                value,
                sum: 0,
                p50: 0,
                p99: 0,
                max: 0,
            });
        }
        for (&(actor, name, idx), &value) in &self.gauges {
            rows.push(MetricRow {
                actor,
                kind: "gauge",
                name: name.to_string(),
                idx,
                value,
                sum: 0,
                p50: 0,
                p99: 0,
                max: 0,
            });
        }
        for (&(actor, name), h) in &self.hists {
            rows.push(MetricRow {
                actor,
                kind: "hist",
                name: name.to_string(),
                idx: 0,
                value: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50),
                p99: h.quantile(0.99),
                max: h.max(),
            });
        }
        MetricsSnapshot { rows }
    }

    /// Direct access to a histogram (benches and tests).
    pub fn histogram(&self, actor: u32, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|((a, n), _)| *a == actor && *n == name).map(|(_, h)| h)
    }
}

impl Observer for RecordingObserver {
    fn on_event(&mut self, ev: TraceEvent) {
        self.trace.push(ev);
    }

    fn add_counter(&mut self, actor: u32, name: &'static str, idx: u32, delta: u64) {
        *self.counters.entry((actor, name, idx)).or_insert(0) += delta;
    }

    fn set_gauge(&mut self, actor: u32, name: &'static str, idx: u32, value: u64) {
        self.gauges.insert((actor, name, idx), value);
    }

    fn observe(&mut self, actor: u32, name: &'static str, nanos: u64) {
        self.hists.entry((actor, name)).or_default().record(nanos);
    }

    fn flush(&mut self) {
        if let Some(path) = &self.trace_path {
            if let Ok(mut f) = std::fs::File::create(path) {
                let _ = self.write_jsonl(&mut f);
                let _ = f.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Stage};

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.quantile(0.0), 0);
        // p50 of six samples is the 3rd (value 2, bucket upper edge 3).
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the top bucket; the edge must cover the sample.
        assert!(h.quantile(0.99) >= 1_000_000);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn histogram_log2_bucket_edges() {
        // Bucket index is the number of significant bits: 0 is its own
        // bucket, each power of two opens the next one.
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        for k in 1..64 {
            assert_eq!(Histogram::bucket(1u64 << k), k + 1, "2^{k} opens bucket {}", k + 1);
            assert_eq!(Histogram::bucket((1u64 << k) - 1), k, "2^{k}-1 stays in bucket {k}");
        }
        assert_eq!(Histogram::bucket(u64::MAX), LOG2_BUCKETS - 1, "top bucket is in range");
    }

    #[test]
    fn histogram_handles_extreme_samples() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.quantile(0.01), 0, "the smallest sample sits in bucket 0");
        assert_eq!(h.quantile(1.0), u64::MAX, "top bucket edge covers the largest sample");
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn counters_are_monotone_under_interleaved_observers() {
        // Counters only ever accumulate non-negative deltas — a sequence
        // of re-attachments (as chaos crash-restart does with storage)
        // must observe a non-decreasing series.
        let mut r = RecordingObserver::new();
        let mut last = 0;
        for delta in [5u64, 0, 17, 3, 0, 1] {
            r.add_counter(0, "journal_bytes", 0, delta);
            let now = r.snapshot().counter_total("journal_bytes");
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        assert_eq!(last, 26);
    }

    #[test]
    fn snapshot_rows_are_deterministically_ordered() {
        let mut r = RecordingObserver::new();
        r.add_counter(2, "sent", 1, 5);
        r.add_counter(0, "sent", 3, 2);
        r.add_counter(0, "sent", 3, 1);
        r.set_gauge(1, "queue", 0, 9);
        r.observe(0, "fsync_ns", 1500);
        let snap = r.snapshot();
        let kinds: Vec<_> = snap.rows.iter().map(|r| (r.kind, r.actor, r.idx)).collect();
        assert_eq!(
            kinds,
            vec![("counter", 0, 3), ("counter", 2, 1), ("gauge", 1, 0), ("hist", 0, 0)]
        );
        assert_eq!(snap.rows[0].value, 3, "counter deltas accumulate");
        assert_eq!(snap.counter_total("sent"), 8);
        // CSV round-trips the same order.
        let csv = snap.to_csv();
        assert!(csv.starts_with(MetricsSnapshot::csv_header()));
        assert_eq!(csv.lines().count(), 5);
        assert!(!snap.to_table().is_empty());
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        let mut both = Histogram::default();
        for v in [1u64, 5, 100] {
            left.record(v);
            both.record(v);
        }
        for v in [2u64, 1_000_000] {
            right.record(v);
            both.record(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), both.count());
        assert_eq!(left.sum(), both.sum());
        assert_eq!(left.max(), both.max());
        for q in [0.5, 0.99, 1.0] {
            assert_eq!(left.quantile(q), both.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let mut r = RecordingObserver::new();
        r.add_counter(0, "net_tx_frames", 0, 7);
        r.add_counter(1, "net_tx_frames", 0, 9);
        r.set_gauge(0, "net_out_queue_frames", 2, 5);
        r.observe(0, "fsync_ns", 1500);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hs1_net_tx_frames_total counter\n"));
        assert!(text.contains("hs1_net_tx_frames_total{actor=\"0\",idx=\"0\"} 7\n"));
        assert!(text.contains("hs1_net_tx_frames_total{actor=\"1\",idx=\"0\"} 9\n"));
        // The TYPE line appears once per metric, not once per sample.
        assert_eq!(text.matches("# TYPE hs1_net_tx_frames_total").count(), 1);
        assert!(text.contains("# TYPE hs1_net_out_queue_frames gauge\n"));
        assert!(text.contains("hs1_net_out_queue_frames{actor=\"0\",idx=\"2\"} 5\n"));
        assert!(text.contains("# TYPE hs1_fsync_ns summary\n"));
        assert!(text.contains("hs1_fsync_ns{actor=\"0\",idx=\"0\",quantile=\"0.5\"}"));
        assert!(text.contains("hs1_fsync_ns_count{actor=\"0\",idx=\"0\"} 1\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn jsonl_string_is_stable() {
        let mut r = RecordingObserver::new();
        r.on_event(TraceEvent {
            at: 1,
            actor: 0,
            kind: EventKind::Stage { stage: Stage::Proposed, block: 4 },
        });
        r.on_event(TraceEvent {
            at: 2,
            actor: 1,
            kind: EventKind::Point { name: "p", key: 4, value: 8 },
        });
        let a = r.jsonl_string();
        let b = r.jsonl_string();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 2);
    }

    #[test]
    fn flush_writes_trace_to_path() {
        let dir = std::env::temp_dir().join(format!("hs1-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let mut r = RecordingObserver::new();
        r.set_trace_path(path.clone());
        r.on_event(TraceEvent {
            at: 3,
            actor: 0,
            kind: EventKind::SpanEnd { name: "view", key: 1 },
        });
        r.flush();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, r.jsonl_string());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
