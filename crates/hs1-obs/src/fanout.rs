//! Per-replica observer fan-out: one [`Obs`] handle, N private recorders.
//!
//! A single [`RecordingObserver`] interleaves every replica's events into
//! one buffer — fine for single-timeline analysis, but it cannot produce
//! the *per-replica JSONL files* that the cluster-merge workflow (and a
//! real deployment, where each node writes its own trace) starts from.
//! [`FanoutObserver`] routes each emission by its actor id to a dedicated
//! child [`RecordingObserver`]: actors `0..n` go to their replica's
//! recorder, everything else (the harness/oracle actor `u32::MAX`, client
//! drivers, …) to a shared harness recorder.
//!
//! Like every observer it is pure — routing is a function of the actor id
//! already present on each emission, so attaching a fan-out instead of a
//! flat recorder changes no observed behavior and no fingerprint.

use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::trace::{Alignment, ClusterTrace, OwnedEvent};
use crate::{Clock, Obs, Observer, RecordingObserver, TraceEvent};

/// Routes emissions to per-replica recorders by actor id.
pub struct FanoutObserver {
    /// `children[i]` records everything actor `i` emitted.
    children: Vec<RecordingObserver>,
    /// Emissions from actors ≥ `children.len()` (the harness oracle,
    /// client drivers).
    harness: RecordingObserver,
}

impl FanoutObserver {
    /// A fan-out for `n` replicas (plus the implicit harness lane).
    pub fn new(n: usize) -> FanoutObserver {
        FanoutObserver {
            children: (0..n).map(|_| RecordingObserver::new()).collect(),
            harness: RecordingObserver::new(),
        }
    }

    /// An attached handle + shared fan-out for a cluster of `n` replicas,
    /// stamped by `clock`.
    pub fn recording(n: usize, clock: Clock) -> (Obs, Arc<Mutex<FanoutObserver>>) {
        let fan = Arc::new(Mutex::new(FanoutObserver::new(n)));
        (Obs::new(fan.clone(), clock), fan)
    }

    fn lane(&mut self, actor: u32) -> &mut RecordingObserver {
        match self.children.get_mut(actor as usize) {
            Some(child) => child,
            None => &mut self.harness,
        }
    }

    /// Number of replica lanes (excluding the harness lane).
    pub fn n(&self) -> usize {
        self.children.len()
    }

    /// Replica `i`'s recorder.
    pub fn replica(&self, i: usize) -> &RecordingObserver {
        &self.children[i]
    }

    /// The harness/overflow lane's recorder.
    pub fn harness(&self) -> &RecordingObserver {
        &self.harness
    }

    /// Arrange for [`Observer::flush`] to write one JSONL file per lane
    /// into `dir`: `replica-<i>.jsonl` plus `harness.jsonl`.
    pub fn set_trace_dir(&mut self, dir: &Path) {
        for (i, child) in self.children.iter_mut().enumerate() {
            child.set_trace_path(dir.join(format!("replica-{i}.jsonl")));
        }
        self.harness.set_trace_path(dir.join("harness.jsonl"));
    }

    /// All lanes' traces as owned event streams (replicas in id order,
    /// harness last) — the input shape [`ClusterTrace::merge`] takes.
    pub fn sources(&self) -> Vec<Vec<OwnedEvent>> {
        self.children
            .iter()
            .chain(std::iter::once(&self.harness))
            .map(|rec| rec.trace().iter().map(OwnedEvent::from_event).collect())
            .collect()
    }

    /// Merge all lanes into one cluster timeline. Lanes recorded against
    /// one shared [`Clock`] (the simulator), so [`Alignment::SharedClock`]
    /// applies and the result is byte-identical per seed.
    pub fn merged(&self) -> ClusterTrace {
        ClusterTrace::merge(self.sources(), Alignment::SharedClock)
    }

    /// A combined metrics snapshot over all lanes (rows from each lane's
    /// own snapshot, replicas in id order, harness last; within a lane the
    /// usual deterministic order applies).
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        let mut rows = Vec::new();
        for rec in self.children.iter().chain(std::iter::once(&self.harness)) {
            rows.extend(rec.snapshot().rows);
        }
        crate::MetricsSnapshot { rows }
    }
}

impl Observer for FanoutObserver {
    fn on_event(&mut self, ev: TraceEvent) {
        self.lane(ev.actor).on_event(ev);
    }

    fn add_counter(&mut self, actor: u32, name: &'static str, idx: u32, delta: u64) {
        self.lane(actor).add_counter(actor, name, idx, delta);
    }

    fn set_gauge(&mut self, actor: u32, name: &'static str, idx: u32, value: u64) {
        self.lane(actor).set_gauge(actor, name, idx, value);
    }

    fn observe(&mut self, actor: u32, name: &'static str, nanos: u64) {
        self.lane(actor).observe(actor, name, nanos);
    }

    fn flush(&mut self) {
        for child in &mut self.children {
            child.flush();
        }
        self.harness.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    #[test]
    fn routes_by_actor_with_harness_overflow() {
        let (obs, fan) = FanoutObserver::recording(2, Clock::manual());
        obs.set_now(5);
        obs.with_actor(0).stage(Stage::Proposed, 1);
        obs.with_actor(1).stage(Stage::Received, 1);
        obs.with_actor(u32::MAX).point("finality", 1, 9);
        obs.with_actor(1).counter("net_tx_frames", 0, 3);
        let fan = fan.lock().unwrap();
        assert_eq!(fan.replica(0).trace().len(), 1);
        assert_eq!(fan.replica(1).trace().len(), 1);
        assert_eq!(fan.harness().trace().len(), 1);
        assert_eq!(fan.replica(1).snapshot().counter_total("net_tx_frames"), 3);
        assert_eq!(fan.snapshot().counter_total("net_tx_frames"), 3);
    }

    #[test]
    fn merged_timeline_interleaves_lanes_in_time_order() {
        let (obs, fan) = FanoutObserver::recording(2, Clock::manual());
        obs.set_now(20);
        obs.with_actor(1).stage(Stage::Received, 7);
        obs.set_now(10);
        obs.with_actor(0).stage(Stage::Proposed, 7);
        let merged = fan.lock().unwrap().merged();
        let ats: Vec<u64> = merged.events.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![10, 20], "merge re-orders across lanes by time");
        assert_eq!(merged.events[0].actor, 0);
    }

    #[test]
    fn flush_writes_one_file_per_lane() {
        let dir = std::env::temp_dir().join(format!("hs1-fanout-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (obs, fan) = FanoutObserver::recording(2, Clock::manual());
        fan.lock().unwrap().set_trace_dir(&dir);
        obs.with_actor(0).stage(Stage::Proposed, 1);
        obs.with_actor(u32::MAX).point("submit_mean", 1, 2);
        obs.flush();
        for name in ["replica-0.jsonl", "replica-1.jsonl", "harness.jsonl"] {
            assert!(dir.join(name).exists(), "{name} written on flush");
        }
        assert!(std::fs::read_to_string(dir.join("replica-1.jsonl")).unwrap().is_empty());
        assert!(std::fs::read_to_string(dir.join("harness.jsonl"))
            .unwrap()
            .contains("submit_mean"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
