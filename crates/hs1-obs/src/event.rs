//! Trace events and their JSONL encoding.
//!
//! The schema is deliberately tiny and flat — one JSON object per line,
//! no nesting, integer timestamps — so traces can be grepped, sorted, and
//! diffed without tooling. Events are written in emission order; the
//! simulator's event loop is single-threaded, so emission order is itself
//! deterministic per seed.

use hs1_types::BlockId;

/// Per-block lifecycle stages, in causal order. `Received`/`Proposed`/
/// `Voted` are emitted by the consensus engines, `Speculated`/`Committed`
/// by the shared execution core, and `Responded` by the harness that
/// models (or performs) the reply to clients.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// A proposal arrived and passed validation.
    Received,
    /// The leader assembled and broadcast the block.
    Proposed,
    /// This replica sent its vote for the block.
    Voted,
    /// The block was executed speculatively.
    Speculated,
    /// The block was committed (and executed, if not already).
    Committed,
    /// A response for the block's transactions reached the client.
    Responded,
}

impl Stage {
    /// The lowercase wire name used in JSONL.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Received => "received",
            Stage::Proposed => "proposed",
            Stage::Voted => "voted",
            Stage::Speculated => "speculated",
            Stage::Committed => "committed",
            Stage::Responded => "responded",
        }
    }
}

/// What happened. Block/span keys are `u64` (see [`block_key`]) so events
/// stay fixed-size and cheap to emit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A block crossed a lifecycle stage.
    Stage { stage: Stage, block: u64 },
    /// A named span opened (e.g. a view).
    SpanBegin { name: &'static str, key: u64 },
    /// A named span closed.
    SpanEnd { name: &'static str, key: u64 },
    /// A named point sample with a value (e.g. finality time, queue depth
    /// at a threshold crossing).
    Point { name: &'static str, key: u64, value: u64 },
}

/// One trace line: a timestamp (nanoseconds on the harness clock), the
/// reporting actor (replica id; `u32::MAX` = the harness itself), and the
/// event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    pub at: u64,
    pub actor: u32,
    pub kind: EventKind,
}

impl TraceEvent {
    /// The event as one JSONL line (no trailing newline). Names are
    /// `&'static str` identifiers and stage names are fixed lowercase
    /// words, so no JSON string escaping is required.
    pub fn to_json(&self) -> String {
        let head = format!("{{\"at\":{},\"actor\":{}", self.at, self.actor);
        match self.kind {
            EventKind::Stage { stage, block } => {
                format!(
                    "{head},\"kind\":\"stage\",\"stage\":\"{}\",\"block\":{block}}}",
                    stage.name()
                )
            }
            EventKind::SpanBegin { name, key } => {
                format!("{head},\"kind\":\"span_begin\",\"name\":\"{name}\",\"key\":{key}}}")
            }
            EventKind::SpanEnd { name, key } => {
                format!("{head},\"kind\":\"span_end\",\"name\":\"{name}\",\"key\":{key}}}")
            }
            EventKind::Point { name, key, value } => {
                format!(
                    "{head},\"kind\":\"point\",\"name\":\"{name}\",\"key\":{key},\"value\":{value}}}"
                )
            }
        }
    }
}

/// The trace key of a block: the first 8 bytes of its content hash as a
/// big-endian integer. 64 bits of a SHA-256 digest keep collision odds
/// negligible at any realistic trace length while keeping events flat.
pub fn block_key(id: BlockId) -> u64 {
    u64::from_be_bytes(id.0 .0[..8].try_into().expect("digest is 32 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_flat_and_stable() {
        let ev = TraceEvent {
            at: 5,
            actor: 1,
            kind: EventKind::Stage { stage: Stage::Voted, block: 9 },
        };
        assert_eq!(
            ev.to_json(),
            "{\"at\":5,\"actor\":1,\"kind\":\"stage\",\"stage\":\"voted\",\"block\":9}"
        );
        let ev = TraceEvent {
            at: 6,
            actor: 2,
            kind: EventKind::Point { name: "finality", key: 9, value: 77 },
        };
        assert_eq!(
            ev.to_json(),
            "{\"at\":6,\"actor\":2,\"kind\":\"point\",\"name\":\"finality\",\"key\":9,\"value\":77}"
        );
        let ev =
            TraceEvent { at: 7, actor: 0, kind: EventKind::SpanBegin { name: "view", key: 3 } };
        assert_eq!(
            ev.to_json(),
            "{\"at\":7,\"actor\":0,\"kind\":\"span_begin\",\"name\":\"view\",\"key\":3}"
        );
    }

    #[test]
    fn block_keys_are_stable_and_distinct() {
        let a = block_key(BlockId::test(1));
        let b = block_key(BlockId::test(2));
        assert_ne!(a, b);
        assert_eq!(a, block_key(BlockId::test(1)));
    }

    #[test]
    fn stage_names_cover_the_lifecycle() {
        let all = [
            Stage::Received,
            Stage::Proposed,
            Stage::Voted,
            Stage::Speculated,
            Stage::Committed,
            Stage::Responded,
        ];
        let names: Vec<_> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 6);
        for w in names.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }
}
