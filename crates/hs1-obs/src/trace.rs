//! Cluster trace merge: join N per-replica JSONL traces into one
//! causally-ordered cluster timeline.
//!
//! Per-node traces are islands — each replica's JSONL is ordered by its
//! own clock and says nothing about cross-replica causality. This module
//! re-parses those files into owned events ([`OwnedEvent`] — the
//! `&'static str` names of [`crate::TraceEvent`] cannot survive a parse),
//! aligns the per-source clocks, and merges everything into one timeline:
//!
//! * **Shared clock** ([`Alignment::SharedClock`]) — simulator traces:
//!   every source was stamped by the same harness [`crate::Clock`], so
//!   offsets are zero and the merged file is **byte-identical per seed**
//!   (the merge is a pure sort on already-deterministic inputs).
//! * **First contact** ([`Alignment::FirstContact`]) — TCP traces: each
//!   node stamps with its own wall clock (based at process start), so
//!   clocks disagree by seconds. For each pair of replicas the earliest
//!   propose→receive anchors bound the offset: `received_b − proposed_a`
//!   is (clock\_b − clock\_a) + network delay, and the *minimum* over all
//!   anchor blocks approaches the pure clock skew (loopback/LAN delay ≈
//!   0). Offsets propagate from the lowest-numbered replica over the
//!   anchor graph in deterministic order.
//!
//! The merged timeline keeps the flat one-object-per-line JSONL schema of
//! the per-node traces (adjusted `at`, original `actor`), so every tool
//! that reads a per-node trace reads a cluster trace too.

use std::collections::BTreeMap;
use std::io::Read;
use std::path::Path;

use crate::event::Stage;

/// A parsed trace event with owned names (see [`crate::TraceEvent`] for
/// the emission-side twin; the JSONL encodings are identical).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OwnedEvent {
    /// Timestamp in nanoseconds — source-local before alignment,
    /// cluster-adjusted after [`ClusterTrace::merge`].
    pub at: u64,
    pub actor: u32,
    pub kind: OwnedEventKind,
}

/// Owned-name twin of [`crate::EventKind`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OwnedEventKind {
    Stage { stage: Stage, block: u64 },
    SpanBegin { name: String, key: u64 },
    SpanEnd { name: String, key: u64 },
    Point { name: String, key: u64, value: u64 },
}

impl OwnedEvent {
    /// The event as one JSONL line — byte-identical to what
    /// [`crate::TraceEvent::to_json`] produced for the same event.
    pub fn to_json(&self) -> String {
        let head = format!("{{\"at\":{},\"actor\":{}", self.at, self.actor);
        match &self.kind {
            OwnedEventKind::Stage { stage, block } => {
                format!(
                    "{head},\"kind\":\"stage\",\"stage\":\"{}\",\"block\":{block}}}",
                    stage.name()
                )
            }
            OwnedEventKind::SpanBegin { name, key } => {
                format!("{head},\"kind\":\"span_begin\",\"name\":\"{name}\",\"key\":{key}}}")
            }
            OwnedEventKind::SpanEnd { name, key } => {
                format!("{head},\"kind\":\"span_end\",\"name\":\"{name}\",\"key\":{key}}}")
            }
            OwnedEventKind::Point { name, key, value } => {
                format!(
                    "{head},\"kind\":\"point\",\"name\":\"{name}\",\"key\":{key},\"value\":{value}}}"
                )
            }
        }
    }

    /// Borrowing conversion from an in-memory [`crate::TraceEvent`].
    pub fn from_event(ev: &crate::TraceEvent) -> OwnedEvent {
        let kind = match ev.kind {
            crate::EventKind::Stage { stage, block } => OwnedEventKind::Stage { stage, block },
            crate::EventKind::SpanBegin { name, key } => {
                OwnedEventKind::SpanBegin { name: name.to_string(), key }
            }
            crate::EventKind::SpanEnd { name, key } => {
                OwnedEventKind::SpanEnd { name: name.to_string(), key }
            }
            crate::EventKind::Point { name, key, value } => {
                OwnedEventKind::Point { name: name.to_string(), key, value }
            }
        };
        OwnedEvent { at: ev.at, actor: ev.actor, kind }
    }
}

/// A malformed trace line (line number is 1-based within its source).
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Extract the integer value of `"name":<digits>` from a flat JSON line.
fn field_u64(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extract the string value of `"name":"<value>"` from a flat JSON line.
/// The schema never escapes (names are identifiers), so a plain scan to
/// the closing quote is exact.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

fn stage_by_name(name: &str) -> Option<Stage> {
    [
        Stage::Received,
        Stage::Proposed,
        Stage::Voted,
        Stage::Speculated,
        Stage::Committed,
        Stage::Responded,
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// Parse one JSONL trace line (the exact schema
/// [`crate::TraceEvent::to_json`] emits).
pub fn parse_line(line: &str) -> Result<OwnedEvent, String> {
    let at = field_u64(line, "at").ok_or("missing \"at\"")?;
    let actor = field_u64(line, "actor").ok_or("missing \"actor\"")? as u32;
    let kind = match field_str(line, "kind").ok_or("missing \"kind\"")? {
        "stage" => {
            let name = field_str(line, "stage").ok_or("missing \"stage\"")?;
            let stage = stage_by_name(name).ok_or_else(|| format!("unknown stage {name:?}"))?;
            let block = field_u64(line, "block").ok_or("missing \"block\"")?;
            OwnedEventKind::Stage { stage, block }
        }
        "span_begin" => OwnedEventKind::SpanBegin {
            name: field_str(line, "name").ok_or("missing \"name\"")?.to_string(),
            key: field_u64(line, "key").ok_or("missing \"key\"")?,
        },
        "span_end" => OwnedEventKind::SpanEnd {
            name: field_str(line, "name").ok_or("missing \"name\"")?.to_string(),
            key: field_u64(line, "key").ok_or("missing \"key\"")?,
        },
        "point" => OwnedEventKind::Point {
            name: field_str(line, "name").ok_or("missing \"name\"")?.to_string(),
            key: field_u64(line, "key").ok_or("missing \"key\"")?,
            value: field_u64(line, "value").ok_or("missing \"value\"")?,
        },
        other => return Err(format!("unknown kind {other:?}")),
    };
    Ok(OwnedEvent { at, actor, kind })
}

/// Parse a whole JSONL trace (empty lines are skipped).
pub fn parse_jsonl(body: &str) -> Result<Vec<OwnedEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|reason| ParseError { line: i + 1, reason })?);
    }
    Ok(out)
}

/// How per-source clocks relate (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Alignment {
    /// All sources were stamped by one harness clock (simulator traces).
    SharedClock,
    /// Each source has its own wall clock; estimate pairwise offsets
    /// from the earliest propose→receive anchors (TCP traces).
    FirstContact,
}

/// N per-replica traces joined into one cluster timeline.
pub struct ClusterTrace {
    /// Merged events, ordered by (adjusted time, actor, source, input
    /// order) — a total, deterministic order.
    pub events: Vec<OwnedEvent>,
    /// The clock offset (nanoseconds, signed) that was *added* to each
    /// source's timestamps, indexed like the input sources.
    pub offsets: Vec<i64>,
}

impl ClusterTrace {
    /// Merge per-source event streams into one timeline.
    pub fn merge(sources: Vec<Vec<OwnedEvent>>, alignment: Alignment) -> ClusterTrace {
        let offsets = match alignment {
            Alignment::SharedClock => vec![0i64; sources.len()],
            Alignment::FirstContact => estimate_offsets(&sources),
        };
        // Adjusted timestamps can go negative on wall-clock traces (a
        // source whose clock ran ahead); rebase so the earliest merged
        // event sits at its smallest non-negative time.
        let mut adjusted: Vec<(i128, u32, usize, usize, &OwnedEvent)> = Vec::new();
        for (src, events) in sources.iter().enumerate() {
            for (seq, ev) in events.iter().enumerate() {
                adjusted.push((ev.at as i128 + offsets[src] as i128, ev.actor, src, seq, ev));
            }
        }
        let base = adjusted.iter().map(|(t, ..)| *t).min().unwrap_or(0).min(0);
        adjusted.sort_by_key(|&(t, actor, src, seq, _)| (t, actor, src, seq));
        let events = adjusted
            .into_iter()
            .map(|(t, _, _, _, ev)| OwnedEvent { at: (t - base) as u64, ..ev.clone() })
            .collect();
        ClusterTrace { events, offsets }
    }

    /// Parse and merge JSONL bodies (one string per source).
    pub fn from_jsonl(bodies: &[String], alignment: Alignment) -> Result<ClusterTrace, ParseError> {
        let mut sources = Vec::with_capacity(bodies.len());
        for body in bodies {
            sources.push(parse_jsonl(body)?);
        }
        Ok(ClusterTrace::merge(sources, alignment))
    }

    /// Read, parse, and merge JSONL files.
    pub fn from_files<P: AsRef<Path>>(
        paths: &[P],
        alignment: Alignment,
    ) -> std::io::Result<ClusterTrace> {
        let mut bodies = Vec::with_capacity(paths.len());
        for p in paths {
            let mut s = String::new();
            std::fs::File::open(p)?.read_to_string(&mut s)?;
            bodies.push(s);
        }
        ClusterTrace::from_jsonl(&bodies, alignment)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The merged timeline as JSONL (byte-comparable across runs when the
    /// inputs are deterministic).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.events {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }
}

/// Per-pair clock-offset estimation from propose→receive anchors,
/// propagated from the lowest-numbered source over the anchor graph.
fn estimate_offsets(sources: &[Vec<OwnedEvent>]) -> Vec<i64> {
    let n = sources.len();
    // Earliest Proposed / Received per (source, block), source-local time.
    let mut proposed: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); n];
    let mut received: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); n];
    for (src, events) in sources.iter().enumerate() {
        for ev in events {
            if let OwnedEventKind::Stage { stage, block } = &ev.kind {
                let slot = match stage {
                    Stage::Proposed => &mut proposed[src],
                    Stage::Received => &mut received[src],
                    _ => continue,
                };
                let e = slot.entry(*block).or_insert(ev.at);
                *e = (*e).min(ev.at);
            }
        }
    }
    // delta[a][b] = min over anchor blocks of (received_b - proposed_a):
    // (clock_b - clock_a) + min observed network delay.
    let mut delta = vec![vec![None::<i128>; n]; n];
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let mut best: Option<i128> = None;
            for (block, &tp) in &proposed[a] {
                if let Some(&tr) = received[b].get(block) {
                    let d = tr as i128 - tp as i128;
                    best = Some(best.map_or(d, |cur| cur.min(d)));
                }
            }
            delta[a][b] = best;
        }
    }
    // Propagate offsets breadth-first in index order (deterministic).
    // For an anchor block, `local_r + offset[b]` should land at
    // `local_p + offset[a] + delay`; with delta[a][b] = min(local_r -
    // local_p) = min_delay - skew, the correction is offset[b] =
    // offset[a] - delta[a][b] (= skew - min_delay). Every other anchor's
    // delay is ≥ the minimum, so propose-before-receive causal order is
    // preserved after adjustment.
    let mut offsets = vec![None::<i64>; n];
    for root in 0..n {
        if offsets[root].is_some() {
            continue;
        }
        offsets[root] = Some(0);
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(a) = queue.pop_front() {
            let oa = offsets[a].expect("queued sources have offsets");
            for b in 0..n {
                if offsets[b].is_some() {
                    continue;
                }
                // Use either direction of the anchor; prefer a→b.
                let link = delta[a][b].map(|d| -d).or(delta[b][a]);
                if let Some(d) = link {
                    offsets[b] = Some(oa + d as i64);
                    queue.push_back(b);
                }
            }
        }
    }
    offsets.into_iter().map(|o| o.unwrap_or(0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    fn ev(at: u64, actor: u32, kind: OwnedEventKind) -> OwnedEvent {
        OwnedEvent { at, actor, kind }
    }

    fn stage(at: u64, actor: u32, s: Stage, block: u64) -> OwnedEvent {
        ev(at, actor, OwnedEventKind::Stage { stage: s, block })
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let lines = [
            "{\"at\":5,\"actor\":1,\"kind\":\"stage\",\"stage\":\"voted\",\"block\":9}",
            "{\"at\":7,\"actor\":0,\"kind\":\"span_begin\",\"name\":\"view\",\"key\":3}",
            "{\"at\":8,\"actor\":0,\"kind\":\"span_end\",\"name\":\"view\",\"key\":3}",
            "{\"at\":6,\"actor\":4294967295,\"kind\":\"point\",\"name\":\"finality\",\"key\":9,\"value\":77}",
        ];
        for line in lines {
            let parsed = parse_line(line).expect("parses");
            assert_eq!(parsed.to_json(), line, "parse → re-emit is the identity");
        }
    }

    #[test]
    fn parse_matches_the_emitter_exactly() {
        let emitted = TraceEvent {
            at: 123,
            actor: 2,
            kind: EventKind::Stage { stage: Stage::Speculated, block: 42 },
        };
        let parsed = parse_line(&emitted.to_json()).unwrap();
        assert_eq!(parsed, OwnedEvent::from_event(&emitted));
        assert_eq!(parsed.to_json(), emitted.to_json());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("{}").is_err());
        assert!(parse_line("{\"at\":1,\"actor\":0,\"kind\":\"nope\"}").is_err());
        assert!(parse_line(
            "{\"at\":1,\"actor\":0,\"kind\":\"stage\",\"stage\":\"warp\",\"block\":1}"
        )
        .is_err());
        let err = parse_jsonl("{\"at\":1,\"actor\":0,\"kind\":\"point\",\"name\":\"p\",\"key\":1,\"value\":2}\nbroken")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn shared_clock_merge_is_a_stable_sort() {
        let a = vec![stage(10, 0, Stage::Proposed, 1), stage(30, 0, Stage::Committed, 1)];
        let b = vec![stage(12, 1, Stage::Received, 1), stage(30, 1, Stage::Committed, 1)];
        let merged = ClusterTrace::merge(vec![a, b], Alignment::SharedClock);
        let ats: Vec<u64> = merged.events.iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![10, 12, 30, 30]);
        // The tie at 30 breaks by actor: replica 0 before replica 1.
        assert_eq!(merged.events[2].actor, 0);
        assert_eq!(merged.events[3].actor, 1);
        assert_eq!(merged.offsets, vec![0, 0]);
    }

    #[test]
    fn merge_is_deterministic_byte_for_byte() {
        let mk = || {
            vec![
                vec![stage(5, 0, Stage::Proposed, 7), stage(9, 0, Stage::Speculated, 7)],
                vec![stage(6, 1, Stage::Received, 7), stage(9, 1, Stage::Speculated, 7)],
            ]
        };
        let x = ClusterTrace::merge(mk(), Alignment::SharedClock).to_jsonl();
        let y = ClusterTrace::merge(mk(), Alignment::SharedClock).to_jsonl();
        assert_eq!(x, y);
    }

    #[test]
    fn first_contact_alignment_recovers_clock_skew() {
        // Ground truth: replica 1's clock runs 1_000_000 ns behind
        // replica 0's (its local stamps read `true - skew`); network
        // delay is 2_000 ns. True times are offset by 4ms so the skewed
        // stamps stay non-negative in u64.
        let skew: u64 = 1_000_000;
        let base: u64 = 4_000_000;
        let a = vec![
            stage(base + 10_000, 0, Stage::Proposed, 1),
            stage(base + 50_000, 0, Stage::Proposed, 2),
        ];
        let b = vec![
            stage(base + 12_000 - skew, 1, Stage::Received, 1),
            stage(base + 52_000 - skew, 1, Stage::Received, 2),
        ];
        let merged = ClusterTrace::merge(vec![a, b], Alignment::FirstContact);
        let skew = skew as i64;
        // offset[1] - offset[0] should be ≈ skew (within the 2_000 ns
        // min delay, which biases the estimate by exactly that delay).
        let rel = merged.offsets[1] - merged.offsets[0];
        assert!((rel - skew).abs() <= 2_000, "estimated relative offset {rel} vs true skew {skew}");
        // Causal order propose-before-receive holds after adjustment.
        let prop: Vec<u64> = merged
            .events
            .iter()
            .filter(|e| matches!(e.kind, OwnedEventKind::Stage { stage: Stage::Proposed, .. }))
            .map(|e| e.at)
            .collect();
        let recv: Vec<u64> = merged
            .events
            .iter()
            .filter(|e| matches!(e.kind, OwnedEventKind::Stage { stage: Stage::Received, .. }))
            .map(|e| e.at)
            .collect();
        assert!(prop[0] <= recv[0] && prop[1] <= recv[1]);
    }

    #[test]
    fn disconnected_sources_fall_back_to_zero_offset() {
        let a = vec![stage(10, 0, Stage::Proposed, 1)];
        let b = vec![stage(20, 1, Stage::Voted, 2)]; // no shared anchors
        let merged = ClusterTrace::merge(vec![a, b], Alignment::FirstContact);
        assert_eq!(merged.offsets, vec![0, 0]);
        assert_eq!(merged.events.len(), 2);
    }

    #[test]
    fn files_round_trip_through_merge() {
        let dir = std::env::temp_dir().join(format!("hs1-trace-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.jsonl");
        let pb = dir.join("b.jsonl");
        std::fs::write(&pa, stage(10, 0, Stage::Proposed, 1).to_json() + "\n").unwrap();
        std::fs::write(&pb, stage(12, 1, Stage::Received, 1).to_json() + "\n").unwrap();
        let merged = ClusterTrace::from_files(&[&pa, &pb], Alignment::SharedClock).unwrap();
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].actor, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
