//! Chrome `trace_event` / Perfetto JSON export of a merged timeline.
//!
//! Emits the classic JSON array format (`{"traceEvents":[...]}`) that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! open directly: one *thread track* per replica (tid = actor id, plus a
//! `harness` track for oracle/client events), duration spans (`B`/`E`)
//! for named spans like views, and thread-scoped instants (`i`) for
//! stage crossings and point samples.
//!
//! Timestamps in this format are **microseconds**; trace time is
//! nanoseconds, so `ts` is emitted as a fixed-point `micros.nnn` string
//! of digits — fractional microseconds survive, output stays
//! float-formatting-free, and the export is byte-deterministic for a
//! deterministic input timeline.

use crate::trace::{OwnedEvent, OwnedEventKind};

/// The synthetic tid used for the harness/oracle lane (`u32::MAX` itself
/// renders as an unreadable track id in trace viewers).
const HARNESS_TID: u32 = 999;

fn ts(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn tid(actor: u32) -> u32 {
    if actor == u32::MAX {
        HARNESS_TID
    } else {
        actor
    }
}

/// Render a merged timeline as Chrome `trace_event` JSON.
pub fn chrome_trace_json(events: &[OwnedEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
    };

    // Metadata: name the process and one thread track per actor seen,
    // harness last. sort_index keeps replica tracks in id order.
    let mut actors: Vec<u32> = events.iter().map(|e| e.actor).collect();
    actors.sort_unstable();
    actors.dedup();
    push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"hs1 cluster\"}}"
            .to_string(),
        &mut out,
    );
    for &actor in &actors {
        let label =
            if actor == u32::MAX { "harness".to_string() } else { format!("replica {actor}") };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}",
                tid(actor)
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                tid(actor),
                tid(actor)
            ),
            &mut out,
        );
    }

    for ev in events {
        let (pid, t) = (0, tid(ev.actor));
        let line = match &ev.kind {
            OwnedEventKind::SpanBegin { name, key } => format!(
                "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{t},\"ts\":{},\"name\":\"{name} {key}\"}}",
                ts(ev.at)
            ),
            OwnedEventKind::SpanEnd { name, key } => format!(
                "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{t},\"ts\":{},\"name\":\"{name} {key}\"}}",
                ts(ev.at)
            ),
            OwnedEventKind::Stage { stage, block } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{t},\"ts\":{},\
                 \"name\":\"{}\",\"args\":{{\"block\":{block}}}}}",
                ts(ev.at),
                stage.name()
            ),
            OwnedEventKind::Point { name, key, value } => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{t},\"ts\":{},\
                 \"name\":\"{name}\",\"args\":{{\"key\":{key},\"value\":{value}}}}}",
                ts(ev.at)
            ),
        };
        push(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;

    fn events() -> Vec<OwnedEvent> {
        vec![
            OwnedEvent {
                at: 1_500,
                actor: 0,
                kind: OwnedEventKind::SpanBegin { name: "view".to_string(), key: 1 },
            },
            OwnedEvent {
                at: 2_000,
                actor: 1,
                kind: OwnedEventKind::Stage { stage: Stage::Received, block: 7 },
            },
            OwnedEvent {
                at: 2_500,
                actor: u32::MAX,
                kind: OwnedEventKind::Point { name: "finality".to_string(), key: 7, value: 9 },
            },
            OwnedEvent {
                at: 3_000,
                actor: 0,
                kind: OwnedEventKind::SpanEnd { name: "view".to_string(), key: 1 },
            },
        ]
    }

    #[test]
    fn export_contains_tracks_spans_and_instants() {
        let json = chrome_trace_json(&events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"replica 0\""));
        assert!(json.contains("\"name\":\"replica 1\""));
        assert!(json.contains("\"name\":\"harness\""));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"view 1\""));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"block\":7}"));
        // 1500ns → 1.500µs: fractional microseconds survive as fixed-point.
        assert!(json.contains("\"ts\":1.500"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(chrome_trace_json(&events()), chrome_trace_json(&events()));
    }

    #[test]
    fn empty_timeline_is_still_valid_json_shape() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with("]}"));
    }
}
