//! Commit critical-path extraction: per committed block, the slowest
//! causal chain from client submit to client finality, with each hop
//! attributed to the replica that bounded it.
//!
//! The chain is the same telescoped decomposition `fig_latency_breakdown`
//! pins (submit → leader propose → quorum-th receive → quorum-th
//! certify → quorum-th respond → finality), with one addition: each hop
//! remembers *which actor's* event closed it — the leader for the
//! propose hop, the straggler that completed the certifying quorum for
//! the vote hop, and so on. Timestamps are clamped monotone into
//! `[t0, t5]`, so the five hop durations sum **exactly** (u64 exact, not
//! approximately) to the end-to-end latency; the `fig_critical_path`
//! bench and the chaos-replay canary both assert that telescoping.
//!
//! The input is the merged cluster timeline ([`crate::ClusterTrace`]) or
//! any flat event stream containing all replicas' stage events — on a
//! per-node island trace the quorum-th observations don't exist, which
//! is exactly why this analysis lives behind the merge engine.

use std::collections::BTreeMap;

use crate::event::Stage;
use crate::trace::{OwnedEvent, OwnedEventKind};

/// Hop names, in causal order (column names in the attribution CSV).
pub const HOP_NAMES: [&str; 5] = [
    "submit_to_propose",
    "propose_to_receive",
    "receive_to_certify",
    "certify_to_respond",
    "respond_to_final",
];

/// The actor id attributed to hops closed by the harness/client side
/// (same sentinel the oracle emits trace events under).
pub const HARNESS_ACTOR: u32 = u32::MAX;

/// One committed block's critical path.
#[derive(Clone, Debug)]
pub struct BlockPath {
    /// The block's trace key ([`crate::block_key`]).
    pub block: u64,
    /// Telescoped timestamps `[t0..t5]`, clamped monotone into `[t0, t5]`.
    pub t: [u64; 6],
    /// `actors[i]` closed hop `i` (`t[i] → t[i+1]`): the replica whose
    /// event set `t[i+1]`. The final hop belongs to [`HARNESS_ACTOR`].
    pub actors: [u32; 5],
    /// Whether the block carried a client submission point. Empty blocks
    /// get a zero submit hop (`t0 = t1`) and `false` here; cohort
    /// comparisons against `fig_latency_breakdown` (which skips such
    /// blocks) should filter on this.
    pub has_submit: bool,
}

impl BlockPath {
    /// Duration of hop `i` in nanoseconds.
    pub fn hop_ns(&self, i: usize) -> u64 {
        self.t[i + 1] - self.t[i]
    }

    /// End-to-end latency (== the sum of all five hops, by construction).
    pub fn e2e_ns(&self) -> u64 {
        self.t[5] - self.t[0]
    }

    /// The index of the slowest hop (first wins ties).
    pub fn slowest_hop(&self) -> usize {
        (0..5).max_by_key(|&i| (self.hop_ns(i), 5 - i)).unwrap_or(0)
    }
}

/// Raw per-block observations, each timestamp paired with its actor.
#[derive(Default)]
struct BlockObs {
    submit_mean: Option<u64>,
    proposed: Option<(u64, u32)>,
    received: Vec<(u64, u32)>,
    speculated: Vec<(u64, u32)>,
    committed: Vec<(u64, u32)>,
    responded: Vec<(u64, u32)>,
    finality: Option<u64>,
}

/// The k-th earliest observation (1-based), with the actor that made it.
/// Ties break by actor id so the answer is deterministic on merged
/// timelines where distinct replicas share a timestamp.
fn kth(mut obs: Vec<(u64, u32)>, k: usize) -> Option<(u64, u32)> {
    if obs.len() < k {
        return None;
    }
    obs.sort_unstable();
    Some(obs[k - 1])
}

fn path(block: u64, b: BlockObs, quorum: usize) -> Option<BlockPath> {
    let t5 = b.finality?;
    let (tp, leader) = b.proposed?;
    // Blocks with no client transactions carry no submission point; their
    // submit→propose hop is zero by construction.
    let t0 = b.submit_mean.unwrap_or(tp);
    if t5 < t0 {
        return None;
    }
    let (tr, recv_actor) = kth(b.received, quorum)?;
    // HS1 responds after speculation; the baselines only after commit.
    let (tc, cert_actor) = kth(b.speculated.clone(), quorum).or(kth(b.committed, quorum))?;
    let (ts, resp_actor) = kth(b.responded, quorum)?;
    let raw = [t0, tp, tr, tc, ts, t5];
    let mut t = [t0; 6];
    for i in 1..6 {
        t[i] = raw[i].clamp(t[i - 1], t5);
    }
    Some(BlockPath {
        block,
        t,
        actors: [leader, recv_actor, cert_actor, resp_actor, HARNESS_ACTOR],
        has_submit: b.submit_mean.is_some(),
    })
}

/// Extract every fully-observed block's critical path from a merged
/// timeline. `quorum` is `n − f` (3 at the quickstart n=4). Blocks are
/// returned in trace-key order.
pub fn analyze(events: &[OwnedEvent], quorum: usize) -> Vec<BlockPath> {
    let mut blocks: BTreeMap<u64, BlockObs> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            OwnedEventKind::Stage { stage, block } => {
                let b = blocks.entry(*block).or_default();
                let sample = (ev.at, ev.actor);
                match stage {
                    Stage::Proposed => {
                        b.proposed = Some(b.proposed.map_or(sample, |p| p.min(sample)))
                    }
                    Stage::Received => b.received.push(sample),
                    Stage::Speculated => b.speculated.push(sample),
                    Stage::Committed => b.committed.push(sample),
                    Stage::Responded => b.responded.push(sample),
                    Stage::Voted => {}
                }
            }
            OwnedEventKind::Point { name, key, .. } if name == "finality" => {
                blocks.entry(*key).or_default().finality = Some(ev.at);
            }
            OwnedEventKind::Point { name, key, value } if name == "submit_mean" => {
                blocks.entry(*key).or_default().submit_mean = Some(*value);
            }
            _ => {}
        }
    }
    blocks.into_iter().filter_map(|(block, b)| path(block, b, quorum)).collect()
}

/// The number of blocks the trace marks final (a `finality` point exists)
/// — the denominator for "every committed block got an attributed path".
pub fn finalized_blocks(events: &[OwnedEvent]) -> usize {
    let mut keys: Vec<u64> = events
        .iter()
        .filter_map(|ev| match &ev.kind {
            OwnedEventKind::Point { name, key, .. } if name == "finality" => Some(*key),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.len()
}

/// Per-hop attribution as CSV: one row per (block, hop), durations in
/// nanoseconds, each hop tagged with the actor that closed it.
pub fn attribution_csv(paths: &[BlockPath]) -> String {
    let mut out = String::from("block,hop,from_ns,to_ns,dur_ns,actor\n");
    for p in paths {
        for (i, name) in HOP_NAMES.iter().enumerate() {
            out.push_str(&format!(
                "{},{name},{},{},{},{}\n",
                p.block,
                p.t[i],
                p.t[i + 1],
                p.hop_ns(i),
                p.actors[i],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(at: u64, actor: u32, s: Stage, block: u64) -> OwnedEvent {
        OwnedEvent { at, actor, kind: OwnedEventKind::Stage { stage: s, block } }
    }

    fn point(at: u64, name: &str, key: u64, value: u64) -> OwnedEvent {
        OwnedEvent {
            at,
            actor: HARNESS_ACTOR,
            kind: OwnedEventKind::Point { name: name.to_string(), key, value },
        }
    }

    /// One fully-observed HS1-style block: leader 2 proposes, all four
    /// receive/speculate/respond, quorum = 3.
    fn block_events() -> Vec<OwnedEvent> {
        let mut evs = vec![point(0, "submit_mean", 9, 100), stage(200, 2, Stage::Proposed, 9)];
        for (i, (rx, spec, resp)) in
            [(300u64, 500u64, 700u64), (320, 530, 720), (340, 560, 740), (360, 590, 760)]
                .into_iter()
                .enumerate()
        {
            evs.push(stage(rx, i as u32, Stage::Received, 9));
            evs.push(stage(spec, i as u32, Stage::Speculated, 9));
            evs.push(stage(resp, i as u32, Stage::Responded, 9));
        }
        evs.push(point(800, "finality", 9, 700));
        evs
    }

    #[test]
    fn hops_telescope_exactly_and_attribute_the_quorum_straggler() {
        let paths = analyze(&block_events(), 3);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.block, 9);
        assert_eq!(p.t, [100, 200, 340, 560, 740, 800]);
        let hop_sum: u64 = (0..5).map(|i| p.hop_ns(i)).sum();
        assert_eq!(hop_sum, p.e2e_ns(), "hops sum exactly to e2e");
        // Leader 2 closed the propose hop; replica 2 was the 3rd of 4 at
        // every quorum stage; the final hop is the harness/client's.
        assert_eq!(p.actors, [2, 2, 2, 2, HARNESS_ACTOR]);
        assert_eq!(p.slowest_hop(), 2, "receive→certify (220ns) dominates");
    }

    #[test]
    fn certify_prefers_speculation_then_falls_back_to_commit() {
        // Strip speculation (an HS2-style trace): certify must come from
        // the commit quorum instead.
        let mut evs: Vec<OwnedEvent> = block_events()
            .into_iter()
            .filter(|e| !matches!(e.kind, OwnedEventKind::Stage { stage: Stage::Speculated, .. }))
            .collect();
        for (at, actor) in [(600u64, 0u32), (610, 1), (620, 2)] {
            evs.push(stage(at, actor, Stage::Committed, 9));
        }
        let paths = analyze(&evs, 3);
        assert_eq!(paths[0].t[3], 620, "commit quorum closes certify");
        assert_eq!(paths[0].actors[2], 2);
    }

    #[test]
    fn partially_observed_blocks_are_skipped_but_counted_as_final() {
        let mut evs = block_events();
        // A second block with finality but no quorum of responses.
        evs.push(point(0, "submit_mean", 11, 50));
        evs.push(stage(100, 0, Stage::Proposed, 11));
        evs.push(point(900, "finality", 11, 850));
        assert_eq!(finalized_blocks(&evs), 2);
        assert_eq!(analyze(&evs, 3).len(), 1, "incomplete block yields no path");
    }

    #[test]
    fn out_of_order_timestamps_clamp_monotone() {
        let mut evs = block_events();
        // A responded stamp *before* the certify quorum (clock weirdness
        // on a wall-clock trace) must clamp, not underflow.
        for ev in &mut evs {
            if matches!(ev.kind, OwnedEventKind::Stage { stage: Stage::Responded, .. }) {
                ev.at = 400;
            }
        }
        let p = &analyze(&evs, 3)[0];
        assert_eq!(p.t[4], p.t[3], "respond clamps up to certify");
        let hop_sum: u64 = (0..5).map(|i| p.hop_ns(i)).sum();
        assert_eq!(hop_sum, p.e2e_ns());
    }

    #[test]
    fn attribution_csv_has_one_row_per_hop() {
        let paths = analyze(&block_events(), 3);
        let csv = attribution_csv(&paths);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "block,hop,from_ns,to_ns,dur_ns,actor");
        assert_eq!(lines.len(), 1 + 5);
        assert_eq!(lines[1], "9,submit_to_propose,100,200,100,2");
        assert_eq!(lines[5], "9,respond_to_final,740,800,60,4294967295");
    }
}
