//! Deterministic tracing + metrics: per-stage latency attribution.
//!
//! Every layer of the stack (consensus engines, ledger execution, the
//! storage journal, the TCP node runner, the simulator) reports into one
//! [`Observer`] through a cloneable [`Obs`] handle. The layer code never
//! knows whether anyone is listening: the default handle is a no-op whose
//! emission cost is a single `Option` branch, and an attached observer is
//! a *pure* observer — it draws no randomness, perturbs no engine state,
//! and leaves `Report::fingerprint`, execution digests, and state roots
//! bit-identical (pinned by property tests in the facade crate).
//!
//! # Determinism contract
//!
//! Trace timestamps come from a harness-controlled [`Clock`]: the
//! simulator drives a [`Clock::manual`] with sim-time, so two runs of the
//! same seed produce **byte-identical JSONL** trace files; the TCP runtime
//! uses [`Clock::wall`], where byte-identity is explicitly not promised.
//! Wall-measured durations (fsync latency, batch execute time) are
//! confined to [log2 histograms](Histogram) in the metrics snapshot and
//! never appear in the trace, so they cannot break trace reproducibility
//! even under the simulator.
//!
//! # Output formats
//!
//! * **JSONL trace** ([`RecordingObserver::write_jsonl`]): one event per
//!   line, ordered as emitted — `{"at":..,"actor":..,"kind":..,...}`.
//! * **CSV / table metrics snapshot** ([`MetricsSnapshot`]): counters,
//!   gauges, and histogram summaries in a fixed schema shared by sim
//!   reports, the chaos replay tool, and the TCP bins.
//! * **Prometheus text** ([`MetricsSnapshot::to_prometheus`]): the same
//!   snapshot in exposition format, served by the TCP stack's `/metrics`
//!   introspection endpoint.
//!
//! # Cluster-level analysis
//!
//! Per-node traces compose into cluster timelines: [`FanoutObserver`]
//! records each replica into its own lane (one JSONL file per replica),
//! [`ClusterTrace`] merges N such traces into one causally-ordered
//! timeline (shared-clock for sim traces, first-contact offset alignment
//! for wall-clock TCP traces), [`critical_path`] extracts each committed
//! block's slowest causal chain with per-hop replica attribution, and
//! [`perfetto`] exports the merged timeline as Chrome `trace_event` JSON
//! for ui.perfetto.dev. All of it is post-processing over recorded,
//! deterministic data — nothing here feeds back into the observed system.

mod event;
mod record;

pub mod critical_path;
mod fanout;
pub mod perfetto;
pub mod trace;

pub use critical_path::{attribution_csv, BlockPath, HOP_NAMES};
pub use event::{block_key, EventKind, Stage, TraceEvent};
pub use fanout::FanoutObserver;
pub use record::{Histogram, MetricRow, MetricsSnapshot, RecordingObserver};
pub use trace::{Alignment, ClusterTrace, OwnedEvent, OwnedEventKind};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The sink interface. Implementations must be pure observers: no
/// randomness, no feedback into the observed system.
pub trait Observer: Send {
    /// A timeline event (stage transition, span edge, or point sample).
    fn on_event(&mut self, ev: TraceEvent);
    /// Add `delta` to a monotonic counter. `idx` distinguishes instances
    /// of the same counter (e.g. a peer id); use 0 when unindexed.
    fn add_counter(&mut self, actor: u32, name: &'static str, idx: u32, delta: u64);
    /// Set a gauge to its current value (last write wins).
    fn set_gauge(&mut self, actor: u32, name: &'static str, idx: u32, value: u64);
    /// Record one duration sample (nanoseconds) into a log2 histogram.
    fn observe(&mut self, actor: u32, name: &'static str, nanos: u64);
    /// Persist any buffered output (e.g. the JSONL trace). Called by
    /// harnesses before exiting — including the invariant-violation exit
    /// path, so a failing run still leaves its diagnostics on disk.
    fn flush(&mut self);
}

/// The observer that observes nothing (useful as an explicit default).
pub struct NoopObserver;

impl Observer for NoopObserver {
    fn on_event(&mut self, _ev: TraceEvent) {}
    fn add_counter(&mut self, _actor: u32, _name: &'static str, _idx: u32, _delta: u64) {}
    fn set_gauge(&mut self, _actor: u32, _name: &'static str, _idx: u32, _value: u64) {}
    fn observe(&mut self, _actor: u32, _name: &'static str, _nanos: u64) {}
    fn flush(&mut self) {}
}

/// Time source for trace timestamps.
///
/// [`Clock::manual`] is set explicitly by the harness (the simulator
/// writes sim-time before dispatching each event), making timestamps a
/// pure function of the seed. [`Clock::wall`] reads elapsed wall time
/// from a base instant (the TCP runtime).
#[derive(Clone)]
pub struct Clock(ClockInner);

#[derive(Clone)]
enum ClockInner {
    Manual(Arc<AtomicU64>),
    Wall(Instant),
}

impl Clock {
    /// A harness-driven clock starting at 0.
    pub fn manual() -> Clock {
        Clock(ClockInner::Manual(Arc::new(AtomicU64::new(0))))
    }

    /// A wall clock measuring from now.
    pub fn wall() -> Clock {
        Clock(ClockInner::Wall(Instant::now()))
    }

    /// Set the current time in nanoseconds (manual clocks only; a no-op
    /// on wall clocks).
    pub fn set(&self, nanos: u64) {
        if let ClockInner::Manual(t) = &self.0 {
            t.store(nanos, Ordering::Relaxed);
        }
    }

    /// Current time in nanoseconds.
    pub fn now(&self) -> u64 {
        match &self.0 {
            ClockInner::Manual(t) => t.load(Ordering::Relaxed),
            ClockInner::Wall(base) => base.elapsed().as_nanos() as u64,
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::manual()
    }
}

/// Cloneable handle carried by every instrumented layer.
///
/// A handle is (sink, clock, actor id). The default handle has no sink
/// and every emission returns after one branch. Clones share the sink and
/// clock; [`Obs::with_actor`] re-tags a clone with the owning replica's
/// id so all layers inside one replica report under one actor.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<Mutex<dyn Observer>>>,
    clock: Clock,
    actor: u32,
}

impl Obs {
    /// The no-op handle (same as `Obs::default()`).
    pub fn noop() -> Obs {
        Obs::default()
    }

    /// A handle feeding `sink`, stamped by `clock`, as actor 0.
    pub fn new(sink: Arc<Mutex<dyn Observer>>, clock: Clock) -> Obs {
        Obs { sink: Some(sink), clock, actor: 0 }
    }

    /// A recording handle plus the shared recorder for later export.
    pub fn recording(clock: Clock) -> (Obs, Arc<Mutex<RecordingObserver>>) {
        let rec = Arc::new(Mutex::new(RecordingObserver::new()));
        (Obs::new(rec.clone(), clock), rec)
    }

    /// This handle re-tagged with `actor` (shares sink and clock).
    pub fn with_actor(&self, actor: u32) -> Obs {
        Obs { sink: self.sink.clone(), clock: self.clock.clone(), actor }
    }

    /// Is a sink attached? Lets callers skip building expensive inputs.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The shared clock (harnesses use this to drive manual time).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Set the manual clock to `nanos` (no-op without a sink or on wall
    /// clocks).
    pub fn set_now(&self, nanos: u64) {
        if self.sink.is_some() {
            self.clock.set(nanos);
        }
    }

    fn emit(&self, kind: EventKind, at: u64) {
        if let Some(s) = &self.sink {
            s.lock().expect("observer lock").on_event(TraceEvent { at, actor: self.actor, kind });
        }
    }

    /// A per-block lifecycle stage at the current clock reading.
    pub fn stage(&self, stage: Stage, block: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::Stage { stage, block }, self.clock.now());
        }
    }

    /// A stage with an explicit timestamp (for emitters that compute the
    /// event's time rather than observe it, e.g. the simulator's modeled
    /// response arrivals).
    pub fn stage_at(&self, stage: Stage, block: u64, at_nanos: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::Stage { stage, block }, at_nanos);
        }
    }

    /// Open a named span keyed by `key`.
    pub fn span_begin(&self, name: &'static str, key: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::SpanBegin { name, key }, self.clock.now());
        }
    }

    /// Close a named span keyed by `key`.
    pub fn span_end(&self, name: &'static str, key: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::SpanEnd { name, key }, self.clock.now());
        }
    }

    /// A point sample at the current clock reading.
    pub fn point(&self, name: &'static str, key: u64, value: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::Point { name, key, value }, self.clock.now());
        }
    }

    /// A point sample with an explicit timestamp.
    pub fn point_at(&self, name: &'static str, key: u64, value: u64, at_nanos: u64) {
        if self.sink.is_some() {
            self.emit(EventKind::Point { name, key, value }, at_nanos);
        }
    }

    /// Add `delta` to counter `name[idx]`.
    pub fn counter(&self, name: &'static str, idx: u32, delta: u64) {
        if let Some(s) = &self.sink {
            s.lock().expect("observer lock").add_counter(self.actor, name, idx, delta);
        }
    }

    /// Set gauge `name[idx]` to `value`.
    pub fn gauge(&self, name: &'static str, idx: u32, value: u64) {
        if let Some(s) = &self.sink {
            s.lock().expect("observer lock").set_gauge(self.actor, name, idx, value);
        }
    }

    /// Record one duration sample into histogram `name`. Histogram data
    /// is metrics-only — it never enters the trace, so wall-measured
    /// durations are safe here even under the deterministic simulator.
    pub fn observe_nanos(&self, name: &'static str, nanos: u64) {
        if let Some(s) = &self.sink {
            s.lock().expect("observer lock").observe(self.actor, name, nanos);
        }
    }

    /// Flush the sink (see [`Observer::flush`]).
    pub fn flush(&self) {
        if let Some(s) = &self.sink {
            s.lock().expect("observer lock").flush();
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Obs(actor={}, {})", self.actor, if self.enabled() { "on" } else { "noop" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_emits_nothing_and_is_cheap() {
        let obs = Obs::noop();
        assert!(!obs.enabled());
        obs.stage(Stage::Proposed, 1);
        obs.counter("x", 0, 1);
        obs.observe_nanos("y", 5);
        obs.flush(); // all no-ops
    }

    #[test]
    fn recording_handle_captures_events_in_order() {
        let (obs, rec) = Obs::recording(Clock::manual());
        obs.set_now(10);
        obs.stage(Stage::Proposed, 7);
        obs.set_now(20);
        obs.with_actor(3).stage(Stage::Received, 7);
        let r = rec.lock().unwrap();
        assert_eq!(r.trace().len(), 2);
        assert_eq!(r.trace()[0].at, 10);
        assert_eq!(r.trace()[1].actor, 3);
        assert_eq!(r.trace()[1].at, 20);
    }

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let (obs, rec) = Obs::recording(Clock::manual());
        let tagged = obs.with_actor(9);
        obs.set_now(42);
        tagged.point("p", 0, 1);
        assert_eq!(rec.lock().unwrap().trace()[0].at, 42);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = Clock::wall();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        c.set(0); // no-op on wall clocks
        assert!(c.now() >= a);
    }
}
