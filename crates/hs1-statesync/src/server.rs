//! The serving side of state sync: answer manifest and chunk requests
//! out of the newest durable checkpoint.

use std::path::PathBuf;

use hs1_storage::Checkpoint;
use hs1_types::message::SnapshotManifestMsg;
use hs1_types::{Certificate, Message};

use crate::image::{SnapshotImage, DEFAULT_CHUNK_BYTES};

/// One prepared (chunked, CRC-indexed) snapshot.
struct Served {
    /// `journal_seq` of the checkpoint the snapshot was derived from
    /// (cache key: rebuilt only when a newer checkpoint lands).
    ckpt_seq: u64,
    manifest: SnapshotManifestMsg,
    payload: Vec<u8>,
}

/// Serves snapshot manifests and chunks from a replica's storage
/// directory. Stateless towards peers: every request is answered from
/// the cached newest checkpoint (refreshed on manifest requests), so any
/// number of joiners can pull concurrently and a restart loses nothing.
pub struct SnapshotServer {
    dir: PathBuf,
    chunk_bytes: u32,
    cache: Option<Served>,
    /// Fault injection for tests and demos: flip a byte in every served
    /// chunk, modeling a corrupt (or lying) peer that a syncing replica
    /// must reject and rotate away from.
    corrupt_chunks: bool,
    /// Chunks served (metric).
    pub chunks_served: u64,
}

impl SnapshotServer {
    pub fn new(dir: impl Into<PathBuf>) -> SnapshotServer {
        SnapshotServer {
            dir: dir.into(),
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            cache: None,
            corrupt_chunks: false,
            chunks_served: 0,
        }
    }

    /// Override the chunk size (tests use tiny chunks to force many
    /// round trips).
    pub fn with_chunk_bytes(mut self, chunk_bytes: u32) -> SnapshotServer {
        self.set_chunk_bytes(chunk_bytes);
        self
    }

    /// Change the chunk size in place, invalidating the prepared
    /// snapshot. Note the chunk size is part of the manifest's agreement
    /// key: every serving peer of a deployment must use the same value.
    pub fn set_chunk_bytes(&mut self, chunk_bytes: u32) {
        assert!(chunk_bytes > 0);
        self.chunk_bytes = chunk_bytes;
        self.cache = None;
    }

    /// Byzantine fault injection: serve chunks with one byte flipped.
    pub fn inject_corruption(&mut self, on: bool) {
        self.corrupt_chunks = on;
    }

    /// Handle a state-sync request; `None` for everything else (and for
    /// requests this replica cannot serve — the requester's timeout and
    /// peer rotation handle silence).
    pub fn handle(&mut self, msg: &Message) -> Option<Message> {
        match msg {
            Message::SnapshotReq(_) => {
                self.refresh();
                let served = self.cache.as_ref()?;
                // Served even when the requester is not behind: a
                // manifest showing chain_len ≤ have is exactly what lets
                // the requester conclude — quickly, with f+1 agreement —
                // that replay is the right catch-up instead of waiting
                // out its sync budget on silence.
                Some(Message::SnapshotManifest(served.manifest.clone()))
            }
            Message::SnapshotChunkReq(req) => {
                let served = self.cache.as_ref()?;
                if served.manifest.state_root != req.state_root {
                    return None; // stale download (checkpoint moved on)
                }
                let mut chunk = SnapshotImage::chunk(
                    &served.payload,
                    req.state_root,
                    served.manifest.chunk_bytes,
                    req.index,
                )?;
                if self.corrupt_chunks && !chunk.data.is_empty() {
                    chunk.data[0] ^= 0xFF;
                }
                self.chunks_served += 1;
                Some(Message::SnapshotChunk(chunk))
            }
            _ => None,
        }
    }

    /// Rebuild the cached snapshot if a newer checkpoint exists on disk.
    /// A missing or corrupt checkpoint set simply leaves the cache as is
    /// (a replica that cannot serve stays silent). Staleness is probed
    /// from directory metadata alone, so the steady-state cost of a
    /// manifest request is a readdir — not a full checkpoint decode.
    fn refresh(&mut self) {
        let Ok(Some(newest_seq)) = Checkpoint::latest_seq(&self.dir) else { return };
        if self.cache.as_ref().map(|s| s.ckpt_seq) == Some(newest_seq) {
            return;
        }
        let Ok(Some(ckpt)) = Checkpoint::load_latest(&self.dir) else { return };
        let image = SnapshotImage::from_checkpoint(&ckpt);
        let payload = image.payload();
        let high_cert = ckpt.high_cert.clone().unwrap_or_else(Certificate::genesis);
        let manifest = image.manifest(&payload, self.chunk_bytes, ckpt.view, high_cert);
        self.cache = Some(Served { ckpt_seq: ckpt.journal_seq, manifest, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_ledger::KvStore;
    use hs1_storage::crc32::crc32;
    use hs1_storage::testutil::TempDir;
    use hs1_types::message::{SnapshotChunkReqMsg, SnapshotReqMsg};
    use hs1_types::{Block, BlockId, View};

    fn write_checkpoint(dir: &std::path::Path, seq: u64, tag: u64) -> Checkpoint {
        let mut store = KvStore::with_records(100);
        store.put(1, tag);
        let chain = vec![Block::genesis_id(), BlockId::test(tag)];
        let ckpt = Checkpoint::capture(seq, View(seq), None, &store, &chain);
        ckpt.write(dir).expect("write checkpoint");
        ckpt
    }

    #[test]
    fn serves_manifest_and_chunks_from_newest_checkpoint() {
        let tmp = TempDir::new("snapserver");
        write_checkpoint(tmp.path(), 5, 42);
        let mut server = SnapshotServer::new(tmp.path()).with_chunk_bytes(16);

        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 1 });
        let Some(Message::SnapshotManifest(m)) = server.handle(&req) else {
            panic!("expected a manifest");
        };
        assert!(m.well_formed());
        assert_eq!(m.chain_len, 2);

        // Pull and reassemble every chunk; CRCs must line up.
        let mut payload = Vec::new();
        for i in 0..m.chunk_count() {
            let creq = Message::SnapshotChunkReq(SnapshotChunkReqMsg {
                state_root: m.state_root,
                index: i,
            });
            let Some(Message::SnapshotChunk(c)) = server.handle(&creq) else {
                panic!("expected chunk {i}");
            };
            assert_eq!(crc32(&c.data), m.chunk_crcs[i as usize]);
            payload.extend_from_slice(&c.data);
        }
        assert_eq!(payload.len() as u64, m.total_bytes);
        let image = SnapshotImage::decode_payload(&payload).expect("image");
        assert_eq!(image.state_root, m.state_root);

        // Out-of-range and stale-root requests go unanswered.
        let oob = Message::SnapshotChunkReq(SnapshotChunkReqMsg {
            state_root: m.state_root,
            index: m.chunk_count(),
        });
        assert!(server.handle(&oob).is_none());
        let stale = Message::SnapshotChunkReq(SnapshotChunkReqMsg {
            state_root: hs1_crypto::Digest([9u8; 32]),
            index: 0,
        });
        assert!(server.handle(&stale).is_none());
    }

    #[test]
    fn serves_manifest_even_when_requester_is_not_behind() {
        // The not-ahead manifest is what lets a restarted-but-current
        // replica conclude `Declined` instead of waiting out its sync
        // budget on silence.
        let tmp = TempDir::new("snapserver-ahead");
        write_checkpoint(tmp.path(), 5, 42);
        let mut server = SnapshotServer::new(tmp.path());
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 2 });
        assert!(matches!(server.handle(&req), Some(Message::SnapshotManifest(_))));
    }

    #[test]
    fn empty_dir_stays_silent() {
        let tmp = TempDir::new("snapserver-empty");
        std::fs::create_dir_all(tmp.path()).unwrap();
        let mut server = SnapshotServer::new(tmp.path());
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 0 });
        assert!(server.handle(&req).is_none());
    }

    #[test]
    fn refresh_picks_up_newer_checkpoint() {
        let tmp = TempDir::new("snapserver-refresh");
        write_checkpoint(tmp.path(), 5, 42);
        let mut server = SnapshotServer::new(tmp.path());
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 0 });
        let Some(Message::SnapshotManifest(m1)) = server.handle(&req) else { panic!() };
        write_checkpoint(tmp.path(), 9, 77);
        let Some(Message::SnapshotManifest(m2)) = server.handle(&req) else { panic!() };
        assert_ne!(m1.state_root, m2.state_root, "newer checkpoint served");
        assert_eq!(m2.view, View(9));
    }

    #[test]
    fn injected_corruption_breaks_chunk_crc() {
        let tmp = TempDir::new("snapserver-corrupt");
        write_checkpoint(tmp.path(), 5, 42);
        let mut server = SnapshotServer::new(tmp.path());
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 0 });
        let Some(Message::SnapshotManifest(m)) = server.handle(&req) else { panic!() };
        server.inject_corruption(true);
        let creq =
            Message::SnapshotChunkReq(SnapshotChunkReqMsg { state_root: m.state_root, index: 0 });
        let Some(Message::SnapshotChunk(c)) = server.handle(&creq) else { panic!() };
        assert_ne!(crc32(&c.data), m.chunk_crcs[0], "corrupted chunk must fail its CRC");
    }
}
