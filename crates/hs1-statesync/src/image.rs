//! The snapshot image: what actually crosses the wire during state sync.
//!
//! An image is the state-identity slice of a durable
//! [`hs1_storage::Checkpoint`] — the materialized KV entries, the logical
//! record count, and the committed chain ids — *excluding* the serving
//! peer's consensus position (view / certificate), so that any two honest
//! peers whose checkpoints cover the same chain position produce
//! **byte-identical payloads**. That determinism is what the `f + 1`
//! manifest-agreement rule (see the crate docs) and cross-peer chunk
//! resumption rest on.
//!
//! Payload layout (the `hs1-types` codec, like everything on the wire):
//!
//! ```text
//! [u64 record_count][Vec<(u64,u64)> entries, key-sorted][Vec<BlockId> chain]
//! ```
//!
//! The payload is split into fixed-size chunks; the manifest carries one
//! CRC32 per chunk (the integrity index) plus the image's `state_root`,
//! which the assembler recomputes from the decoded entries before
//! installing anything.

use hs1_crypto::Digest;
use hs1_ledger::KvStore;
use hs1_storage::crc32::crc32;
use hs1_storage::Checkpoint;
use hs1_types::codec::{Decode, Encode, Reader};
use hs1_types::message::{SnapshotChunkMsg, SnapshotManifestMsg};
use hs1_types::{Block, BlockId, Certificate, View};

use crate::SyncError;

/// Default chunk size. Small enough that one chunk is far below the
/// transport's frame and sequence limits, large enough that a
/// multi-megabyte image takes tens of round trips, not thousands.
pub const DEFAULT_CHUNK_BYTES: u32 = 256 * 1024;

/// A decoded (or to-be-encoded) snapshot image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotImage {
    /// Logical record count of the committed store.
    pub record_count: u64,
    /// Materialized writes, sorted by key (canonical ordering — required
    /// for byte-identical payloads across peers).
    pub entries: Vec<(u64, u64)>,
    /// Committed chain ids in commit order, genesis first.
    pub chain: Vec<BlockId>,
    /// `state_root()` of the store the image describes. For decoded
    /// images this is *recomputed from the entries*, never read from the
    /// wire.
    pub state_root: Digest,
}

impl SnapshotImage {
    /// Snapshot a live store + chain (tests and benches; the serving path
    /// uses [`SnapshotImage::from_checkpoint`]).
    pub fn capture(store: &KvStore, chain: &[BlockId]) -> SnapshotImage {
        let mut entries: Vec<(u64, u64)> = store.materialized().collect();
        entries.sort_unstable();
        SnapshotImage {
            record_count: store.record_count(),
            entries,
            chain: chain.to_vec(),
            state_root: store.state_root(),
        }
    }

    /// The image a durable checkpoint serves (checkpoint entries are
    /// already key-sorted).
    pub fn from_checkpoint(ckpt: &Checkpoint) -> SnapshotImage {
        SnapshotImage {
            record_count: ckpt.record_count,
            entries: ckpt.entries.clone(),
            chain: ckpt.chain.clone(),
            state_root: ckpt.state_root,
        }
    }

    /// Rebuild the committed store this image describes.
    pub fn restore_store(&self) -> KvStore {
        KvStore::from_parts(self.record_count, self.entries.iter().copied())
    }

    /// Canonical payload bytes (deterministic across honest peers).
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.entries.len() * 16 + self.chain.len() * 32);
        self.record_count.encode(&mut out);
        self.entries.encode(&mut out);
        self.chain.encode(&mut out);
        out
    }

    /// Decode an assembled payload, recomputing the state root from the
    /// decoded entries and enforcing the structural invariants a hostile
    /// serializer could violate.
    pub fn decode_payload(bytes: &[u8]) -> Result<SnapshotImage, SyncError> {
        let mut r = Reader::new(bytes);
        let record_count = u64::decode(&mut r)?;
        let entries = Vec::<(u64, u64)>::decode(&mut r)?;
        let chain = Vec::<BlockId>::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(SyncError::Malformed("trailing bytes after image"));
        }
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(SyncError::Malformed("entries not strictly key-sorted"));
        }
        if chain.first() != Some(&Block::genesis_id()) {
            return Err(SyncError::Malformed("chain does not start at genesis"));
        }
        let state_root = KvStore::from_parts(record_count, entries.iter().copied()).state_root();
        Ok(SnapshotImage { record_count, entries, chain, state_root })
    }

    /// Build the manifest describing `payload` (the encoding of `self`)
    /// split into `chunk_bytes`-sized chunks, annotated with the serving
    /// peer's consensus position.
    pub fn manifest(
        &self,
        payload: &[u8],
        chunk_bytes: u32,
        view: View,
        high_cert: Certificate,
    ) -> SnapshotManifestMsg {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        SnapshotManifestMsg {
            chain_len: self.chain.len() as u64,
            chain_head: *self.chain.last().expect("chain contains genesis"),
            state_root: self.state_root,
            record_count: self.record_count,
            total_bytes: payload.len() as u64,
            chunk_bytes,
            chunk_crcs: payload.chunks(chunk_bytes as usize).map(crc32).collect(),
            view,
            high_cert,
        }
    }

    /// Cut chunk `index` out of `payload` (serving side).
    pub fn chunk(
        payload: &[u8],
        state_root: Digest,
        chunk_bytes: u32,
        index: u32,
    ) -> Option<SnapshotChunkMsg> {
        let start = (index as usize).checked_mul(chunk_bytes as usize)?;
        if start >= payload.len() {
            return None;
        }
        let end = (start + chunk_bytes as usize).min(payload.len());
        Some(SnapshotChunkMsg { state_root, index, data: payload[start..end].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> SnapshotImage {
        let mut store = KvStore::with_records(1000);
        for k in 0..200u64 {
            store.put(k * 3, k * k + 1);
        }
        let chain: Vec<BlockId> =
            std::iter::once(Block::genesis_id()).chain((1..40).map(BlockId::test)).collect();
        SnapshotImage::capture(&store, &chain)
    }

    #[test]
    fn payload_roundtrip_reproduces_root_and_chain() {
        let img = sample_image();
        let payload = img.payload();
        let back = SnapshotImage::decode_payload(&payload).expect("decode");
        assert_eq!(back, img);
        assert_eq!(back.restore_store().state_root(), img.state_root);
    }

    #[test]
    fn payload_is_deterministic_across_capture_orders() {
        // Same observable state reached through different write orders
        // must produce identical payload bytes (the agreement rule
        // compares CRCs across peers).
        let mut a = KvStore::with_records(100);
        let mut b = KvStore::with_records(100);
        a.put(1, 10);
        a.put(2, 20);
        b.put(2, 20);
        b.put(1, 10);
        let chain = vec![Block::genesis_id(), BlockId::test(1)];
        assert_eq!(
            SnapshotImage::capture(&a, &chain).payload(),
            SnapshotImage::capture(&b, &chain).payload()
        );
    }

    #[test]
    fn from_checkpoint_matches_direct_capture() {
        let mut store = KvStore::with_records(50);
        store.put(7, 700);
        let chain = vec![Block::genesis_id(), BlockId::test(1)];
        let ckpt = Checkpoint::capture(9, View(3), None, &store, &chain);
        assert_eq!(SnapshotImage::from_checkpoint(&ckpt), SnapshotImage::capture(&store, &chain));
    }

    #[test]
    fn chunking_covers_payload_exactly() {
        let img = sample_image();
        let payload = img.payload();
        let m = img.manifest(&payload, 100, View(1), Certificate::genesis());
        assert!(m.well_formed());
        assert_eq!(m.chunk_count() as u64, (payload.len() as u64).div_ceil(100));
        let mut rebuilt = Vec::new();
        for i in 0..m.chunk_count() {
            let c = SnapshotImage::chunk(&payload, img.state_root, 100, i).expect("chunk");
            assert_eq!(crc32(&c.data), m.chunk_crcs[i as usize], "chunk {i} CRC");
            rebuilt.extend_from_slice(&c.data);
        }
        assert_eq!(rebuilt, payload);
        assert!(SnapshotImage::chunk(&payload, img.state_root, 100, m.chunk_count()).is_none());
    }

    #[test]
    fn hostile_payloads_rejected() {
        let img = sample_image();

        // Unsorted entries (a non-canonical serialization of the same
        // state would break cross-peer CRC agreement silently).
        let mut shuffled = img.clone();
        shuffled.entries.swap(0, 1);
        assert_eq!(
            SnapshotImage::decode_payload(&shuffled.payload()),
            Err(SyncError::Malformed("entries not strictly key-sorted"))
        );

        // Chain not anchored at genesis.
        let mut anchorless = img.clone();
        anchorless.chain[0] = BlockId::test(999);
        assert_eq!(
            SnapshotImage::decode_payload(&anchorless.payload()),
            Err(SyncError::Malformed("chain does not start at genesis"))
        );

        // Truncation and trailing garbage fail cleanly.
        let payload = img.payload();
        assert!(SnapshotImage::decode_payload(&payload[..payload.len() - 1]).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert_eq!(
            SnapshotImage::decode_payload(&trailing),
            Err(SyncError::Malformed("trailing bytes after image"))
        );
    }

    #[test]
    fn decoded_root_is_recomputed_not_trusted() {
        // Tamper with one entry value post-encode: the decode succeeds
        // (bytes are well-formed) but the recomputed root differs from
        // the original image's — exactly the check the sync client runs
        // against the agreed root.
        let img = sample_image();
        let mut tampered = img.clone();
        tampered.entries[0].1 ^= 1;
        let back = SnapshotImage::decode_payload(&tampered.payload()).expect("well-formed");
        assert_ne!(back.state_root, img.state_root);
    }
}
