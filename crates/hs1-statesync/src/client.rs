//! The requesting side of state sync: collect manifests until `f + 1`
//! peers agree on a snapshot identity, download and verify chunks,
//! rotate away from corrupt or lying peers, and hand back an installable
//! image.
//!
//! The client is a pure poll-driven state machine: the transport
//! (`hs1-net`'s node runner, or a test harness) feeds inbound messages to
//! [`SyncClient::on_message`], calls [`SyncClient::poll`] for
//! time-driven retries, and sends whatever `(peer, message)` pairs both
//! produce. Nothing here touches sockets or clocks beyond the `Instant`s
//! the caller passes in, so every Byzantine scenario is unit-testable
//! deterministically.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use hs1_crypto::{Digest, PublicKeyRegistry};
use hs1_storage::crc32::crc32;
use hs1_types::message::{
    SnapshotChunkMsg, SnapshotChunkReqMsg, SnapshotManifestMsg, SnapshotReqMsg,
};
use hs1_types::{Certificate, Message, ReplicaId, SystemConfig, View};

use crate::image::SnapshotImage;

/// Tuning for one sync attempt.
#[derive(Clone, Debug)]
pub struct SyncConfig {
    pub system: SystemConfig,
    /// Snapshot transfer only pays off past this many blocks of gap;
    /// below it the client reports [`SyncPhase::Declined`] and the caller
    /// falls back to ordinary per-block fetch. (The heuristic: replay
    /// costs one round trip *and one re-execution* per block, snapshot
    /// costs O(state) once — see `hs1_sim::statesync` for the modeled
    /// crossover.)
    pub gap_threshold: u64,
    /// Re-send manifest requests at this cadence while collecting.
    pub manifest_retry: Duration,
    /// Re-send an unanswered chunk request after this long.
    pub chunk_retry: Duration,
    /// Prefer *full* agreement — every configured (unbanned) peer behind
    /// one snapshot identity — for this long after the first manifest;
    /// only then settle for the minimum `f + 1`. Waiting maximizes
    /// download fallbacks when a group member turns out to serve
    /// garbage; a peer that is down (or momentarily checkpointing a
    /// different position) costs exactly this bounded extra wait, after
    /// which `f + 1` proceeds without it.
    pub full_agreement_grace: Duration,
}

impl SyncConfig {
    pub fn new(system: SystemConfig) -> SyncConfig {
        SyncConfig {
            system,
            gap_threshold: 64,
            manifest_retry: Duration::from_millis(250),
            chunk_retry: Duration::from_millis(500),
            full_agreement_grace: Duration::from_millis(400),
        }
    }
}

/// Counters for observability and test assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncStats {
    pub manifests_received: u64,
    pub manifests_rejected: u64,
    /// Peers in the agreement group when the download started.
    pub agreement_peers: u64,
    pub chunks_received: u64,
    pub bytes_received: u64,
    /// Chunks rejected against the manifest's CRC index.
    pub crc_rejections: u64,
    /// Assembled images rejected against the agreed state root.
    pub root_rejections: u64,
    /// Downloads restarted against a different peer.
    pub rotations: u64,
}

/// Where the sync stands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPhase {
    /// Waiting for `f + 1` peers to agree on a snapshot identity.
    Collecting,
    /// Pulling chunks from one peer of the agreement group.
    Downloading,
    /// Image verified; take it with [`SyncClient::take_synced`].
    Done,
    /// Agreement reached but the gap is below `gap_threshold`: per-block
    /// replay is the better catch-up.
    Declined,
    /// Every peer of the agreement group failed verification.
    Failed,
}

/// The verified result: everything `Replica::restore` +
/// `ReplicaStorage::install_snapshot` need.
#[derive(Clone, Debug)]
pub struct SyncedState {
    pub image: SnapshotImage,
    /// Re-entry view, derived from the highest *verified* certificate
    /// among the agreement group (never from an unverifiable manifest
    /// claim — a lying `view` could mute the replica forever).
    pub view: View,
    pub high_cert: Certificate,
}

struct Download {
    from: ReplicaId,
    manifest: SnapshotManifestMsg,
    buf: Vec<u8>,
    next: u32,
    last_req: Instant,
}

/// The sync state machine. See the module docs for the driving contract.
pub struct SyncClient {
    cfg: SyncConfig,
    registry: PublicKeyRegistry,
    peers: Vec<ReplicaId>,
    have_chain_len: u64,
    phase: SyncPhase,
    /// Latest acceptable manifest per peer.
    manifests: HashMap<ReplicaId, SnapshotManifestMsg>,
    /// Peers that served a chunk or image that failed verification.
    banned: HashSet<ReplicaId>,
    /// Snapshot identity the agreement group converged on.
    agreed_key: Option<Digest>,
    download: Option<Download>,
    result: Option<SyncedState>,
    last_manifest_req: Option<Instant>,
    /// When the first acceptable manifest arrived (starts the
    /// full-agreement grace clock).
    first_manifest_at: Option<Instant>,
    pub stats: SyncStats,
}

impl SyncClient {
    /// `peers`: every replica id this client may pull from (its own id
    /// excluded by the caller). `have_chain_len`: committed chain length
    /// already on disk (genesis included).
    pub fn new(cfg: SyncConfig, peers: Vec<ReplicaId>, have_chain_len: u64) -> SyncClient {
        let registry = PublicKeyRegistry::derive(cfg.system.deployment_seed, cfg.system.n as u32);
        SyncClient {
            cfg,
            registry,
            peers,
            have_chain_len,
            phase: SyncPhase::Collecting,
            manifests: HashMap::new(),
            banned: HashSet::new(),
            agreed_key: None,
            download: None,
            result: None,
            last_manifest_req: None,
            first_manifest_at: None,
            stats: SyncStats::default(),
        }
    }

    pub fn phase(&self) -> SyncPhase {
        self.phase
    }

    /// Peers banned for serving data that failed verification (chunk CRC
    /// or assembled-root mismatch). Observability for the adversary
    /// tests and node-level diagnostics.
    pub fn banned_peers(&self) -> usize {
        self.banned.len()
    }

    /// The verified image, once `phase()` is [`SyncPhase::Done`].
    pub fn take_synced(&mut self) -> Option<SyncedState> {
        self.result.take()
    }

    /// Time-driven work: initial/retry manifest requests, chunk-request
    /// retries. Call at every loop tick.
    pub fn poll(&mut self, now: Instant, out: &mut Vec<(ReplicaId, Message)>) {
        match self.phase {
            SyncPhase::Collecting => {
                // The grace clock can expire without a new manifest
                // arriving; re-evaluate agreement on time alone.
                self.try_agree(now, out);
                if self.phase != SyncPhase::Collecting {
                    return;
                }
                let due = self
                    .last_manifest_req
                    .map(|at| now.duration_since(at) >= self.cfg.manifest_retry)
                    .unwrap_or(true);
                if due {
                    self.last_manifest_req = Some(now);
                    let req = Message::SnapshotReq(SnapshotReqMsg {
                        have_chain_len: self.have_chain_len,
                    });
                    for &p in &self.peers {
                        if !self.banned.contains(&p) {
                            out.push((p, req.clone()));
                        }
                    }
                }
            }
            SyncPhase::Downloading => {
                let Some(dl) = &mut self.download else { return };
                if now.duration_since(dl.last_req) >= self.cfg.chunk_retry {
                    // Silence is not proof of fault (the peer may be slow
                    // or the message lost): re-ask the same peer; the
                    // caller's overall deadline bounds a mute one.
                    dl.last_req = now;
                    out.push((
                        dl.from,
                        Message::SnapshotChunkReq(SnapshotChunkReqMsg {
                            state_root: dl.manifest.state_root,
                            index: dl.next,
                        }),
                    ));
                }
            }
            _ => {}
        }
    }

    /// Feed one inbound message. Non-statesync messages are ignored.
    pub fn on_message(
        &mut self,
        from: ReplicaId,
        msg: &Message,
        now: Instant,
        out: &mut Vec<(ReplicaId, Message)>,
    ) {
        match msg {
            Message::SnapshotManifest(m) => self.on_manifest(from, m, now, out),
            Message::SnapshotChunk(c) => self.on_chunk(from, c, now, out),
            _ => {}
        }
    }

    fn on_manifest(
        &mut self,
        from: ReplicaId,
        m: &SnapshotManifestMsg,
        now: Instant,
        out: &mut Vec<(ReplicaId, Message)>,
    ) {
        if !self.peers.contains(&from) || self.banned.contains(&from) {
            return;
        }
        // Reject what can be rejected without agreement: malformed chunk
        // math, or a certificate that does not verify against the
        // deployment registry (a forged manifest must not count towards —
        // or dilute — agreement). A manifest that is *not ahead* of us is
        // still accepted: f+1 of those is how the client learns quickly
        // that replay is the right catch-up (→ `Declined`).
        if !m.well_formed() || !m.high_cert.verify(&self.registry, self.cfg.system.quorum()) {
            self.stats.manifests_rejected += 1;
            return;
        }
        self.stats.manifests_received += 1;
        self.first_manifest_at.get_or_insert(now);
        self.manifests.insert(from, m.clone());
        if self.phase == SyncPhase::Collecting {
            self.try_agree(now, out);
        }
    }

    /// Group collected manifests by snapshot identity; commit to an
    /// identity once it has *every* responding peer behind it, or — after
    /// the full-agreement grace — at least `f + 1` distinct backers
    /// (preferring the longest chain when several qualify).
    fn try_agree(&mut self, now: Instant, out: &mut Vec<(ReplicaId, Message)>) {
        let needed = self.cfg.system.f() + 1;
        let mut groups: HashMap<Digest, Vec<ReplicaId>> = HashMap::new();
        for (&peer, m) in &self.manifests {
            groups.entry(m.state_key()).or_default().push(peer);
        }
        let active = self.peers.iter().filter(|p| !self.banned.contains(p)).count();
        let grace_over = self
            .first_manifest_at
            .map(|at| now.duration_since(at) >= self.cfg.full_agreement_grace)
            .unwrap_or(false);
        let winner = groups
            .into_iter()
            .filter(|(_, peers)| peers.len() >= needed && (peers.len() == active || grace_over))
            .max_by_key(|(key, _)| {
                self.manifests.values().find(|m| m.state_key() == *key).expect("group").chain_len
            });
        let Some((key, mut peers)) = winner else { return };
        let chain_len =
            self.manifests.values().find(|m| m.state_key() == key).expect("group").chain_len;
        if chain_len < self.have_chain_len + self.cfg.gap_threshold {
            self.phase = SyncPhase::Declined;
            return;
        }
        peers.sort_unstable_by_key(|p| p.0);
        self.stats.agreement_peers = peers.len() as u64;
        self.agreed_key = Some(key);
        self.start_download(now, out);
    }

    /// Start (or restart, after a rotation) the download from the
    /// lowest-id unbanned peer whose manifest matches the agreed key.
    fn start_download(&mut self, now: Instant, out: &mut Vec<(ReplicaId, Message)>) {
        let key = self.agreed_key.expect("agreement before download");
        let candidate = self
            .manifests
            .iter()
            .filter(|(p, m)| !self.banned.contains(p) && m.state_key() == key)
            .min_by_key(|(p, _)| p.0)
            .map(|(&p, m)| (p, m.clone()));
        let Some((from, manifest)) = candidate else {
            self.phase = SyncPhase::Failed;
            return;
        };
        self.phase = SyncPhase::Downloading;
        out.push((
            from,
            Message::SnapshotChunkReq(SnapshotChunkReqMsg {
                state_root: manifest.state_root,
                index: 0,
            }),
        ));
        self.download = Some(Download { from, manifest, buf: Vec::new(), next: 0, last_req: now });
    }

    /// Ban the current serving peer and restart against another member of
    /// the agreement group.
    fn rotate(&mut self, now: Instant, out: &mut Vec<(ReplicaId, Message)>) {
        if let Some(dl) = self.download.take() {
            self.banned.insert(dl.from);
            self.manifests.remove(&dl.from);
        }
        self.stats.rotations += 1;
        self.start_download(now, out);
    }

    fn on_chunk(
        &mut self,
        from: ReplicaId,
        c: &SnapshotChunkMsg,
        now: Instant,
        out: &mut Vec<(ReplicaId, Message)>,
    ) {
        if self.phase != SyncPhase::Downloading {
            return;
        }
        let Some(dl) = &mut self.download else { return };
        if from != dl.from || c.state_root != dl.manifest.state_root || c.index != dl.next {
            return; // stale or unsolicited
        }
        let expected_len = {
            let total = dl.manifest.total_bytes;
            let start = c.index as u64 * dl.manifest.chunk_bytes as u64;
            (total - start).min(dl.manifest.chunk_bytes as u64)
        };
        if c.data.len() as u64 != expected_len
            || crc32(&c.data) != dl.manifest.chunk_crcs[c.index as usize]
        {
            self.stats.crc_rejections += 1;
            self.rotate(now, out);
            return;
        }
        self.stats.chunks_received += 1;
        self.stats.bytes_received += c.data.len() as u64;
        dl.buf.extend_from_slice(&c.data);
        dl.next += 1;
        dl.last_req = now;
        if dl.next < dl.manifest.chunk_count() {
            out.push((
                dl.from,
                Message::SnapshotChunkReq(SnapshotChunkReqMsg {
                    state_root: dl.manifest.state_root,
                    index: dl.next,
                }),
            ));
            return;
        }
        self.finish(now, out);
    }

    /// All chunks in: decode, recompute the root, cross-check the agreed
    /// identity, and derive the re-entry position from verified
    /// certificates only.
    fn finish(&mut self, now: Instant, out: &mut Vec<(ReplicaId, Message)>) {
        let dl = self.download.take().expect("download in progress");
        let m = &dl.manifest;
        let verified = SnapshotImage::decode_payload(&dl.buf).ok().filter(|img| {
            img.state_root == m.state_root
                && img.chain.len() as u64 == m.chain_len
                && img.chain.last() == Some(&m.chain_head)
                && img.record_count == m.record_count
        });
        let Some(image) = verified else {
            // CRC-clean bytes that decode to the wrong state: the
            // manifest itself lied. Rotate like any other fault.
            self.stats.root_rejections += 1;
            self.download = Some(dl); // rotate() bans download.from
            self.rotate(now, out);
            return;
        };
        // Re-entry position: the highest-ranked certificate among the
        // agreement group's manifests. Every one of them verified at
        // acceptance, so even a Byzantine group member can only offer a
        // *valid* certificate — at worst a stale one, which live
        // proposals correct in one view.
        let key = self.agreed_key.expect("agreed");
        let high_cert = self
            .manifests
            .values()
            .filter(|gm| gm.state_key() == key)
            .map(|gm| gm.high_cert.clone())
            .chain(std::iter::once(m.high_cert.clone()))
            .max_by_key(|c| c.rank())
            .expect("at least the serving manifest");
        let view = high_cert.view;
        self.result = Some(SyncedState { image, view, high_cert });
        self.phase = SyncPhase::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SnapshotServer;
    use hs1_ledger::KvStore;
    use hs1_storage::testutil::TempDir;
    use hs1_storage::Checkpoint;
    use hs1_types::{Block, BlockId};

    const CHUNK: u32 = 64;

    fn system() -> SystemConfig {
        SystemConfig::new(4)
    }

    fn sync_cfg(gap_threshold: u64) -> SyncConfig {
        SyncConfig { gap_threshold, ..SyncConfig::new(system()) }
    }

    /// The shared "cluster state" every honest server checkpoints: 30
    /// committed blocks, 50 materialized keys.
    fn cluster_checkpoint() -> (KvStore, Vec<BlockId>) {
        let mut store = KvStore::with_records(200);
        for k in 0..50u64 {
            store.put(k, k * 11 + 3);
        }
        let chain: Vec<BlockId> =
            std::iter::once(Block::genesis_id()).chain((1..30).map(BlockId::test)).collect();
        (store, chain)
    }

    /// Build an honest serving replica: its own dir, the shared
    /// checkpoint content (identical bytes across peers, as aligned
    /// checkpoints are in a real cluster).
    fn honest_server(tag: &str) -> (TempDir, SnapshotServer) {
        let tmp = TempDir::new(tag);
        let (store, chain) = cluster_checkpoint();
        Checkpoint::capture(100, View(30), Some(Certificate::genesis()), &store, &chain)
            .write(tmp.path())
            .expect("write checkpoint");
        let server = SnapshotServer::new(tmp.path()).with_chunk_bytes(CHUNK);
        (tmp, server)
    }

    /// Drive `client` against in-memory servers until it stops making
    /// progress. Returns the number of exchanged messages.
    fn run_to_completion(
        client: &mut SyncClient,
        servers: &mut HashMap<ReplicaId, SnapshotServer>,
    ) -> usize {
        let mut exchanged = 0;
        let now = Instant::now();
        let mut outbox: Vec<(ReplicaId, Message)> = Vec::new();
        client.poll(now, &mut outbox);
        // FIFO delivery (like a real transport): requests fan out in
        // order and replies land before later requests are processed.
        let mut queue: std::collections::VecDeque<(ReplicaId, Message)> =
            outbox.drain(..).collect();
        for _ in 0..10_000 {
            let Some((to, msg)) = queue.pop_front() else { break };
            exchanged += 1;
            let Some(server) = servers.get_mut(&to) else { continue };
            if let Some(reply) = server.handle(&msg) {
                client.on_message(to, &reply, now, &mut outbox);
                queue.extend(outbox.drain(..));
            }
        }
        exchanged
    }

    #[test]
    fn syncs_from_agreeing_honest_peers() {
        let mut servers = HashMap::new();
        let dirs: Vec<TempDir> = (0..3)
            .map(|i| {
                let (dir, server) = honest_server("syncclient-honest");
                servers.insert(ReplicaId(i), server);
                dir
            })
            .collect();
        let _keep = dirs;

        let peers = vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)];
        let mut client = SyncClient::new(sync_cfg(8), peers, 1);
        run_to_completion(&mut client, &mut servers);

        assert_eq!(client.phase(), SyncPhase::Done);
        let synced = client.take_synced().expect("image");
        let (store, chain) = cluster_checkpoint();
        assert_eq!(synced.image.restore_store().state_root(), store.state_root());
        assert_eq!(synced.image.chain, chain);
        assert!(client.stats.agreement_peers >= 2, "f+1 = 2 manifests agreed");
        assert_eq!(client.stats.rotations, 0);
        assert!(client.stats.chunks_received > 1, "multi-chunk download");
    }

    #[test]
    fn corrupted_chunk_rejected_and_sync_completes_via_another_peer() {
        let mut servers = HashMap::new();
        let dirs: Vec<TempDir> = (0..3)
            .map(|i| {
                let (dir, mut server) = honest_server("syncclient-corrupt");
                // The lowest-id peer — the one the client picks first —
                // serves corrupted chunks.
                if i == 0 {
                    server.inject_corruption(true);
                }
                servers.insert(ReplicaId(i), server);
                dir
            })
            .collect();
        let _keep = dirs;

        let peers = vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)];
        let mut client = SyncClient::new(sync_cfg(8), peers, 1);
        run_to_completion(&mut client, &mut servers);

        assert_eq!(client.phase(), SyncPhase::Done, "sync completed despite the corrupt peer");
        assert_eq!(client.stats.crc_rejections, 1, "first chunk from peer 0 rejected");
        assert_eq!(client.stats.rotations, 1, "rotated to the next agreement-group peer");
        let synced = client.take_synced().expect("image");
        let (store, _) = cluster_checkpoint();
        assert_eq!(synced.image.restore_store().state_root(), store.state_root());
    }

    #[test]
    fn single_lying_peer_cannot_trigger_a_download() {
        // One forged manifest (any state it likes) vs one honest one:
        // no f+1 agreement, the client keeps collecting.
        let (dir, mut honest) = honest_server("syncclient-lone");
        let _keep = dir;
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 1 });
        let Some(Message::SnapshotManifest(honest_manifest)) = honest.handle(&req) else {
            panic!()
        };
        let mut forged = honest_manifest.clone();
        forged.state_root = Digest([0xAA; 32]); // fabricated state

        let peers = vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)];
        let mut client = SyncClient::new(sync_cfg(8), peers, 1);
        let now = Instant::now();
        let mut out = Vec::new();
        client.on_message(ReplicaId(0), &Message::SnapshotManifest(forged), now, &mut out);
        client.on_message(
            ReplicaId(1),
            &Message::SnapshotManifest(honest_manifest.clone()),
            now,
            &mut out,
        );
        assert_eq!(client.phase(), SyncPhase::Collecting, "1 honest + 1 forged ≠ agreement");

        // A second honest backer gives f+1 — but the forger keeps full
        // agreement from forming, so the client waits out the grace.
        let later = now + Duration::from_secs(1);
        client.on_message(
            ReplicaId(2),
            &Message::SnapshotManifest(honest_manifest),
            later,
            &mut out,
        );
        assert_eq!(client.phase(), SyncPhase::Downloading, "f+1 settles it after the grace");
    }

    #[test]
    fn lying_manifest_group_is_caught_by_the_root_check() {
        // Model the last line of defense: chunks that pass every CRC but
        // assemble into a state whose recomputed root differs from the
        // advertised one. (Reaching this in practice needs ≥ f+1
        // colluders — outside the fault model — or a CRC collision; the
        // client still refuses to install.)
        let (store, chain) = cluster_checkpoint();
        let image = SnapshotImage::capture(&store, &chain);
        let mut tampered = image.clone();
        tampered.entries[3].1 ^= 0xFF;
        let payload = tampered.payload();
        let mut manifest = tampered.manifest(&payload, CHUNK, View(30), Certificate::genesis());
        manifest.state_root = image.state_root; // claim the honest root

        let peers = vec![ReplicaId(0), ReplicaId(1)];
        let mut client = SyncClient::new(sync_cfg(8), peers, 1);
        let now = Instant::now();
        let mut out = Vec::new();
        client.on_message(
            ReplicaId(0),
            &Message::SnapshotManifest(manifest.clone()),
            now,
            &mut out,
        );
        client.on_message(
            ReplicaId(1),
            &Message::SnapshotManifest(manifest.clone()),
            now,
            &mut out,
        );
        assert_eq!(client.phase(), SyncPhase::Downloading);

        // Serve the tampered chunks (CRCs match the tampered payload).
        for _ in 0..manifest.chunk_count() * 2 + 2 {
            let Some((to, Message::SnapshotChunkReq(req))) = out.pop() else {
                break;
            };
            let chunk =
                SnapshotImage::chunk(&payload, req.state_root, CHUNK, req.index).expect("chunk");
            client.on_message(to, &Message::SnapshotChunk(chunk), now, &mut out);
        }
        assert_eq!(client.phase(), SyncPhase::Failed, "both lying peers exhausted");
        assert_eq!(client.stats.root_rejections, 2);
        assert!(client.take_synced().is_none(), "nothing installable survived");
    }

    #[test]
    fn small_gap_declines_in_favor_of_block_replay() {
        let mut servers = HashMap::new();
        let dirs: Vec<TempDir> = (0..3)
            .map(|i| {
                let (dir, server) = honest_server("syncclient-gap");
                servers.insert(ReplicaId(i), server);
                dir
            })
            .collect();
        let _keep = dirs;

        // have 25 of 30 blocks; threshold 64 ⇒ replay is cheaper.
        let peers = vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)];
        let mut client = SyncClient::new(sync_cfg(64), peers, 25);
        run_to_completion(&mut client, &mut servers);
        assert_eq!(client.phase(), SyncPhase::Declined);
    }

    #[test]
    fn not_behind_at_all_declines_instead_of_stalling() {
        // A cleanly restarted replica at (or past) the cluster's snapshot
        // position must conclude `Declined` from the peers' not-ahead
        // manifests — not wait out its whole sync budget on silence.
        let mut servers = HashMap::new();
        let dirs: Vec<TempDir> = (0..3)
            .map(|i| {
                let (dir, server) = honest_server("syncclient-current");
                servers.insert(ReplicaId(i), server);
                dir
            })
            .collect();
        let _keep = dirs;

        let peers = vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)];
        let mut client = SyncClient::new(sync_cfg(8), peers, 30); // have == snapshot chain_len
        run_to_completion(&mut client, &mut servers);
        assert_eq!(client.phase(), SyncPhase::Declined);
    }

    #[test]
    fn manifest_with_unverifiable_cert_is_rejected() {
        let (dir, mut honest) = honest_server("syncclient-badcert");
        let _keep = dir;
        let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 1 });
        let Some(Message::SnapshotManifest(m)) = honest.handle(&req) else { panic!() };
        let mut bad = m;
        bad.high_cert = Certificate {
            kind: hs1_types::CertKind::Quorum,
            view: View(5),
            slot: hs1_types::Slot(1),
            block: BlockId::test(1),
            sigs: vec![], // no quorum
        };
        let mut client = SyncClient::new(sync_cfg(8), vec![ReplicaId(0), ReplicaId(1)], 1);
        let mut out = Vec::new();
        client.on_message(ReplicaId(0), &Message::SnapshotManifest(bad), Instant::now(), &mut out);
        assert_eq!(client.stats.manifests_rejected, 1);
        assert_eq!(client.stats.manifests_received, 0);
    }

    #[test]
    fn poll_retries_manifest_requests() {
        let mut client = SyncClient::new(sync_cfg(8), vec![ReplicaId(0), ReplicaId(1)], 1);
        let t0 = Instant::now();
        let mut out = Vec::new();
        client.poll(t0, &mut out);
        assert_eq!(out.len(), 2, "initial request to every peer");
        out.clear();
        client.poll(t0, &mut out);
        assert!(out.is_empty(), "no re-request before the retry window");
        client.poll(t0 + Duration::from_secs(1), &mut out);
        assert_eq!(out.len(), 2, "re-requested after the window");
    }
}
