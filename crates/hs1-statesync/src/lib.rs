//! Snapshot state transfer: O(state) catch-up for lagging and fresh
//! replicas (paper §4.2, extended past the local disk).
//!
//! `hs1-storage` recovery ends at the replica's own journal; a replica
//! whose committed chain has fallen far behind a live cluster — or that
//! starts on an empty disk — would otherwise crawl the gap one
//! `FetchBlock` round trip (and one re-execution) per block: O(history)
//! work that grows every run. This crate transfers a verified *snapshot
//! image* instead, so rejoining costs O(state) regardless of chain
//! length, and only the short residual suffix is replayed through the
//! ordinary fetch path.
//!
//! * [`image`] — [`image::SnapshotImage`]: the chunked, CRC-indexed wire
//!   form of a durable checkpoint (materialized KV entries + committed
//!   chain ids).
//! * [`server`] — [`server::SnapshotServer`]: serves manifests and chunks
//!   derived from the newest `hs1-storage` checkpoint.
//! * [`client`] — [`client::SyncClient`]: the requesting state machine.
//!
//! ## Trust model
//!
//! Blocks do not embed state commitments, so a state root cannot be
//! checked against a certificate chain alone; a single peer could serve a
//! perfectly self-consistent image of a state that never existed. The
//! joiner therefore applies the classic BFT read rule (PBFT's stable
//! checkpoint argument): it downloads nothing until **`f + 1` distinct
//! peers advertise byte-identical snapshot identities**
//! ([`hs1_types::message::SnapshotManifestMsg::state_key`]). With at most
//! `f` Byzantine replicas, at least one honest peer stands behind any
//! such root. After that, every chunk is CRC-checked against the agreed
//! manifest and the assembled image's recomputed `state_root` must equal
//! the agreed root — a corrupt or lying chunk is rejected and the
//! download restarts against a different peer of the agreement group.
//! Consensus-position hints (`view`, `high_cert`) are *not* covered by
//! agreement; the client adopts only a certificate that verifies against
//! the deployment registry, and derives the re-entry view from it.

pub mod client;
pub mod image;
pub mod server;

pub use client::{SyncClient, SyncConfig, SyncPhase, SyncStats, SyncedState};
pub use image::{SnapshotImage, DEFAULT_CHUNK_BYTES};
pub use server::SnapshotServer;

use hs1_types::codec::CodecError;

/// State-sync failure (always recoverable by rotating peers or falling
/// back to per-block replay; nothing here is fail-stop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The payload did not decode as a snapshot image.
    Codec(CodecError),
    /// The payload decoded but violated a structural invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::Codec(e) => write!(f, "snapshot payload codec error: {e}"),
            SyncError::Malformed(detail) => write!(f, "malformed snapshot image: {detail}"),
        }
    }
}

impl std::error::Error for SyncError {}

impl From<CodecError> for SyncError {
    fn from(e: CodecError) -> Self {
        SyncError::Codec(e)
    }
}
