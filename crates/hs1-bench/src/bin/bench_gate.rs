//! `bench_gate` — the perf-regression gate. Compares the metrics that
//! `bench_summary` extracted into `bench_results/summary.json` against
//! the committed `BENCH_baseline.json` (repo root), one tolerance per
//! metric, and exits non-zero on any violation.
//!
//! Direction matters: a `higher_is_better` metric (goodput, speedup)
//! fails when the fresh value drops below `value * (1 - tol_frac)`; a
//! latency-style metric fails when it rises above `value * (1 + tol_frac)`.
//! Improvements never fail the gate — they are the cue to ratchet the
//! baseline in the same PR. A baseline metric missing from the summary is
//! a hard failure too, so CI cannot quietly skip regenerating a figure.
//!
//! Both JSON files are emitted by this workspace with one scalar or one
//! metric object per line, and the parser leans on that shape (the
//! workspace is std-only by design, so no JSON dependency). Usage:
//!
//! ```text
//! bench_gate [path/to/BENCH_baseline.json]
//! ```

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn read_or_die(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: read {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// The quoted key at the start of a `"key": ...` line.
fn line_key(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// The number following `"field":` on this line.
fn field_f64(line: &str, field: &str) -> Option<f64> {
    let at = line.find(&format!("\"{field}\":"))?;
    let rest = &line[at + field.len() + 3..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// `"key": <number>` entries inside the summary's `"metrics"` object.
fn summary_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut inside = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with("\"metrics\"") {
            inside = true;
            continue;
        }
        if inside {
            if t.starts_with('}') {
                break;
            }
            if let Some(key) = line_key(line) {
                let val = t
                    .rsplit(':')
                    .next()
                    .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok());
                if let Some(v) = val {
                    out.push((key.to_string(), v));
                }
            }
        }
    }
    out
}

struct BaselineMetric {
    name: String,
    value: f64,
    tol_frac: f64,
    higher_is_better: bool,
}

/// `"key": {"value": V, "tol_frac": T, "higher_is_better": B}` lines.
fn baseline_metrics(text: &str) -> Vec<BaselineMetric> {
    text.lines()
        .filter(|l| l.contains("\"value\""))
        .filter_map(|l| {
            Some(BaselineMetric {
                name: line_key(l)?.to_string(),
                value: field_f64(l, "value")?,
                tol_frac: field_f64(l, "tol_frac")?,
                higher_is_better: l.contains("\"higher_is_better\": true"),
            })
        })
        .collect()
}

fn main() {
    let root = workspace_root();
    let baseline_path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("BENCH_baseline.json"));
    let summary_path = root.join("bench_results").join("summary.json");

    let baseline = baseline_metrics(&read_or_die(&baseline_path));
    if baseline.is_empty() {
        eprintln!("bench_gate: no metrics in {}", baseline_path.display());
        std::process::exit(1);
    }
    let fresh = summary_metrics(&read_or_die(&summary_path));

    println!(
        "bench_gate: {} baseline metrics ({}) vs {}",
        baseline.len(),
        baseline_path.display(),
        summary_path.display(),
    );
    let mut violations = 0usize;
    for b in &baseline {
        let Some((_, got)) = fresh.iter().find(|(k, _)| *k == b.name) else {
            println!("  FAIL {:<26} missing from summary (figure not regenerated?)", b.name);
            violations += 1;
            continue;
        };
        let (bound, ok, cmp) = if b.higher_is_better {
            let floor = b.value * (1.0 - b.tol_frac);
            (floor, *got >= floor, ">=")
        } else {
            let ceil = b.value * (1.0 + b.tol_frac);
            (ceil, *got <= ceil, "<=")
        };
        let verdict = if ok { "  ok" } else { "FAIL" };
        println!(
            "  {verdict} {:<26} fresh {:>12.3} {cmp} bound {:>12.3}  (baseline {:.3} ±{:.0}%)",
            b.name,
            got,
            bound,
            b.value,
            b.tol_frac * 100.0,
        );
        if !ok {
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!("bench_gate: {violations} metric(s) regressed past tolerance");
        std::process::exit(1);
    }
    println!("bench_gate: all metrics within tolerance");
}
