//! `bench_summary` — roll the regenerated figure CSVs up into one
//! machine-readable `bench_results/summary.json` (hand-rolled JSON, no
//! dependencies). CI uploads it next to the CSVs so downstream tooling
//! can check which figures were regenerated and how many data rows each
//! carries without parsing every CSV.
//!
//! The summary also carries **provenance** (git SHA, measurement window)
//! and a flat **metrics** object extracted from the key figures — knee
//! goodput per `fig_knee` lane, quickstart e2e latency means from
//! `fig_latency_breakdown`, ideal parallel-exec speedups at 4 workers
//! from `fig_parallel_exec`. `bench_gate` compares those metrics against
//! the committed `BENCH_baseline.json`, and the same object is written to
//! `bench_results/BENCH_<sha8>.json` so CI can upload a per-commit
//! trajectory of the repo's performance.
//!
//! Exits non-zero if `bench_results/` holds no CSVs or any figure is
//! header-only — an empty figure must fail the job, not ship silently.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("bench_results")
}

/// Commit being measured: `GITHUB_SHA` in CI, `git rev-parse HEAD`
/// locally, `unknown` outside a checkout.
fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Data rows of a figure CSV as split fields, if the figure exists.
fn csv_rows(dir: &Path, name: &str) -> Option<Vec<Vec<String>>> {
    let text = std::fs::read_to_string(dir.join(format!("{name}.csv"))).ok()?;
    Some(
        text.lines()
            .skip(1)
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split(',').map(|f| f.trim().to_string()).collect())
            .collect(),
    )
}

/// Max of `col` (parsed as f64) over rows matching `pick`.
fn col_max(rows: &[Vec<String>], pick: impl Fn(&[String]) -> bool, col: usize) -> Option<f64> {
    rows.iter()
        .filter(|r| pick(r))
        .filter_map(|r| r.get(col)?.parse::<f64>().ok())
        .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
}

/// First value of `col` over rows matching `pick`.
fn col_first(rows: &[Vec<String>], pick: impl Fn(&[String]) -> bool, col: usize) -> Option<f64> {
    rows.iter().filter(|r| pick(r)).find_map(|r| r.get(col)?.parse::<f64>().ok())
}

/// Extract the gate metrics from whichever key figures were regenerated.
/// A missing figure simply omits its metrics — `bench_gate` fails on any
/// baseline metric the summary lacks, so CI cannot skip a figure and
/// still pass the gate.
fn gate_metrics(dir: &Path) -> Vec<(&'static str, f64)> {
    let mut m = Vec::new();
    if let Some(rows) = csv_rows(dir, "fig_knee") {
        // goodput_tps is column 4; lanes keyed by (protocol, lane).
        let lane = |p: &'static str, l: &'static str| {
            move |r: &[String]| {
                r.first().is_some_and(|v| v == p) && r.get(1).is_some_and(|v| v == l)
            }
        };
        if let Some(v) = col_max(&rows, lane("HotStuff-1", "poisson"), 4) {
            m.push(("knee_goodput_hs1_tps", v));
        }
        if let Some(v) = col_max(&rows, lane("HotStuff-2", "poisson"), 4) {
            m.push(("knee_goodput_hs2_tps", v));
        }
        if let Some(v) = col_max(&rows, lane("HotStuff-1", "churn"), 4) {
            m.push(("knee_goodput_churn_tps", v));
        }
    }
    if let Some(rows) = csv_rows(dir, "fig_latency_breakdown") {
        // e2e_ms is the last column (8); mean rows only.
        let mean = |p: &'static str| {
            move |r: &[String]| {
                r.first().is_some_and(|v| v == p) && r.get(1).is_some_and(|v| v == "mean")
            }
        };
        if let Some(v) = col_first(&rows, mean("HotStuff-1"), 8) {
            m.push(("e2e_mean_ms_hs1", v));
        }
        if let Some(v) = col_first(&rows, mean("HotStuff-2"), 8) {
            m.push(("e2e_mean_ms_hs2", v));
        }
    }
    if let Some(rows) = csv_rows(dir, "fig_parallel_exec") {
        // ideal_speedup is column 7; pick the 4-worker row per workload.
        let at4 = |w: &'static str| {
            move |r: &[String]| {
                r.first().is_some_and(|v| v == w) && r.get(1).is_some_and(|v| v == "4")
            }
        };
        if let Some(v) = col_first(&rows, at4("ycsb-uniform"), 7) {
            m.push(("ideal_speedup4_uniform", v));
        }
        if let Some(v) = col_first(&rows, at4("ycsb-zipfian"), 7) {
            m.push(("ideal_speedup4_zipfian", v));
        }
        if let Some(v) = col_first(&rows, at4("tpcc"), 7) {
            m.push(("ideal_speedup4_tpcc", v));
        }
    }
    if let Some(rows) = csv_rows(dir, "fig_net_knee") {
        // Wall-clock transport A/B from the net-perf job. These are
        // informational (host-speed dependent, so deliberately absent
        // from BENCH_baseline.json); the floor assertion lives inside
        // `net_loadgen` itself. Columns: leg(0), backend(1), fps(5),
        // goodput_tps(6), frames_per_call(9).
        let bcast = |b: &'static str| {
            move |r: &[String]| {
                r.first().is_some_and(|v| v == "mesh_bcast") && r.get(1).is_some_and(|v| v == b)
            }
        };
        let threads_fps = col_first(&rows, bcast("threads"), 5);
        let reactor_fps = col_first(&rows, bcast("reactor"), 5);
        if let (Some(t), Some(r)) = (threads_fps, reactor_fps) {
            m.push(("net_bcast_reactor_fps", r));
            if t > 0.0 {
                m.push(("net_bcast_speedup", r / t));
            }
        }
        if let Some(v) = col_first(&rows, bcast("reactor"), 9) {
            m.push(("net_bcast_frames_per_call", v));
        }
        if let Some(v) = col_max(&rows, |r: &[String]| r.first().is_some_and(|v| v == "cluster"), 6)
        {
            m.push(("net_cluster_goodput_max_tps", v));
        }
    }
    m
}

/// Escape a string for a JSON literal (the inputs are CSV identifiers,
/// but stay correct for arbitrary bytes anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let dir = results_dir();
    let mut csvs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            eprintln!("no bench_results dir at {}: {e}", dir.display());
            std::process::exit(1);
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    csvs.sort();
    if csvs.is_empty() {
        eprintln!("no figure CSVs in {}", dir.display());
        std::process::exit(1);
    }

    let mut figures = Vec::new();
    for path in &csvs {
        let name = path.file_stem().unwrap_or_default().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("read {}: {e}", path.display());
            std::process::exit(1);
        });
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let rows = lines.filter(|l| !l.trim().is_empty()).count();
        if rows == 0 {
            eprintln!("{name}: header-only CSV — the figure is empty");
            std::process::exit(1);
        }
        let columns: Vec<String> = header.split(',').map(|c| json_str(c.trim())).collect();
        figures.push(format!(
            "    {{\"name\": {}, \"rows\": {rows}, \"columns\": [{}]}}",
            json_str(&name),
            columns.join(", "),
        ));
    }

    let sha = git_sha();
    let bench_seconds = std::env::var("HS1_BENCH_SECONDS").unwrap_or_else(|_| "1.0".to_string());
    let provenance = format!(
        "  \"provenance\": {{\"git_sha\": {}, \"bench_seconds\": {}}}",
        json_str(&sha),
        json_str(&bench_seconds),
    );
    let metrics = gate_metrics(&dir);
    let metrics_json = format!(
        "  \"metrics\": {{\n{}\n  }}",
        metrics
            .iter()
            .map(|(k, v)| format!("    {}: {v}", json_str(k)))
            .collect::<Vec<_>>()
            .join(",\n"),
    );

    let json = format!(
        "{{\n  \"figures\": [\n{}\n  ],\n  \"count\": {},\n{provenance},\n{metrics_json}\n}}\n",
        figures.join(",\n"),
        figures.len(),
    );
    let out = dir.join("summary.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("write {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{json}");
    println!("-> wrote {}", out.display());

    // Per-commit trajectory artifact: provenance + metrics only, named by
    // the short SHA so successive CI runs accumulate a comparable series.
    let short = &sha[..sha.len().min(8)];
    let traj = format!("{{\n{provenance},\n{metrics_json}\n}}\n");
    let traj_path = dir.join(format!("BENCH_{short}.json"));
    if let Err(e) = std::fs::write(&traj_path, &traj) {
        eprintln!("write {}: {e}", traj_path.display());
        std::process::exit(1);
    }
    println!("-> wrote {}", traj_path.display());
}
