//! `bench_summary` — roll the regenerated figure CSVs up into one
//! machine-readable `bench_results/summary.json` (hand-rolled JSON, no
//! dependencies). CI uploads it next to the CSVs so downstream tooling
//! can check which figures were regenerated and how many data rows each
//! carries without parsing every CSV.
//!
//! Exits non-zero if `bench_results/` holds no CSVs or any figure is
//! header-only — an empty figure must fail the job, not ship silently.

use std::fmt::Write as _;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("bench_results")
}

/// Escape a string for a JSON literal (the inputs are CSV identifiers,
/// but stay correct for arbitrary bytes anyway).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() {
    let dir = results_dir();
    let mut csvs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            eprintln!("no bench_results dir at {}: {e}", dir.display());
            std::process::exit(1);
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    csvs.sort();
    if csvs.is_empty() {
        eprintln!("no figure CSVs in {}", dir.display());
        std::process::exit(1);
    }

    let mut figures = Vec::new();
    for path in &csvs {
        let name = path.file_stem().unwrap_or_default().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("read {}: {e}", path.display());
            std::process::exit(1);
        });
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let rows = lines.filter(|l| !l.trim().is_empty()).count();
        if rows == 0 {
            eprintln!("{name}: header-only CSV — the figure is empty");
            std::process::exit(1);
        }
        let columns: Vec<String> = header.split(',').map(|c| json_str(c.trim())).collect();
        figures.push(format!(
            "    {{\"name\": {}, \"rows\": {rows}, \"columns\": [{}]}}",
            json_str(&name),
            columns.join(", "),
        ));
    }

    let json = format!(
        "{{\n  \"figures\": [\n{}\n  ],\n  \"count\": {}\n}}\n",
        figures.join(",\n"),
        figures.len(),
    );
    let out = dir.join("summary.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("write {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{json}");
    println!("-> wrote {}", out.display());
}
