//! Shared plumbing for the figure-regeneration benches.
//!
//! Every bench target prints the paper's series to stdout and appends a
//! CSV to `bench_results/`. Run lengths scale with the
//! `HS1_BENCH_SECONDS` environment variable (default 1.0 simulated
//! seconds of measurement per configuration — the paper uses 120 s runs;
//! sim time only affects statistical noise, not shape).

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use hs1_sim::{Report, Scenario};

/// Measurement window in simulated seconds (`HS1_BENCH_SECONDS`).
pub fn sim_seconds() -> f64 {
    std::env::var("HS1_BENCH_SECONDS").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Apply the standard measurement window to a scenario.
pub fn standard(s: Scenario) -> Scenario {
    s.sim_seconds(sim_seconds()).warmup_seconds(0.4)
}

/// Collects rows and writes them to `bench_results/<name>.csv`.
pub struct FigureSink {
    name: &'static str,
    rows: Vec<String>,
}

impl FigureSink {
    pub fn new(name: &'static str, title: &str) -> FigureSink {
        // Data rows are prefixed with the sweep tag; the header must
        // carry the same leading column or every field parses one off.
        FigureSink::with_header(name, title, &format!("sweep,{}", Report::csv_header()))
    }

    /// A sink with a custom CSV header, for harnesses whose rows are not
    /// simulator [`Report`]s (e.g. `fig_parallel_exec` measures the
    /// ledger executor directly).
    pub fn with_header(name: &'static str, title: &str, header: &str) -> FigureSink {
        println!("=== {name}: {title} ===");
        FigureSink { name, rows: vec![header.to_string()] }
    }

    /// Record a run: print the human row, log the CSV row tagged with the
    /// sweep variable. Exits non-zero on any invariant violation — bench
    /// output must never scroll past a safety regression as advisory.
    pub fn record(&mut self, sweep: &str, report: &Report) {
        println!("  [{sweep:>24}] {}", report.row());
        report.ensure_invariants(&format!("{} [{sweep}]", self.name));
        self.rows.push(format!("{sweep},{}", report.csv_row()));
    }

    /// Record a pre-formatted CSV row (custom-header sinks).
    pub fn record_raw(&mut self, row: String) {
        println!("  {row}");
        self.rows.push(row);
    }

    /// Write the CSV (missing dir is created). A harness that emitted no
    /// data rows is a broken figure — fail the run loudly instead of
    /// uploading a header-only CSV that looks like a regenerated figure.
    pub fn finish(self) {
        assert!(
            self.rows.len() > 1,
            "figure harness {} emitted no rows — the figure would be silently empty",
            self.name
        );
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.name));
        if let Ok(mut f) = fs::File::create(&path) {
            for row in &self.rows {
                let _ = writeln!(f, "{row}");
            }
            println!("  -> wrote {}", path.display());
        }
    }
}

fn results_dir() -> PathBuf {
    // Workspace root when run via cargo bench; fall back to cwd.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.join("bench_results")
}
