//! Figure 9(a–d, f–i): throughput and latency under injected message
//! delays δ ∈ {1, 5, 50, 500} ms on k ∈ {0, f, f+1, n−f−1, n−f, n}
//! impacted replicas (n = 31, f = 10).

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig9_delay", "injected message delays (Fig 9a-d,f-i)");
    let n = 31;
    let ks = [0usize, 10, 11, 20, 21, 31];
    for delay_ms in [1u64, 5, 50, 500] {
        for &k in &ks {
            for p in ProtocolKind::EVALUATED {
                // View timers must exceed the injected delay for liveness
                // (the paper tunes timeouts per deployment).
                let timer = SimDuration::from_millis((4 * delay_ms).max(10));
                let report = standard(
                    Scenario::new(p)
                        .replicas(n)
                        .batch_size(100)
                        .clients(200)
                        .view_timer(timer)
                        .inject_delay(k, SimDuration::from_millis(delay_ms)),
                )
                .run();
                sink.record(&format!("d={delay_ms}ms k={k} {}", p.name()), &report);
            }
        }
    }
    sink.finish();
}
