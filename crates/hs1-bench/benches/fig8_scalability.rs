//! Figure 8(a,b): throughput and client latency vs number of replicas
//! (n ∈ {4, 16, 32, 64}, YCSB, batch 100).

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};

fn main() {
    let mut sink = FigureSink::new("fig8_scalability", "throughput/latency vs replicas (Fig 8a,b)");
    for n in [4usize, 16, 32, 64] {
        for p in ProtocolKind::EVALUATED {
            let report = standard(Scenario::new(p).replicas(n).batch_size(100).clients(200)).run();
            sink.record(&format!("n={n} {}", p.name()), &report);
        }
    }
    sink.finish();
}
