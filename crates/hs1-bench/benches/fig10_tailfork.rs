//! Figure 10(e,f): tail-forking attack — throughput and latency vs the
//! number of faulty leaders (0..f, n = 32). A faulty leader of view v
//! ignores the certificate of view v−1 and extends the certificate of
//! view v−2 (Example 6.2); slotted HotStuff-1's carry blocks bound the
//! damage to the attacker's own view.

use hs1_bench::{standard, FigureSink};
use hs1_core::Fault;
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig10_tailfork", "tail-forking attack (Fig 10e,f)");
    for faulty in [0usize, 1, 4, 7, 10] {
        for p in ProtocolKind::EVALUATED {
            let report = standard(
                Scenario::new(p)
                    .replicas(32)
                    .batch_size(100)
                    .clients(400)
                    .view_timer(SimDuration::from_millis(10))
                    .faulty_leaders(faulty, Fault::TailFork),
            )
            .run();
            sink.record(&format!("faulty={faulty} {}", p.name()), &report);
        }
    }
    sink.finish();
}
