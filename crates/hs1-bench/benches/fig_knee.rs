//! Offered-load knee curves: open-loop saturation sweep, HS1 vs HS2 at
//! the quickstart configuration (n=4, batch 32).
//!
//! Unlike the closed-loop figures (where clients reissue on finality and
//! throughput self-limits), this harness drives each protocol with a
//! seed-deterministic Poisson arrival process at a fixed offered load and
//! sweeps that load past saturation. Below the knee, goodput tracks the
//! offer and latency is flat; past it, the bounded mempool sheds load
//! (drop rate > 0), goodput plateaus at the service rate, and p99 latency
//! diverges as queue wait dominates. A third lane re-runs HotStuff-1
//! under the zipfian hot-key-churn workload — the conflict-heavy worst
//! case for the speculative execution path.
//!
//! The harness also enforces the determinism contract on every lane's
//! mid-sweep point: two same-seed runs must produce byte-identical CSV
//! rows and equal fingerprints, and attaching a recording observer must
//! not change the fingerprint.

use hs1_bench::FigureSink;
use hs1_obs::{Clock, Obs};
use hs1_sim::{OpenLoop, Report, Scenario, WorkloadKind};
use hs1_types::ProtocolKind;

const SEED: u64 = 42;

/// Offered loads swept at the quickstart config, tx/s. The batch-32
/// service rate sits near 50k tx/s, so the last points are past
/// saturation.
const QUICKSTART_LOADS: [f64; 8] =
    [4_000.0, 8_000.0, 16_000.0, 24_000.0, 32_000.0, 40_000.0, 48_000.0, 64_000.0];

/// Loads for the batch-256 worst-case lane, whose service rate is much
/// higher (bigger batches amortize per-block costs).
const CHURN_LOADS: [f64; 8] =
    [16_000.0, 32_000.0, 64_000.0, 96_000.0, 128_000.0, 192_000.0, 256_000.0, 384_000.0];

struct Lane {
    protocol: ProtocolKind,
    name: &'static str,
    workload: Option<WorkloadKind>,
    batch: usize,
    workers: usize,
    loads: [f64; 8],
}

/// The two quickstart lanes give the headline HS1-vs-HS2 knee. The
/// `churn` lane is the parallel-execution worst case: batch 256 (above
/// `PAR_MIN_BATCH`, so the conflict-partitioned executor engages) on a
/// 4-worker CPU model under the hot-key-churn workload, whose zipfian
/// contention serializes execution waves. At quickstart batch 32 the
/// parallel term never engages and workload keys cost nothing, so a
/// batch-32 churn lane would be byte-identical to the poisson lane.
const LANES: [Lane; 3] = [
    Lane {
        protocol: ProtocolKind::HotStuff1,
        name: "poisson",
        workload: None,
        batch: 32,
        workers: 1,
        loads: QUICKSTART_LOADS,
    },
    Lane {
        protocol: ProtocolKind::HotStuff2,
        name: "poisson",
        workload: None,
        batch: 32,
        workers: 1,
        loads: QUICKSTART_LOADS,
    },
    Lane {
        protocol: ProtocolKind::HotStuff1,
        name: "churn",
        workload: Some(WorkloadKind::YcsbChurn),
        batch: 256,
        workers: 4,
        loads: CHURN_LOADS,
    },
];

fn scenario(lane: &Lane, tps: f64, obs: Option<Obs>) -> Scenario {
    let mut s = Scenario::new(lane.protocol)
        .replicas(4)
        .batch_size(lane.batch)
        .exec_workers(lane.workers)
        .seed(SEED)
        .open_loop(OpenLoop::poisson(tps));
    if let Some(w) = lane.workload {
        s = s.workload(w);
    }
    if let Some(obs) = obs {
        s = s.with_observer(obs);
    }
    hs1_bench::standard(s)
}

fn run(lane: &Lane, tps: f64) -> Report {
    let r = scenario(lane, tps, None).run();
    r.ensure_invariants(&format!("fig_knee [{} {} @{tps}]", lane.protocol.name(), lane.name));
    r
}

fn csv_row(lane: &Lane, tps: f64, r: &Report) -> String {
    format!(
        "{},{},{:.0},{:.1},{:.1},{:.3},{:.3},{:.3},{},{},{},{:.4},{}",
        lane.protocol.name(),
        lane.name,
        tps,
        r.offered_tps(),
        r.throughput_tps,
        r.mean_latency_ms,
        r.p50_latency_ms,
        r.p99_latency_ms,
        r.offered_txs,
        r.committed_txs,
        r.admission_drops,
        r.drop_rate(),
        r.requests_deduped,
    )
}

/// Determinism spot-check at one load point: same seed twice must be
/// byte-identical, and a recording observer must be pure.
fn check_determinism(lane: &Lane, tps: f64, first: &Report, first_row: &str) {
    let again = run(lane, tps);
    assert_eq!(
        first.fingerprint,
        again.fingerprint,
        "{} {}: same seed, same fingerprint",
        lane.protocol.name(),
        lane.name
    );
    assert_eq!(
        first_row,
        csv_row(lane, tps, &again),
        "{} {}: same seed, byte-identical CSV row",
        lane.protocol.name(),
        lane.name
    );
    let (obs, _rec) = Obs::recording(Clock::manual());
    let watched = scenario(lane, tps, Some(obs)).run();
    assert_eq!(
        first.fingerprint,
        watched.fingerprint,
        "{} {}: attaching an observer changed the run",
        lane.protocol.name(),
        lane.name
    );
}

/// Knee-shape acceptance: goodput tracks the offer below saturation,
/// plateaus past it while the admission bound sheds load, and tail
/// latency diverges.
fn check_knee(lane: &Lane, points: &[(f64, Report)]) {
    let label = format!("{} {}", lane.protocol.name(), lane.name);
    let first = &points.first().expect("sweep is non-empty").1;
    let last = &points.last().expect("sweep is non-empty").1;
    let peak_goodput = points.iter().map(|(_, r)| r.throughput_tps).fold(0.0_f64, f64::max);

    // Below the knee: the lightest load finalizes essentially everything
    // it offers, with no backpressure.
    assert_eq!(first.admission_drops, 0, "{label}: no drops at the lightest load");
    assert!(
        first.throughput_tps > first.offered_tps() * 0.8,
        "{label}: goodput tracks offer below the knee ({:.0} of {:.0} tx/s)",
        first.throughput_tps,
        first.offered_tps()
    );

    // Past the knee: the bounded mempool sheds load and goodput plateaus
    // well short of the offer.
    assert!(last.admission_drops > 0, "{label}: backpressure engaged past saturation");
    assert!(
        last.throughput_tps < last.offered_tps() * 0.95,
        "{label}: goodput plateaus below the offer past saturation ({:.0} vs {:.0})",
        last.throughput_tps,
        last.offered_tps()
    );
    assert!(
        peak_goodput < lane.loads[lane.loads.len() - 1] * 0.95,
        "{label}: the service rate saturates below the top offered load"
    );

    // Tail divergence: p99 past saturation dwarfs p99 below it.
    assert!(
        last.p99_latency_ms > first.p99_latency_ms * 2.0,
        "{label}: p99 diverges past the knee ({:.2} ms -> {:.2} ms)",
        first.p99_latency_ms,
        last.p99_latency_ms
    );
}

fn main() {
    let mut sink = FigureSink::with_header(
        "fig_knee",
        "offered-load knee curves, HS1 vs HS2 (n=4, batch 32, open-loop Poisson)",
        "protocol,lane,target_tps,offered_tps,goodput_tps,mean_ms,p50_ms,p99_ms,\
         offered,finalized,drops,drop_rate,deduped",
    );
    for lane in &LANES {
        let mut points = Vec::new();
        for (i, &tps) in lane.loads.iter().enumerate() {
            let r = run(lane, tps);
            let row = csv_row(lane, tps, &r);
            println!(
                "  [{:>9} {:>7} @{:>6.0}] goodput={:>8.0} tx/s  p50/p99={:>7.2}/{:>8.2} ms  drops={} ({:.1}%)",
                lane.protocol.name(),
                lane.name,
                tps,
                r.throughput_tps,
                r.p50_latency_ms,
                r.p99_latency_ms,
                r.admission_drops,
                r.drop_rate() * 100.0,
            );
            // Mid-sweep determinism spot-check (once per lane, cheap).
            if i == lane.loads.len() / 2 {
                check_determinism(lane, tps, &r, &row);
            }
            sink.record_raw(row);
            points.push((tps, r));
        }
        check_knee(lane, &points);
    }
    sink.finish();
}
