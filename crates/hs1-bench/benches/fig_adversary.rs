//! Adversary absorption cost: throughput/latency of the three HotStuff-1
//! engines with one Byzantine backup playing each in-model strategy,
//! against the honest baseline. The protocols must *absorb* every ≤ f
//! adversary (the oracles gate each run), so this figure measures what
//! the absorption costs — equivocal votes burn leader tally work,
//! withheld votes shrink the quorum margin, stale certificates churn the
//! pacemaker, and corrupt fetch bodies delay catch-up after every loss.

use hs1_adversary::AdversaryStrategy;
use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};

fn main() {
    let mut sink = FigureSink::new(
        "fig_adversary",
        "throughput/latency vs backup adversary strategy (1 of 4 replicas Byzantine)",
    );
    let engines =
        [ProtocolKind::HotStuff1Basic, ProtocolKind::HotStuff1, ProtocolKind::HotStuff1Slotted];
    for p in engines {
        let base = standard(Scenario::new(p).replicas(4).batch_size(32).clients(64)).seed(17);
        let report = base.run();
        sink.record(&format!("honest {}", p.name()), &report);
        for strategy in AdversaryStrategy::IN_MODEL {
            let s = standard(Scenario::new(p).replicas(4).batch_size(32).clients(64))
                .seed(17)
                .with_adversary(1, strategy);
            let report = s.run();
            sink.record(&format!("{} {}", strategy.name(), p.name()), &report);
        }
    }
    sink.finish();
}
