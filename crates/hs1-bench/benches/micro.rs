//! Criterion microbenchmarks for the substrates: crypto primitives, wire
//! codec, speculative store, and workload generators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use hs1_crypto::{hmac_sha256, sha256, KeyPair, PublicKeyRegistry};
use hs1_ledger::{ExecConfig, ExecutionEngine, KvStore, SpeculativeStore};
use hs1_types::codec::{Decode, Encode};
use hs1_types::message::{Message, ProposeMsg};
use hs1_types::{Block, BlockId, Certificate, ReplicaId, Slot, SplitMix64, Transaction, View};
use hs1_workloads::{Workload, YcsbGen, Zipfian};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xabu8; 1024];
    g.bench_function("sha256_1k", |b| b.iter(|| sha256(black_box(&data))));
    g.bench_function("hmac_1k", |b| b.iter(|| hmac_sha256(b"key", black_box(&data))));
    let kp = KeyPair::derive(0, 1);
    let reg = PublicKeyRegistry::derive(0, 4);
    let sig = kp.sign(1, b"message");
    g.bench_function("sign", |b| b.iter(|| kp.sign(1, black_box(b"message"))));
    g.bench_function("verify", |b| b.iter(|| reg.verify(1, 1, black_box(b"message"), &sig)));
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let txs: Vec<Transaction> = (0..100).map(|i| Transaction::kv_write(1, i, i, i)).collect();
    let block = Arc::new(Block::new(ReplicaId(0), View(1), Slot(1), Certificate::genesis(), txs));
    let msg = Message::Propose(ProposeMsg { block, commit_cert: None });
    let bytes = msg.encoded();
    g.bench_function("encode_propose_100tx", |b| b.iter(|| black_box(&msg).encoded()));
    g.bench_function("decode_propose_100tx", |b| {
        b.iter(|| Message::decode_exact(black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.bench_function("speculate_rollback_100w", |b| {
        b.iter_batched(
            || SpeculativeStore::new(KvStore::with_records(600_000)),
            |mut s| {
                s.begin_speculation(BlockId::test(1));
                for k in 0..100 {
                    s.put_speculative(k, k);
                }
                s.rollback_all()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("execute_block_100tx", |b| {
        let txs: Vec<Transaction> = (0..100).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let mut tag = 0u64;
        b.iter(|| {
            tag += 1;
            e.execute_committed(BlockId::test(tag), black_box(&txs))
        })
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    let zipf = Zipfian::ycsb_default(600_000);
    let mut rng = SplitMix64::new(1);
    g.bench_function("zipfian_sample", |b| b.iter(|| zipf.sample(black_box(&mut rng))));
    let mut ycsb = YcsbGen::paper_default(1);
    let mut seq = 0u64;
    g.bench_function("ycsb_next_tx", |b| {
        b.iter(|| {
            seq += 1;
            ycsb.next_tx(hs1_types::ClientId(1), seq)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_codec, bench_store, bench_workloads);
criterion_main!(benches);
