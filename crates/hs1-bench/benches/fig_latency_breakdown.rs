//! Per-stage latency attribution: where does a transaction's end-to-end
//! latency go, HotStuff-1 vs HotStuff-2, at the quickstart configuration
//! (n=4, batch 32, 64 clients)?
//!
//! The harness runs each protocol once under a recording observer and
//! post-processes the deterministic trace into a telescoping per-block
//! decomposition:
//!
//! ```text
//! t0 submit    mean client submit time of the block's transactions
//! t1 propose   the leader broadcast the block (`proposed` stage)
//! t2 receive   the quorum-th replica accepted the proposal (`received`)
//! t3 certify   the quorum-th replica speculated (HS1) / committed (HS2)
//! t4 respond   the quorum-th response reached the client (`responded`)
//! t5 final     the client's quorum completed (`finality` point)
//! ```
//!
//! Each timestamp is clamped monotone into `[t0, t5]`, so the five
//! segment columns sum *exactly* to the end-to-end latency — the harness
//! asserts the ±5% acceptance bound on every emitted row anyway, as a
//! guard against future drift in the decomposition. `mean` rows average
//! all fully-observed blocks; `p99` rows average the slowest 1% cohort
//! (by e2e), attributing *tail* latency to stages the same way.

use std::collections::BTreeMap;

use hs1_bench::FigureSink;
use hs1_obs::{Clock, EventKind, Obs, Stage};
use hs1_sim::Scenario;
use hs1_types::ProtocolKind;

/// n = 4, f = 1: engines and clients both act on 3-of-4 quorums.
const QUORUM: usize = 3;

/// Raw per-block observations pulled out of the trace.
#[derive(Default)]
struct BlockObs {
    submit_mean: Option<u64>,
    proposed: Option<u64>,
    received: Vec<u64>,
    speculated: Vec<u64>,
    committed: Vec<u64>,
    responded: Vec<u64>,
    finality: Option<u64>,
}

/// The k-th smallest timestamp (1-based), if at least k were observed.
fn kth(mut at: Vec<u64>, k: usize) -> Option<u64> {
    if at.len() < k {
        return None;
    }
    at.sort_unstable();
    Some(at[k - 1])
}

/// Telescoped timestamps `[t0..t5]` for one block, clamped monotone into
/// `[t0, t5]` so segment sums telescope exactly to `t5 - t0`.
fn telescope(b: BlockObs) -> Option<[u64; 6]> {
    let t0 = b.submit_mean?;
    let t5 = b.finality?;
    if t5 < t0 {
        return None;
    }
    // HS1 responds after speculation; the baselines only after commit.
    // Prefer the speculation quorum when the protocol produced one.
    let certify = kth(b.speculated.clone(), QUORUM).or(kth(b.committed, QUORUM))?;
    let raw = [t0, b.proposed?, kth(b.received, QUORUM)?, certify, kth(b.responded, QUORUM)?, t5];
    let mut t = [t0; 6];
    for i in 1..6 {
        t[i] = raw[i].clamp(t[i - 1], t5);
    }
    Some(t)
}

/// Run one protocol under a recording observer and return the telescoped
/// timestamps of every fully-observed block.
fn run(protocol: ProtocolKind) -> Vec<[u64; 6]> {
    let (obs, rec) = Obs::recording(Clock::manual());
    let scenario = hs1_bench::standard(
        Scenario::new(protocol).replicas(4).batch_size(32).clients(64).with_observer(obs),
    );
    let report = scenario.run();
    report.ensure_invariants(&format!("fig_latency_breakdown [{}]", protocol.name()));
    let rec = rec.lock().expect("recorder");

    let mut blocks: BTreeMap<u64, BlockObs> = BTreeMap::new();
    for ev in rec.trace() {
        match ev.kind {
            EventKind::Stage { stage, block } => {
                let b = blocks.entry(block).or_default();
                match stage {
                    Stage::Proposed => {
                        b.proposed = Some(b.proposed.map_or(ev.at, |p| p.min(ev.at)))
                    }
                    Stage::Received => b.received.push(ev.at),
                    Stage::Speculated => b.speculated.push(ev.at),
                    Stage::Committed => b.committed.push(ev.at),
                    Stage::Responded => b.responded.push(ev.at),
                    Stage::Voted => {}
                }
            }
            EventKind::Point { name: "finality", key, .. } => {
                blocks.entry(key).or_default().finality = Some(ev.at);
            }
            EventKind::Point { name: "submit_mean", key, value } => {
                blocks.entry(key).or_default().submit_mean = Some(value);
            }
            _ => {}
        }
    }
    blocks.into_values().filter_map(telescope).collect()
}

/// Mean of each of the five segments (ms) plus the e2e mean, over a cohort.
fn segment_means(cohort: &[[u64; 6]]) -> [f64; 6] {
    let n = cohort.len() as f64;
    let mut out = [0.0; 6];
    for t in cohort {
        for i in 0..5 {
            out[i] += (t[i + 1] - t[i]) as f64 / 1e6 / n;
        }
        out[5] += (t[5] - t[0]) as f64 / 1e6 / n;
    }
    out
}

fn emit(sink: &mut FigureSink, protocol: ProtocolKind, stat: &str, cohort: &[[u64; 6]]) {
    let m = segment_means(cohort);
    let sum: f64 = m[..5].iter().sum();
    // The ISSUE acceptance bound; exact by construction of `telescope`.
    assert!(
        (sum - m[5]).abs() <= 0.05 * m[5].max(f64::EPSILON),
        "{} {stat}: segments sum to {sum:.3}ms but e2e is {:.3}ms",
        protocol.name(),
        m[5],
    );
    sink.record_raw(format!(
        "{},{stat},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
        protocol.name(),
        cohort.len(),
        m[0],
        m[1],
        m[2],
        m[3],
        m[4],
        m[5],
    ));
}

fn main() {
    let mut sink = FigureSink::with_header(
        "fig_latency_breakdown",
        "per-stage latency attribution, HS1 vs HS2 (n=4, batch 32, 64 clients)",
        "protocol,stat,blocks,submit_to_propose_ms,propose_to_receive_ms,\
         receive_to_certify_ms,certify_to_respond_ms,respond_to_final_ms,e2e_ms",
    );
    for protocol in [ProtocolKind::HotStuff1, ProtocolKind::HotStuff2] {
        let mut all = run(protocol);
        assert!(!all.is_empty(), "{}: no fully-observed blocks in trace", protocol.name());
        emit(&mut sink, protocol, "mean", &all);
        // Tail cohort: the slowest 1% of blocks by e2e (at least one).
        all.sort_by_key(|t| t[5] - t[0]);
        let tail = (all.len() / 100).max(1);
        emit(&mut sink, protocol, "p99", &all[all.len() - tail..]);
    }
    sink.finish();
}
