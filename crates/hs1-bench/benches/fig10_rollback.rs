//! Figure 10(g,h): rollback attack — throughput and latency vs the number
//! of faulty leaders (0..f, n = 32), each equivocating to force up to f
//! correct replicas to speculate on a doomed branch and roll back
//! (Appendix A.2). Slotted HotStuff-1 confines the attack to the last
//! slot of the previous view.

use hs1_bench::{standard, FigureSink};
use hs1_core::Fault;
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::{ReplicaId, SimDuration};

fn main() {
    let mut sink = FigureSink::new("fig10_rollback", "rollback attack (Fig 10g,h)");
    let n = 32usize;
    let f = 10usize;
    for faulty in [0usize, 1, 4, 7, 10] {
        for p in [ProtocolKind::HotStuff2, ProtocolKind::HotStuff1, ProtocolKind::HotStuff1Slotted]
        {
            // Victims: the f correct replicas with the highest ids (never
            // overlapping the faulty leader set, which starts at id 1).
            let victims: Vec<ReplicaId> = ((n - f)..n).map(|i| ReplicaId(i as u32)).collect();
            let report = standard(
                Scenario::new(p)
                    .replicas(n)
                    .batch_size(100)
                    .clients(400)
                    .view_timer(SimDuration::from_millis(10))
                    .faulty_leaders(faulty, Fault::RollbackAttack { victims }),
            )
            .run();
            sink.record(&format!("faulty={faulty} {}", p.name()), &report);
        }
    }
    sink.finish();
}
