//! Commit critical-path attribution: for every committed block, which
//! replica bounded each hop of the submit → finality chain, HotStuff-1
//! vs HotStuff-2, at the quickstart configuration (n=4, batch 32,
//! 64 clients)?
//!
//! The harness runs each protocol once under a recording observer and
//! feeds the deterministic trace through
//! [`hs1_obs::critical_path::analyze`] — the same telescoped
//! decomposition `fig_latency_breakdown` pins, extended with per-hop
//! actor attribution. Two invariants are asserted on every run:
//!
//! - **Exact telescoping.** Per block, the five hop durations sum to the
//!   end-to-end latency *as u64s* — not within a tolerance. The cohort
//!   totals therefore telescope too, so this figure's hop columns add up
//!   to `fig_latency_breakdown`'s e2e column by construction (both
//!   benches run the identical deterministic scenario and filter to the
//!   same fully-observed cohort).
//! - **The one-phase advantage lands in the certify hop.** HotStuff-1
//!   responds at the (n−f)-th speculation vote; HotStuff-2 only after
//!   commit. The HS1 mean `receive_to_certify` hop must be strictly
//!   smaller than HS2's.
//!
//! `mean` rows average all fully-observed blocks; `p99` rows average the
//! slowest 1% cohort by e2e. `slowest_hop`/`slowest_actor` name the hop
//! with the largest cohort mean and the replica that most often closed
//! it — the cluster-wide answer to "who is the commit bottleneck?".

use std::collections::BTreeMap;

use hs1_bench::FigureSink;
use hs1_obs::critical_path::{self, BlockPath, HARNESS_ACTOR};
use hs1_obs::{Clock, Obs, OwnedEvent, HOP_NAMES};
use hs1_sim::Scenario;
use hs1_types::ProtocolKind;

/// n = 4, f = 1: engines and clients both act on 3-of-4 quorums.
const QUORUM: usize = 3;

/// Run one protocol under a recording observer and return the critical
/// path of every fully-observed block (same cohort as
/// `fig_latency_breakdown`: blocks with a client submission point).
fn run(protocol: ProtocolKind) -> Vec<BlockPath> {
    let (obs, rec) = Obs::recording(Clock::manual());
    let scenario = hs1_bench::standard(
        Scenario::new(protocol).replicas(4).batch_size(32).clients(64).with_observer(obs),
    );
    let report = scenario.run();
    report.ensure_invariants(&format!("fig_critical_path [{}]", protocol.name()));
    let rec = rec.lock().expect("recorder");
    let events: Vec<OwnedEvent> = rec.trace().iter().map(OwnedEvent::from_event).collect();
    let paths = critical_path::analyze(&events, QUORUM);
    for p in &paths {
        let hop_sum: u64 = (0..5).map(|i| p.hop_ns(i)).sum();
        assert_eq!(
            hop_sum,
            p.e2e_ns(),
            "{}: block {:#018x} hops do not telescope exactly",
            protocol.name(),
            p.block,
        );
    }
    paths.into_iter().filter(|p| p.has_submit).collect()
}

/// Cohort hop means in ms (`out[0..5]`) plus the e2e mean (`out[5]`).
fn hop_means(cohort: &[BlockPath]) -> [f64; 6] {
    let n = cohort.len() as f64;
    let mut out = [0.0; 6];
    for p in cohort {
        for (i, slot) in out.iter_mut().take(5).enumerate() {
            *slot += p.hop_ns(i) as f64 / 1e6 / n;
        }
        out[5] += p.e2e_ns() as f64 / 1e6 / n;
    }
    out
}

/// The hop with the largest cohort mean, and the actor that most often
/// closed it (ties break toward the smaller actor id).
fn bottleneck(cohort: &[BlockPath], means: &[f64; 6]) -> (usize, u32) {
    let hop = (0..5).max_by(|&a, &b| means[a].total_cmp(&means[b]).then(b.cmp(&a))).unwrap_or(0);
    let mut by_actor: BTreeMap<u32, usize> = BTreeMap::new();
    for p in cohort {
        *by_actor.entry(p.actors[hop]).or_default() += 1;
    }
    let actor = by_actor
        .into_iter()
        .max_by(|(aa, ac), (ba, bc)| ac.cmp(bc).then(ba.cmp(aa)))
        .map(|(a, _)| a)
        .unwrap_or(HARNESS_ACTOR);
    (hop, actor)
}

fn actor_label(actor: u32) -> String {
    if actor == HARNESS_ACTOR {
        "harness".into()
    } else {
        format!("replica{actor}")
    }
}

fn emit(
    sink: &mut FigureSink,
    protocol: ProtocolKind,
    stat: &str,
    cohort: &[BlockPath],
) -> [f64; 6] {
    // Cohort totals telescope exactly in integer arithmetic; pin that
    // before any float rounding enters the picture.
    let hop_total: u64 = cohort.iter().map(|p| (0..5).map(|i| p.hop_ns(i)).sum::<u64>()).sum();
    let e2e_total: u64 = cohort.iter().map(|p| p.e2e_ns()).sum();
    assert_eq!(
        hop_total,
        e2e_total,
        "{} {stat}: cohort hop total does not telescope to e2e total",
        protocol.name(),
    );
    let m = hop_means(cohort);
    let (hop, actor) = bottleneck(cohort, &m);
    sink.record_raw(format!(
        "{},{stat},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}",
        protocol.name(),
        cohort.len(),
        m[0],
        m[1],
        m[2],
        m[3],
        m[4],
        m[5],
        HOP_NAMES[hop],
        actor_label(actor),
    ));
    m
}

fn main() {
    let mut sink = FigureSink::with_header(
        "fig_critical_path",
        "commit critical-path attribution, HS1 vs HS2 (n=4, batch 32, 64 clients)",
        "protocol,stat,blocks,submit_to_propose_ms,propose_to_receive_ms,\
         receive_to_certify_ms,certify_to_respond_ms,respond_to_final_ms,e2e_ms,\
         slowest_hop,slowest_actor",
    );
    let mut certify_mean = Vec::new();
    for protocol in [ProtocolKind::HotStuff1, ProtocolKind::HotStuff2] {
        let mut all = run(protocol);
        assert!(!all.is_empty(), "{}: no fully-observed blocks in trace", protocol.name());
        let m = emit(&mut sink, protocol, "mean", &all);
        certify_mean.push(m[2]);
        // Tail cohort: the slowest 1% of blocks by e2e (at least one).
        all.sort_by_key(|p| p.e2e_ns());
        let tail = (all.len() / 100).max(1);
        emit(&mut sink, protocol, "p99", &all[all.len() - tail..]);
    }
    // The one-phase speculation advantage must be visible in the
    // (n−f)-th-vote hop: HS1 certifies at the speculation quorum, HS2
    // only at commit.
    assert!(
        certify_mean[0] < certify_mean[1],
        "HS1 receive_to_certify mean {:.3}ms not below HS2's {:.3}ms",
        certify_mean[0],
        certify_mean[1],
    );
    sink.finish();
}
