//! §7 "Baselines" half-phase ladder: HotStuff needs 7 half-phases to
//! consensus, HotStuff-2 needs 5, HotStuff-1 needs 3 (speculative
//! response). This harness verifies the declared ladder and measures the
//! corresponding latency ratio on a uniform-latency network.

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};

fn main() {
    let mut sink = FigureSink::new("halfphase_ladder", "half-phase latency ladder (§7 Baselines)");
    let mut latencies = Vec::new();
    for p in [ProtocolKind::HotStuff, ProtocolKind::HotStuff2, ProtocolKind::HotStuff1] {
        // Light load isolates protocol latency from queueing.
        let report = standard(Scenario::new(p).replicas(31).batch_size(100).clients(100)).run();
        println!(
            "  {:<12} declared half-phases={} measured mean latency={:.2} ms",
            p.name(),
            p.half_phases(),
            report.mean_latency_ms
        );
        latencies.push((p, report.mean_latency_ms));
        sink.record(&format!("halfphases={}", p.half_phases()), &report);
    }
    // The ladder must be strictly decreasing: HS > HS2 > HS1.
    assert!(latencies[0].1 > latencies[1].1, "HotStuff slower than HotStuff-2");
    assert!(latencies[1].1 > latencies[2].1, "HotStuff-2 slower than HotStuff-1");
    let reduction_hs = 100.0 * (latencies[0].1 - latencies[2].1) / latencies[0].1;
    let reduction_hs2 = 100.0 * (latencies[1].1 - latencies[2].1) / latencies[1].1;
    println!(
        "  HotStuff-1 latency reduction: {reduction_hs:.1}% vs HotStuff (paper: 41.5%), \
         {reduction_hs2:.1}% vs HotStuff-2 (paper: 24.2%)"
    );
    sink.finish();
}
