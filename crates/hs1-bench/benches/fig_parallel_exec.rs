//! Batch-execution speedup vs worker count for the conflict-partitioned
//! parallel executor (`hs1_ledger::par`), on YCSB uniform (conflict-free),
//! YCSB zipfian (hot keys) and TPC-C (RMW counter chains).
//!
//! Two speedup columns per row:
//!
//! * `speedup` — measured wall-clock vs the same workload at 1 worker.
//!   Only meaningful on a multi-core host; a 1-core CI runner reports ~1x
//!   regardless of worker count (`host_cores` records the context).
//! * `ideal_speedup` — the wave schedule's critical-path bound
//!   (`WavePlan::ideal_speedup`), a deterministic figure-of-merit that is
//!   independent of the host: it shows how much parallelism the *batch*
//!   admits (conflict-free YCSB ≈ workers, TPC-C collapses toward its
//!   hot-counter chains).
//!
//! The harness hard-fails unless digests and committed state roots are
//! bit-identical across every worker count — the determinism contract is
//! checked on every run, not just in the test suite.

use std::time::Instant;

use hs1_bench::FigureSink;
use hs1_ledger::par;
use hs1_ledger::{ExecConfig, ExecutionEngine};
use hs1_types::{BlockId, ClientId, Transaction};
use hs1_workloads::{TpccGen, Workload, YcsbGen};

const BLOCKS: usize = 6;
const BATCH: usize = 8192;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Best-of-N timing to shave scheduler noise on shared runners.
const REPS: usize = 3;

fn gen_blocks(name: &str) -> Vec<Vec<Transaction>> {
    match name {
        // Distinct keys per block: zero conflicts, one wave.
        "ycsb-uniform" => (0..BLOCKS)
            .map(|b| {
                (0..BATCH as u64)
                    .map(|i| {
                        let key = (b * BATCH) as u64 + i; // < 600k records
                        Transaction::kv_write(1, i, key, key ^ 0xabcd)
                    })
                    .collect()
            })
            .collect(),
        "ycsb-zipfian" => {
            let mut g = YcsbGen::paper_default(42);
            (0..BLOCKS)
                .map(|_| (0..BATCH as u64).map(|i| g.next_tx(ClientId(1), i)).collect())
                .collect()
        }
        "tpcc" => {
            let mut g = TpccGen::paper_default(42);
            (0..BLOCKS)
                .map(|_| (0..BATCH as u64).map(|i| g.next_tx(ClientId(1), i)).collect())
                .collect()
        }
        other => panic!("unknown workload {other}"),
    }
}

struct Run {
    digests: Vec<hs1_crypto::Digest>,
    root: hs1_crypto::Digest,
    secs: f64,
}

fn run(blocks: &[Vec<Transaction>], workers: usize) -> Run {
    let mut best = f64::INFINITY;
    let mut digests = Vec::new();
    let mut root = hs1_crypto::Digest([0; 32]);
    for _ in 0..REPS {
        let mut e = ExecutionEngine::new(ExecConfig { workers, ..ExecConfig::default() });
        let t0 = Instant::now();
        let d: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, txs)| e.execute_committed(BlockId::test(i as u64 + 1), txs))
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
        digests = d;
        root = e.store().committed_store().state_root();
    }
    Run { digests, root, secs: best }
}

fn main() {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut sink = FigureSink::with_header(
        "fig_parallel_exec",
        "batch execution speedup vs worker count",
        "workload,workers,batch,blocks,mean_waves,wall_ms,speedup,ideal_speedup,host_cores",
    );
    for workload in ["ycsb-uniform", "ycsb-zipfian", "tpcc"] {
        let blocks = gen_blocks(workload);
        let plans: Vec<_> = blocks.iter().map(|b| par::schedule(b)).collect();
        let mean_waves =
            plans.iter().map(|p| p.waves.len()).sum::<usize>() as f64 / plans.len() as f64;
        let baseline = run(&blocks, 1);
        for &w in &WORKER_COUNTS {
            let r = run(&blocks, w);
            // The determinism contract, enforced per run.
            assert_eq!(r.digests, baseline.digests, "{workload}: digest drift at {w} workers");
            assert_eq!(r.root, baseline.root, "{workload}: state-root drift at {w} workers");
            let speedup = baseline.secs / r.secs;
            let ideal = plans.iter().map(|p| p.ideal_speedup(w)).sum::<f64>() / plans.len() as f64;
            sink.record_raw(format!(
                "{workload},{w},{BATCH},{BLOCKS},{mean_waves:.1},{:.3},{speedup:.2},{ideal:.2},{host_cores}",
                r.secs * 1e3,
            ));
        }
    }
    sink.finish();
}
