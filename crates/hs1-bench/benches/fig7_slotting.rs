//! Figures 6–7: adaptive slotting — slotted HotStuff-1 against the
//! streamlined baselines as the view timer stretches. Slotting keeps a
//! leader productive for many slots per view, so throughput should hold
//! roughly flat while the single-slot engines degrade with longer views.

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig7_slotting", "adaptive slotting vs view timer (Figs 6-7)");
    for timer_ms in [10u64, 25, 50, 100, 250] {
        for p in [ProtocolKind::HotStuff1Slotted, ProtocolKind::HotStuff1, ProtocolKind::HotStuff2]
        {
            let report = standard(
                Scenario::new(p)
                    .replicas(16)
                    .batch_size(100)
                    .clients(400)
                    .view_timer(SimDuration::from_millis(timer_ms)),
            )
            .run();
            sink.record(&format!("timer={timer_ms}ms {}", p.name()), &report);
        }
    }
    sink.finish();
}
