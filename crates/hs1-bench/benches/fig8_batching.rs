//! Figure 8(c,d): throughput and client latency vs batch size
//! (batch ∈ {100, 1000, 2000, 5000, 10000}, n = 32, YCSB).

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario};

fn main() {
    let mut sink = FigureSink::new("fig8_batching", "throughput/latency vs batch size (Fig 8c,d)");
    for batch in [100usize, 1000, 2000, 5000, 10000] {
        for p in ProtocolKind::EVALUATED {
            let report =
                standard(Scenario::new(p).replicas(32).batch_size(batch).clients(batch * 2)).run();
            sink.record(&format!("batch={batch} {}", p.name()), &report);
        }
    }
    sink.finish();
}
