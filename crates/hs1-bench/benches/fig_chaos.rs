//! Chaos degradation curve: throughput and latency vs per-link message
//! loss (duplication and reordering riding along at half the drop cap),
//! for the three HotStuff-1 engines and the HotStuff-2 baseline. The
//! harness shows how gracefully each commit rule sheds load as the
//! network decays — speculation needs `n − f` matching responses, so
//! HotStuff-1's early-finality path feels loss first while the
//! `f + 1`-committed fallback keeps finality moving.

use hs1_bench::{standard, FigureSink};
use hs1_sim::chaos::{ChaosConfig, ChaosPlan};
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig_chaos", "throughput/latency vs link loss");
    let protocols = [
        ProtocolKind::HotStuff2,
        ProtocolKind::HotStuff1Basic,
        ProtocolKind::HotStuff1,
        ProtocolKind::HotStuff1Slotted,
    ];
    for loss_pct in [0u32, 1, 2, 5, 10] {
        // Link faults only: the adversary/bit-rot/skew axes are disabled
        // so the loss axis stays apples-to-apples run-over-run (the
        // adversary absorption cost has its own figure, fig_adversary).
        let cfg = ChaosConfig {
            drop_p: loss_pct as f64 / 100.0,
            dup_p: loss_pct as f64 / 200.0,
            reorder_p: loss_pct as f64 / 200.0,
            reorder_delay: SimDuration::from_millis(5),
            partitions: 0,
            crashes: 0,
            ..ChaosConfig::default()
        }
        .without_new_axes();
        for p in protocols {
            let scenario =
                standard(Scenario::new(p).replicas(4).batch_size(32).clients(64)).seed(7);
            let plan = ChaosPlan::generate(7, &cfg, 4, scenario.chaos_horizon());
            let report = scenario.chaos(plan).run();
            sink.record(&format!("loss={loss_pct}% {}", p.name()), &report);
        }
    }
    // One row with the full fault mix (partition + crash-restart) so the
    // CSV also tracks recovery overhead run-over-run.
    let full = ChaosConfig::default();
    for p in protocols {
        let scenario = standard(Scenario::new(p).replicas(4).batch_size(32).clients(64)).seed(11);
        let plan = ChaosPlan::generate(11, &full, 4, scenario.chaos_horizon());
        let report = scenario.chaos(plan).run();
        sink.record(&format!("full-mix {}", p.name()), &report);
    }
    sink.finish();
}
