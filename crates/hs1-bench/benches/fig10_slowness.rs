//! Figure 10(a–d): leader-slowness — throughput and latency vs the number
//! of slow leaders (0..f, n = 32, batch 100), with view timers of 10 ms
//! and 100 ms. Slotted HotStuff-1 is run at both timer settings (the
//! paper's "10ms-slotting" / "100ms-slotting" series).

use hs1_bench::{standard, FigureSink};
use hs1_core::Fault;
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig10_slowness", "leader slowness (Fig 10a-d)");
    for timer_ms in [10u64, 100] {
        for slow in [0usize, 1, 4, 7, 10] {
            for p in ProtocolKind::EVALUATED {
                let report = standard(
                    Scenario::new(p)
                        .replicas(32)
                        .batch_size(100)
                        .clients(400)
                        .view_timer(SimDuration::from_millis(timer_ms))
                        .faulty_leaders(slow, Fault::SlowLeader),
                )
                .run();
                sink.record(&format!("timer={timer_ms}ms slow={slow} {}", p.name()), &report);
            }
        }
    }
    sink.finish();
}
