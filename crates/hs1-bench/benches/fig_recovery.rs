//! Recovery-time bench: wall-clock cost of catching a replica up to a
//! committed state, as a function of journal length, three ways:
//!
//! * **journal-only** — `hs1_storage::recover` replays (and re-executes)
//!   every committed block: O(history).
//! * **checkpoint+tail** — the newest checkpoint covers ~95% of the
//!   journal; only the tail replays.
//! * **snapshot** — the `hs1-statesync` path a *fresh* replica takes:
//!   pull the CRC-indexed chunks of a peer's checkpoint-derived image,
//!   verify each chunk and the assembled state root, and restore the
//!   engine from the image: O(state), flat in journal length. (Measured
//!   in-process: the network round trips a real deployment adds are in
//!   `hs1_sim::CatchupModel`, whose modeled crossover is printed below.)
//!
//! Not a paper figure — it characterizes the `hs1-storage` (ISSUE 2) and
//! `hs1-statesync` (ISSUE 3) subsystems. CSV lands in
//! `bench_results/fig_recovery.csv`.
//!
//! `HS1_BENCH_RECOVERY_BLOCKS` overrides the sweep (comma-separated).

use std::fs;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use hs1_core::byzantine::Fault;
use hs1_core::chained::{ChainDepth, ChainedEngine};
use hs1_core::common::LocalMempool;
use hs1_core::persist::{Persistence, RecoveredState};
use hs1_core::Replica;
use hs1_ledger::ExecConfig;
use hs1_sim::CatchupModel;
use hs1_statesync::{SnapshotImage, SnapshotServer};
use hs1_storage::crc32::crc32;
use hs1_storage::testutil::TempDir;
use hs1_storage::{ReplicaStorage, StorageConfig, SyncPolicy};
use hs1_types::message::{SnapshotChunkReqMsg, SnapshotReqMsg};
use hs1_types::{
    Block, CertKind, Certificate, Message, ReplicaId, Slot, SystemConfig, Transaction, View,
};

const TXS_PER_BLOCK: u64 = 8;

fn sweep() -> Vec<u64> {
    std::env::var("HS1_BENCH_RECOVERY_BLOCKS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![256, 1024, 4096, 16384])
}

/// Deterministic committed chain of `len` blocks, `TXS_PER_BLOCK` txs
/// each.
fn chain(len: u64) -> Vec<Arc<Block>> {
    let mut out = Vec::with_capacity(len as usize);
    let mut parent = Block::genesis();
    for v in 1..=len {
        let justify = Certificate {
            kind: CertKind::Quorum,
            view: parent.view,
            slot: if parent.is_genesis() { Slot::GENESIS } else { Slot(1) },
            block: parent.id(),
            sigs: vec![],
        };
        let txs: Vec<Transaction> = (0..TXS_PER_BLOCK)
            .map(|i| Transaction::kv_write(1, v * TXS_PER_BLOCK + i, (v * 13 + i) % 100_000, v))
            .collect();
        let b = Arc::new(Block::new(ReplicaId(0), View(v), Slot(1), justify, txs));
        parent = b.clone();
        out.push(b);
    }
    out
}

/// Journal `blocks` commits into `dir`; checkpoint every `ckpt_every`
/// commits when nonzero. Returns the reference state root.
fn build_journal(
    dir: &std::path::Path,
    blocks: &[Arc<Block>],
    ckpt_every: u64,
) -> hs1_crypto::Digest {
    let cfg = StorageConfig {
        segment_bytes: 4 << 20,
        sync: SyncPolicy::EveryN(256),
        checkpoint_every: ckpt_every,
    };
    let (_, mut storage) = ReplicaStorage::open(dir, cfg).expect("open");
    let mut exec = hs1_ledger::ExecutionEngine::new(ExecConfig::default());
    let mut chain_ids = vec![Block::genesis_id()];
    for (i, b) in blocks.iter().enumerate() {
        storage.on_view(View(i as u64 + 1));
        storage.on_speculate(b);
        storage.on_commit(b);
        exec.execute_committed(b.id(), &b.txs);
        chain_ids.push(b.id());
        if storage.wants_checkpoint() {
            storage.write_checkpoint(exec.store().committed_store(), &chain_ids);
        }
    }
    storage.sync();
    exec.store().committed_store().state_root()
}

/// Time a full recovery (journal/checkpoint load + engine restore).
fn recover_once(dir: &std::path::Path, expect_root: hs1_crypto::Digest) -> (f64, u64, u64) {
    let cfg = StorageConfig::default();
    let t0 = Instant::now();
    let (state, storage) = ReplicaStorage::open(dir, cfg).expect("recover");
    let info = storage.recovery_info.clone();
    let mut eng = engine();
    eng.restore(state);
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(eng.state_root(), expect_root, "recovery must reproduce the state root");
    (elapsed_ms, info.replayed_records, info.skipped_records)
}

fn engine() -> ChainedEngine {
    ChainedEngine::with_source(
        SystemConfig::new(4),
        ReplicaId(0),
        ChainDepth::Two,
        true,
        Fault::Honest,
        ExecConfig::default(),
        Box::new(LocalMempool::new()),
    )
}

/// Time the requester side of snapshot state sync against a prepared
/// serving peer: chunk pulls + CRC verification + assembly + payload
/// decode + root verification + engine restore. Returns
/// `(elapsed_ms, chunks, image_bytes)`.
fn snapshot_catchup_once(
    dir: &std::path::Path,
    expect_root: hs1_crypto::Digest,
) -> (f64, u64, u64) {
    // The serving peer prepares (and caches) its snapshot once for any
    // number of joiners; that cost is not the joiner's.
    let mut server = SnapshotServer::new(dir);
    let req = Message::SnapshotReq(SnapshotReqMsg { have_chain_len: 1 });
    let Some(Message::SnapshotManifest(manifest)) = server.handle(&req) else {
        panic!("serving peer has a checkpoint to serve");
    };

    let t0 = Instant::now();
    let mut buf = Vec::with_capacity(manifest.total_bytes as usize);
    for i in 0..manifest.chunk_count() {
        let creq = Message::SnapshotChunkReq(SnapshotChunkReqMsg {
            state_root: manifest.state_root,
            index: i,
        });
        let Some(Message::SnapshotChunk(c)) = server.handle(&creq) else {
            panic!("chunk {i} served");
        };
        assert_eq!(crc32(&c.data), manifest.chunk_crcs[i as usize], "chunk CRC");
        buf.extend_from_slice(&c.data);
    }
    let image = SnapshotImage::decode_payload(&buf).expect("image decodes");
    assert_eq!(image.state_root, manifest.state_root, "assembled root matches manifest");
    let store = image.restore_store();
    let mut eng = engine();
    eng.restore(RecoveredState {
        view: manifest.view,
        high_cert: Some(manifest.high_cert.clone()),
        committed_store: Some(store),
        committed_ids: image.chain.clone(),
        decided: Vec::new(),
        speculated: Vec::new(),
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(eng.state_root(), expect_root, "snapshot sync must reproduce the state root");
    (elapsed_ms, manifest.total_bytes, image.entries.len() as u64)
}

fn main() {
    println!("=== fig_recovery: recovery time vs journal length ===");
    let mut rows =
        vec!["blocks,txs,mode,recover_ms,replayed_records,checkpoint_covered_records".to_string()];
    let mut last_entries = 0u64;
    for blocks in sweep() {
        let chain = chain(blocks);

        // Journal-only recovery: replay (and re-execute) everything.
        let dir = TempDir::new("figrec-journal");
        let root = build_journal(dir.path(), &chain, 0);
        let (ms, replayed, skipped) = recover_once(dir.path(), root);
        println!(
            "  [journal-only   ] {blocks:>6} blocks ({:>7} txs): {ms:>9.2} ms  ({replayed} records replayed)",
            blocks * TXS_PER_BLOCK
        );
        rows.push(format!(
            "{blocks},{},journal,{ms:.3},{replayed},{skipped}",
            blocks * TXS_PER_BLOCK
        ));

        // Checkpointed recovery: the newest checkpoint covers ~95% of the
        // journal; only the tail replays.
        let dir = TempDir::new("figrec-ckpt");
        let every = (blocks / 20).max(1);
        let root = build_journal(dir.path(), &chain, every);
        let (ms, replayed, skipped) = recover_once(dir.path(), root);
        println!(
            "  [checkpoint+tail] {blocks:>6} blocks ({:>7} txs): {ms:>9.2} ms  ({replayed} records replayed, {skipped} covered)",
            blocks * TXS_PER_BLOCK
        );
        rows.push(format!(
            "{blocks},{},checkpoint,{ms:.3},{replayed},{skipped}",
            blocks * TXS_PER_BLOCK
        ));

        // Snapshot state sync: a fresh replica pulls a peer's image
        // covering the *whole* chain and installs it — no replay at all.
        // Flat in journal length; this is the O(state) column.
        let dir = TempDir::new("figrec-snap");
        let root = build_journal(dir.path(), &chain, blocks); // ckpt covers everything
        let (ms, bytes, entries) = snapshot_catchup_once(dir.path(), root);
        let covered = 3 * blocks; // view + spec + decide records per block
        println!(
            "  [snapshot-sync  ] {blocks:>6} blocks ({:>7} txs): {ms:>9.2} ms  ({bytes} image bytes, {entries} entries, 0 records replayed)",
            blocks * TXS_PER_BLOCK
        );
        rows.push(format!("{blocks},{},snapshot,{ms:.3},0,{covered}", blocks * TXS_PER_BLOCK));
        last_entries = entries;
    }

    // Where the two regimes cross once real network round trips are
    // charged (the node runner's gap-threshold heuristic comes from
    // this model; see ROADMAP "Resolved items").
    let sweep_max = sweep().into_iter().max().unwrap_or(0);
    let model = CatchupModel::lan(last_entries, sweep_max);
    println!(
        "  modeled (LAN rtt {:?}): snapshot {:.2} ms flat, replay {:.4} ms/block -> crossover at {} blocks behind",
        model.rtt,
        model.snapshot_time().as_millis_f64(),
        model.replay_time(1).as_millis_f64(),
        model.crossover_blocks()
    );

    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    let dir = dir.join("bench_results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig_recovery.csv");
    if let Ok(mut f) = fs::File::create(&path) {
        for row in &rows {
            let _ = writeln!(f, "{row}");
        }
        println!("  -> wrote {}", path.display());
    }
}
