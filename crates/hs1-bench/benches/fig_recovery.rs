//! Recovery-time bench: wall-clock cost of `hs1_storage::recover` plus
//! engine restore, as a function of journal length, with and without a
//! checkpoint covering most of it.
//!
//! Not a paper figure — it characterizes the new `hs1-storage` subsystem
//! (ISSUE 2): journal-only recovery re-executes every committed block, so
//! it grows linearly with history; checkpoints bound the replayed tail,
//! and once segment pruning discards the covered prefix the decode cost
//! drops too (visible as the widening gap at longer journals). CSV lands
//! in `bench_results/fig_recovery.csv`.
//!
//! `HS1_BENCH_RECOVERY_BLOCKS` overrides the sweep (comma-separated).

use std::fs;
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use hs1_core::byzantine::Fault;
use hs1_core::chained::{ChainDepth, ChainedEngine};
use hs1_core::common::LocalMempool;
use hs1_core::persist::Persistence;
use hs1_core::Replica;
use hs1_ledger::ExecConfig;
use hs1_storage::testutil::TempDir;
use hs1_storage::{ReplicaStorage, StorageConfig, SyncPolicy};
use hs1_types::{Block, CertKind, Certificate, ReplicaId, Slot, SystemConfig, Transaction, View};

const TXS_PER_BLOCK: u64 = 8;

fn sweep() -> Vec<u64> {
    std::env::var("HS1_BENCH_RECOVERY_BLOCKS")
        .ok()
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![256, 1024, 4096, 16384])
}

/// Deterministic committed chain of `len` blocks, `TXS_PER_BLOCK` txs
/// each.
fn chain(len: u64) -> Vec<Arc<Block>> {
    let mut out = Vec::with_capacity(len as usize);
    let mut parent = Block::genesis();
    for v in 1..=len {
        let justify = Certificate {
            kind: CertKind::Quorum,
            view: parent.view,
            slot: if parent.is_genesis() { Slot::GENESIS } else { Slot(1) },
            block: parent.id(),
            sigs: vec![],
        };
        let txs: Vec<Transaction> = (0..TXS_PER_BLOCK)
            .map(|i| Transaction::kv_write(1, v * TXS_PER_BLOCK + i, (v * 13 + i) % 100_000, v))
            .collect();
        let b = Arc::new(Block::new(ReplicaId(0), View(v), Slot(1), justify, txs));
        parent = b.clone();
        out.push(b);
    }
    out
}

/// Journal `blocks` commits into `dir`; checkpoint every `ckpt_every`
/// commits when nonzero. Returns the reference state root.
fn build_journal(
    dir: &std::path::Path,
    blocks: &[Arc<Block>],
    ckpt_every: u64,
) -> hs1_crypto::Digest {
    let cfg = StorageConfig {
        segment_bytes: 4 << 20,
        sync: SyncPolicy::EveryN(256),
        checkpoint_every: ckpt_every,
    };
    let (_, mut storage) = ReplicaStorage::open(dir, cfg).expect("open");
    let mut exec = hs1_ledger::ExecutionEngine::new(ExecConfig::default());
    let mut chain_ids = vec![Block::genesis_id()];
    for (i, b) in blocks.iter().enumerate() {
        storage.on_view(View(i as u64 + 1));
        storage.on_speculate(b);
        storage.on_commit(b);
        exec.execute_committed(b.id(), &b.txs);
        chain_ids.push(b.id());
        if storage.wants_checkpoint() {
            storage.write_checkpoint(exec.store().committed_store(), &chain_ids);
        }
    }
    storage.sync();
    exec.store().committed_store().state_root()
}

/// Time a full recovery (journal/checkpoint load + engine restore).
fn recover_once(dir: &std::path::Path, expect_root: hs1_crypto::Digest) -> (f64, u64, u64) {
    let cfg = StorageConfig::default();
    let t0 = Instant::now();
    let (state, storage) = ReplicaStorage::open(dir, cfg).expect("recover");
    let info = storage.recovery_info.clone();
    let mut engine = ChainedEngine::with_source(
        SystemConfig::new(4),
        ReplicaId(0),
        ChainDepth::Two,
        true,
        Fault::Honest,
        ExecConfig::default(),
        Box::new(LocalMempool::new()),
    );
    engine.restore(state);
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(engine.state_root(), expect_root, "recovery must reproduce the state root");
    (elapsed_ms, info.replayed_records, info.skipped_records)
}

fn main() {
    println!("=== fig_recovery: recovery time vs journal length ===");
    let mut rows =
        vec!["blocks,txs,mode,recover_ms,replayed_records,checkpoint_covered_records".to_string()];
    for blocks in sweep() {
        let chain = chain(blocks);

        // Journal-only recovery: replay (and re-execute) everything.
        let dir = TempDir::new("figrec-journal");
        let root = build_journal(dir.path(), &chain, 0);
        let (ms, replayed, skipped) = recover_once(dir.path(), root);
        println!(
            "  [journal-only   ] {blocks:>6} blocks ({:>7} txs): {ms:>9.2} ms  ({replayed} records replayed)",
            blocks * TXS_PER_BLOCK
        );
        rows.push(format!(
            "{blocks},{},journal,{ms:.3},{replayed},{skipped}",
            blocks * TXS_PER_BLOCK
        ));

        // Checkpointed recovery: the newest checkpoint covers ~95% of the
        // journal; only the tail replays.
        let dir = TempDir::new("figrec-ckpt");
        let every = (blocks / 20).max(1);
        let root = build_journal(dir.path(), &chain, every);
        let (ms, replayed, skipped) = recover_once(dir.path(), root);
        println!(
            "  [checkpoint+tail] {blocks:>6} blocks ({:>7} txs): {ms:>9.2} ms  ({replayed} records replayed, {skipped} covered)",
            blocks * TXS_PER_BLOCK
        );
        rows.push(format!(
            "{blocks},{},checkpoint,{ms:.3},{replayed},{skipped}",
            blocks * TXS_PER_BLOCK
        ));
    }

    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    let dir = dir.join("bench_results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("fig_recovery.csv");
    if let Ok(mut f) = fs::File::create(&path) {
        for row in &rows {
            let _ = writeln!(f, "{row}");
        }
        println!("  -> wrote {}", path.display());
    }
}
