//! Figure 9(e,j): two-region deployment — n = 31 replicas split between
//! London (k) and N.Virginia (n−k), clients in N.Virginia,
//! k ∈ {0, f, f+1, n−f−1, n−f, n}.

use hs1_bench::{standard, FigureSink};
use hs1_sim::regions::{split, Region};
use hs1_sim::{ProtocolKind, Scenario};
use hs1_types::SimDuration;

fn main() {
    let mut sink = FigureSink::new("fig9_geo2", "Virginia/London split (Fig 9e,j)");
    let n = 31;
    for k in [0usize, 10, 11, 20, 21, 31] {
        for p in ProtocolKind::EVALUATED {
            let placement = split(n, k, Region::London, Region::NorthVirginia);
            let report = standard(
                Scenario::new(p)
                    .replicas(n)
                    .batch_size(100)
                    .clients(200)
                    .placement(placement)
                    .clients_in(Region::NorthVirginia)
                    .view_timer(SimDuration::from_millis(400)),
            )
            .run();
            sink.record(&format!("london={k} {}", p.name()), &report);
        }
    }
    sink.finish();
}
