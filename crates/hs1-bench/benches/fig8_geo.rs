//! Figure 8(e–h): geo-scale deployments — throughput and latency vs number
//! of regions (2–5: N.Virginia, HongKong, London, SãoPaulo, Zurich),
//! n = 32 spread uniformly, YCSB and TPC-C.

use hs1_bench::{standard, FigureSink};
use hs1_sim::{ProtocolKind, Scenario, WorkloadKind};

fn main() {
    let mut sink = FigureSink::new("fig8_geo", "geo-scale scalability (Fig 8e-h)");
    for workload in [WorkloadKind::Ycsb, WorkloadKind::Tpcc] {
        for regions in 2usize..=5 {
            for p in ProtocolKind::EVALUATED {
                let report = standard(
                    Scenario::new(p)
                        .replicas(32)
                        .batch_size(100)
                        .clients(400)
                        .workload(workload)
                        .geo_regions(regions)
                        .view_timer(hs1_types::SimDuration::from_millis(600)),
                )
                .run();
                sink.record(&format!("{workload:?} regions={regions} {}", p.name()), &report);
            }
        }
    }
    sink.finish();
}
