//! End-to-end acceptance test for the chaos gate: an injected invariant
//! violation must (a) be caught by the sweep, (b) reproduce
//! byte-identically from its seed+plan, and (c) shrink to a smaller
//! failing schedule that still reproduces.

use hs1_chaos::{parse_replay, protocol_token, replay_command, sweep, ChaosCase, Inject};
use hs1_sim::chaos::ChaosConfig;
use hs1_sim::ProtocolKind;

#[test]
fn forged_quorum_violation_is_caught_and_replays_byte_identically() {
    // The safety-side canary: a ForgeQuorum adversary (beyond the fault
    // model — it forges other replicas' HMAC shares) makes honest
    // replicas commit a fabricated fork. The sweep must catch it as a
    // *safety* violation, the printed spec must reproduce the identical
    // run, and the shrunk plan must still fail.
    let failure = sweep(
        &[ProtocolKind::HotStuff1],
        0,
        1,
        &ChaosConfig::default(),
        4,
        0.6,
        None,
        Inject::Forge,
        |_, _| {},
    )
    .expect_err("forge injection must fail the sweep");

    assert!(
        !failure.report.invariant_violations.is_empty(),
        "safety oracles fired: {:?}",
        failure.report.invariant_violations
    );

    let cmd = replay_command(&failure.minimized);
    assert!(cmd.contains("--inject forge"), "replay carries the injection flag: {cmd}");
    let spec_start = cmd.find("--replay '").expect("replay spec printed") + "--replay '".len();
    let spec = &cmd[spec_start..cmd[spec_start..].find('\'').unwrap() + spec_start];
    let (protocol, plan) = parse_replay(spec).expect("printed spec parses");
    assert_eq!(protocol, ProtocolKind::HotStuff1);
    let replayed = ChaosCase { plan, ..failure.minimized.clone() }.run();
    let rerun = failure.minimized.run();
    assert_eq!(
        replayed.fingerprint, rerun.fingerprint,
        "shrunk plan replays byte-identically from its printed spec"
    );
    assert!(!replayed.invariants_ok(), "and still violates");
}

#[test]
fn injected_violation_is_caught_reproduced_and_shrunk() {
    // Two fail-silent replicas exceed f for n = 4: the post-fault
    // liveness invariant must fire on every seed whose plan heals or
    // rejoins something (the default config always schedules both).
    let failure = sweep(
        &[ProtocolKind::HotStuff1],
        0,
        1,
        &ChaosConfig::default(),
        4,
        0.6,
        None,
        Inject::Halt,
        |_, _| {},
    )
    .expect_err("halt injection must fail the sweep");

    // (a) caught: a liveness violation, not a panic.
    assert!(
        failure.report.invariant_violations.iter().any(|v| v.contains("no commits")),
        "expected the liveness invariant: {:?}",
        failure.report.invariant_violations
    );

    // (b) byte-identical reproduction from the printed seed+plan: parse
    // the replay command's own spec back and re-run it.
    let cmd = replay_command(&failure.case);
    let spec_start = cmd.find("--replay '").expect("replay spec printed") + "--replay '".len();
    let spec = &cmd[spec_start..cmd[spec_start..].find('\'').unwrap() + spec_start];
    let (protocol, plan) = parse_replay(spec).expect("printed spec parses");
    assert_eq!(protocol, failure.case.protocol);
    let replayed = ChaosCase { plan, ..failure.case.clone() }.run();
    assert_eq!(
        replayed.fingerprint, failure.report.fingerprint,
        "replay from the printed spec is byte-identical"
    );
    assert!(!replayed.invariants_ok(), "and still violates");

    // (c) shrunk: strictly less fault mass, still failing, and the
    // minimized replay command round-trips too.
    assert!(
        failure.minimized.plan.weight() < failure.case.plan.weight(),
        "minimized {} < original {}",
        failure.minimized.plan.weight(),
        failure.case.plan.weight()
    );
    let min_report = failure.minimized.run();
    assert!(!min_report.invariants_ok(), "minimized schedule still fails");
    let min_cmd = replay_command(&failure.minimized);
    assert!(min_cmd.contains(protocol_token(failure.minimized.protocol)));
    assert!(min_cmd.contains("--inject halt"), "replay carries the injection flag");
}
