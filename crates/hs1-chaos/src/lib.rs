//! The chaos sweep: run seeded fault schedules against every engine,
//! gate on the strengthened safety/liveness invariants, and — when a
//! schedule fails — *shrink* it to the minimal failing plan for
//! one-command local replay.
//!
//! The pieces:
//!
//! * [`ChaosCase`] — one (protocol, plan, scenario-shape) cell of the
//!   sweep; [`ChaosCase::run`] executes it deterministically.
//! * [`sweep`] — N seeds × the chosen protocols, first failure wins.
//! * [`shrink`] — greedy fixed-point minimization: drop fault-event
//!   windows and zero link-fault axes while the failure persists.
//! * [`replay_command`] — the exact `cargo run` line that reproduces a
//!   failure byte-for-byte (fingerprint-checked).
//!
//! See `src/bin/chaos_sweep.rs` for the CLI CI invokes.

use hs1_adversary::AdversaryStrategy;
use hs1_core::Fault;
use hs1_sim::chaos::{ChaosConfig, ChaosPlan, LinkAxis};
use hs1_sim::{ProtocolKind, Report, Scenario};
use hs1_types::ReplicaId;

/// Fault injection used to *test the gate itself*: replica faults beyond
/// the `f` the protocol tolerates, so an invariant is expected to trip,
/// reproduce byte-identically from its printed seed+plan, and shrink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    None,
    /// Two fail-silent replicas (2 > f for n = 4): the cluster can never
    /// form a quorum, so the post-heal liveness invariant must fire on
    /// any plan that contains a heal or rejoin. Deterministic across all
    /// seeds — the canary CI uses to prove the gate is wired up.
    Halt,
    /// Two colluding equivocating leaders (also beyond the fault model):
    /// adversarial *pressure* on the speculation path; trips the safety
    /// invariants only when the schedule lines up.
    Rollback,
    /// One `hs1-adversary` backup playing `ForgeQuorum`: it forges a
    /// quorum-certificate chain over a fabricated fork (possible only
    /// because of the HMAC signature substitution) and proposes it,
    /// making honest replicas *commit* conflicting state. The safety
    /// oracles — per-height commit agreement, prefix divergence,
    /// orphaned finality — must fire; this is the canary proving the
    /// gate catches genuine safety violations, not just liveness halts.
    Forge,
}

impl Inject {
    pub fn parse(s: &str) -> Option<Inject> {
        match s {
            "none" => Some(Inject::None),
            "halt" => Some(Inject::Halt),
            "rollback" => Some(Inject::Rollback),
            "forge" => Some(Inject::Forge),
            _ => None,
        }
    }

    pub fn token(&self) -> &'static str {
        match self {
            Inject::None => "none",
            Inject::Halt => "halt",
            Inject::Rollback => "rollback",
            Inject::Forge => "forge",
        }
    }
}

/// One cell of the sweep: everything needed to reproduce a run.
#[derive(Clone)]
pub struct ChaosCase {
    pub protocol: ProtocolKind,
    pub plan: ChaosPlan,
    pub sim_seconds: f64,
    /// Snapshot-vs-replay gap override (`None`: CatchupModel crossover).
    pub threshold: Option<u64>,
    pub inject: Inject,
}

impl ChaosCase {
    /// The standard sweep deployment: 4 replicas, batch 32, 64 clients
    /// (the quickstart shape — see ROADMAP "Quickstart config
    /// sensitivity" for why batch ≥ clients/3 matters).
    pub fn scenario(&self) -> Scenario {
        let mut s = Scenario::new(self.protocol)
            .replicas(self.plan.n)
            .batch_size(32)
            .clients(64)
            .warmup_seconds(0.25)
            .sim_seconds(self.sim_seconds)
            .seed(self.plan.seed)
            .chaos(self.plan.clone());
        if let Some(t) = self.threshold {
            s = s.catchup_threshold(t);
        }
        match self.inject {
            Inject::None => {}
            Inject::Halt => {
                s = s.with_fault(1, Fault::Silent).with_fault(2, Fault::Silent);
            }
            Inject::Rollback => {
                s = s
                    .with_fault(1, Fault::RollbackAttack { victims: vec![ReplicaId(0)] })
                    .with_fault(2, Fault::RollbackAttack { victims: vec![ReplicaId(3)] });
            }
            Inject::Forge => {
                s = s.with_adversary(1, AdversaryStrategy::ForgeQuorum);
            }
        }
        s
    }

    pub fn run(&self) -> Report {
        self.scenario().run()
    }

    /// Derive the case for `seed` with the same shape.
    pub fn with_plan(&self, plan: ChaosPlan) -> ChaosCase {
        ChaosCase { plan, ..self.clone() }
    }
}

/// Parse a protocol token (the inverse of [`protocol_token`]).
pub fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    match s {
        "hs" => Some(ProtocolKind::HotStuff),
        "hs2" => Some(ProtocolKind::HotStuff2),
        "hs1" => Some(ProtocolKind::HotStuff1),
        "basic" => Some(ProtocolKind::HotStuff1Basic),
        "slotted" => Some(ProtocolKind::HotStuff1Slotted),
        _ => None,
    }
}

pub fn protocol_token(p: ProtocolKind) -> &'static str {
    match p {
        ProtocolKind::HotStuff => "hs",
        ProtocolKind::HotStuff2 => "hs2",
        ProtocolKind::HotStuff1 => "hs1",
        ProtocolKind::HotStuff1Basic => "basic",
        ProtocolKind::HotStuff1Slotted => "slotted",
    }
}

/// The exact command that replays `case` byte-for-byte.
pub fn replay_command(case: &ChaosCase) -> String {
    let mut cmd = format!(
        "cargo run --release -p hs1-chaos --bin chaos_sweep -- --replay '{}:{}' --sim-seconds {}",
        protocol_token(case.protocol),
        case.plan.to_spec(),
        case.sim_seconds,
    );
    if let Some(t) = case.threshold {
        cmd.push_str(&format!(" --threshold {t}"));
    }
    if case.inject != Inject::None {
        cmd.push_str(&format!(" --inject {}", case.inject.token()));
    }
    cmd
}

/// Parse the `--replay` argument (`<protocol-token>:<plan-spec>`).
pub fn parse_replay(spec: &str) -> Result<(ProtocolKind, ChaosPlan), String> {
    let (proto, plan_spec) =
        spec.split_once(':').ok_or("replay spec must be <protocol>:<plan-spec>")?;
    let protocol =
        parse_protocol(proto).ok_or_else(|| format!("unknown protocol token {proto:?}"))?;
    let plan = ChaosPlan::from_spec(plan_spec)?;
    Ok((protocol, plan))
}

/// Outcome of one failing cell, with its minimized schedule.
pub struct Failure {
    pub case: ChaosCase,
    pub report: Report,
    pub minimized: ChaosCase,
    pub shrink_runs: u32,
}

/// Greedy fixed-point shrinking: repeatedly try removing one fault-event
/// unit (a crash/restart(+bitrot) or partition/heal pair), dropping one
/// adversary, zeroing one link axis, or flattening the clock-skew axis —
/// keeping any reduction under which `fails` still answers true.
/// Returns the minimal plan plus the number of candidate runs spent.
pub fn shrink(mut plan: ChaosPlan, mut fails: impl FnMut(&ChaosPlan) -> bool) -> (ChaosPlan, u32) {
    let mut runs = 0;
    loop {
        let mut progressed = false;
        // Event units, last first (later faults are more often incidental).
        let mut unit_idx = plan.removable_units();
        unit_idx.reverse();
        for unit in unit_idx {
            let candidate = plan.without_events(&unit);
            runs += 1;
            if fails(&candidate) {
                plan = candidate;
                progressed = true;
                break; // indices shifted; recompute units
            }
        }
        if progressed {
            continue;
        }
        // Adversaries, last first.
        for k in (0..plan.adversaries.len()).rev() {
            let candidate = plan.without_adversary(k);
            runs += 1;
            if fails(&candidate) {
                plan = candidate;
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        for axis in [LinkAxis::Dup, LinkAxis::Reorder, LinkAxis::Drop] {
            if !plan.axis_active(axis) {
                continue;
            }
            let candidate = plan.without_axis(axis);
            runs += 1;
            if fails(&candidate) {
                plan = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed && plan.skew_active() {
            let candidate = plan.without_skew();
            runs += 1;
            if fails(&candidate) {
                plan = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return (plan, runs);
        }
    }
}

/// Run `seeds` schedules (starting at `start_seed`) for every protocol in
/// `protocols`. Stops at the first failing cell and returns it minimized;
/// `Ok` carries the number of passing runs.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    protocols: &[ProtocolKind],
    start_seed: u64,
    seeds: u64,
    cfg: &ChaosConfig,
    n: usize,
    sim_seconds: f64,
    threshold: Option<u64>,
    inject: Inject,
    mut progress: impl FnMut(&ChaosCase, &Report),
) -> Result<u64, Box<Failure>> {
    let mut passed = 0;
    for seed in start_seed..start_seed + seeds {
        for &protocol in protocols {
            let probe = Scenario::new(protocol).sim_seconds(sim_seconds).warmup_seconds(0.25);
            let plan = ChaosPlan::generate(seed, cfg, n, probe.chaos_horizon());
            let case = ChaosCase { protocol, plan, sim_seconds, threshold, inject };
            let report = case.run();
            progress(&case, &report);
            if !report.invariants_ok() {
                let (min_plan, shrink_runs) =
                    shrink(case.plan.clone(), |p| !case.with_plan(p.clone()).run().invariants_ok());
                let minimized = case.with_plan(min_plan);
                return Err(Box::new(Failure { case, report, minimized, shrink_runs }));
            }
            passed += 1;
        }
    }
    Ok(passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_sim::chaos::{ChaosEvent, ChaosEventKind};
    use hs1_types::SimTime;

    #[test]
    fn protocol_tokens_roundtrip() {
        for p in ProtocolKind::ALL {
            assert_eq!(parse_protocol(protocol_token(p)), Some(p));
        }
        assert_eq!(parse_protocol("nope"), None);
    }

    #[test]
    fn replay_spec_roundtrips_through_parse() {
        let cfg = ChaosConfig::default();
        let plan = ChaosPlan::generate(3, &cfg, 4, SimTime(900_000_000));
        let case = ChaosCase {
            protocol: ProtocolKind::HotStuff1,
            plan: plan.clone(),
            sim_seconds: 1.0,
            threshold: Some(8),
            inject: Inject::None,
        };
        let cmd = replay_command(&case);
        assert!(cmd.contains("--replay 'hs1:"));
        assert!(cmd.contains("--threshold 8"));
        let spec = format!("hs1:{}", plan.to_spec());
        let (proto, parsed) = parse_replay(&spec).unwrap();
        assert_eq!(proto, ProtocolKind::HotStuff1);
        assert_eq!(parsed, plan);
    }

    /// Shrinking against a synthetic predicate: failure depends only on
    /// the crash window plus the drop axis, so everything else must go.
    #[test]
    fn shrink_reaches_minimal_plan() {
        let cfg = ChaosConfig { partitions: 2, crashes: 1, ..ChaosConfig::default() };
        let plan = ChaosPlan::generate(17, &cfg, 4, SimTime(3_000_000_000));
        assert!(plan.has_crashes(), "seed 17 schedules a crash");
        assert!(plan.events.len() > 2, "more than just the crash window");
        let (min, runs) = shrink(plan, |p| p.has_crashes() && p.axis_active(LinkAxis::Drop));
        assert!(runs > 0);
        // Only the crash window survives: crash + restart, plus the
        // bit-rot rider scheduled inside it (one removable unit).
        let crash_unit: usize = min
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    ChaosEventKind::Crash { .. }
                        | ChaosEventKind::Restart { .. }
                        | ChaosEventKind::BitRot { .. }
                )
            })
            .count();
        assert_eq!(min.events.len(), crash_unit, "only the crash window survives");
        assert!(min.adversaries.is_empty(), "irrelevant adversary removed");
        assert!(!min.skew_active(), "irrelevant skew removed");
        assert!(min.has_crashes());
        assert!(min.axis_active(LinkAxis::Drop));
        assert!(!min.axis_active(LinkAxis::Dup), "irrelevant axis removed");
        assert!(!min.axis_active(LinkAxis::Reorder), "irrelevant axis removed");
    }

    #[test]
    fn shrink_terminates_on_unshrinkable_failure() {
        // Predicate fails for every plan: shrinking must reach the empty
        // schedule, not loop.
        let cfg = ChaosConfig::default();
        let plan = ChaosPlan::generate(5, &cfg, 4, SimTime(900_000_000));
        let (min, _) = shrink(plan, |_| true);
        assert!(min.events.is_empty());
        assert!(!min.has_link_faults());
        assert_eq!(min.weight(), 0);
    }

    #[test]
    fn shrink_keeps_failing_plan_when_nothing_removable() {
        let mut plan = ChaosPlan::empty(1, 4);
        plan.events.push(ChaosEvent {
            at: SimTime(500_000_000),
            kind: ChaosEventKind::Crash { replica: 2 },
        });
        plan.events.push(ChaosEvent {
            at: SimTime(600_000_000),
            kind: ChaosEventKind::Restart { replica: 2 },
        });
        let before = plan.clone();
        let (min, _) = shrink(plan, |p| p.has_crashes());
        assert_eq!(min, before, "already minimal");
    }
}
