//! `chaos_sweep` — the CI chaos gate.
//!
//! Sweep mode (default): run N seeded fault schedules (drops, duplicates,
//! reordering, a partition/heal cycle, a crash-restart window) against
//! the chosen protocols, checking the strengthened safety/liveness
//! invariants after every run. On failure the schedule is shrunk to the
//! minimal failing plan and the exact replay command is printed before
//! exiting non-zero.
//!
//! ```text
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- --seeds 64
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- \
//!     --replay 'hs1:v1;seed=7;n=4;...'        # byte-identical re-run
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- \
//!     --replay 'hs1:...' --trace /tmp/run.jsonl   # + structured trace dump
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- \
//!     --replay 'hs1:...' --metrics /tmp/run.csv   # + counter/gauge snapshot
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- \
//!     --replay 'hs1:...' --trace-dir /tmp/run     # per-replica + merged
//!                                                 # cluster trace, critical-
//!                                                 # path CSV, Perfetto JSON
//! cargo run --release -p hs1-chaos --bin chaos_sweep -- \
//!     --seeds 4 --inject rollback             # prove the gate trips
//! ```
//!
//! `--trace-dir` doubles as the critical-path canary: the replay fails
//! (exit 1) unless every finalized block gets an attributed critical
//! path whose hop durations telescope exactly to its end-to-end latency.

use hs1_chaos::{
    parse_protocol, parse_replay, protocol_token, replay_command, sweep, ChaosCase, Inject,
};
use hs1_obs::{Clock, Obs};
use hs1_sim::chaos::ChaosConfig;
use hs1_sim::ProtocolKind;

struct Args {
    seeds: u64,
    start: u64,
    sim_seconds: f64,
    protocols: Vec<ProtocolKind>,
    threshold: Option<u64>,
    inject: Inject,
    replay: Option<String>,
    /// Replay mode: dump the run's deterministic JSONL trace here.
    trace: Option<String>,
    /// Replay mode: dump the run's `MetricsSnapshot` CSV here.
    metrics: Option<String>,
    /// Replay mode: record per-replica traces into this directory and
    /// emit the merged cluster timeline, critical-path attribution CSV,
    /// and Perfetto export (plus canary validation of the paths).
    trace_dir: Option<String>,
    config: ChaosConfig,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_sweep [--seeds N] [--start K] [--sim-seconds F] \
         [--protocols hs,hs2,hs1,basic,slotted] [--threshold BLOCKS] \
         [--config default|lossy|events|legacy] [--inject none|halt|rollback|forge] \
         [--replay '<protocol>:<plan-spec>'] [--trace PATH] [--metrics PATH] \
         [--trace-dir DIR] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 16,
        start: 0,
        sim_seconds: 1.0,
        protocols: ProtocolKind::ALL.to_vec(),
        threshold: None,
        inject: Inject::None,
        replay: None,
        trace: None,
        metrics: None,
        trace_dir: None,
        config: ChaosConfig::default(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--start" => args.start = val("--start").parse().unwrap_or_else(|_| usage()),
            "--sim-seconds" => {
                args.sim_seconds = val("--sim-seconds").parse().unwrap_or_else(|_| usage())
            }
            "--protocols" => {
                args.protocols = val("--protocols")
                    .split(',')
                    .map(|t| parse_protocol(t).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--threshold" => {
                args.threshold = Some(val("--threshold").parse().unwrap_or_else(|_| usage()))
            }
            "--inject" => args.inject = Inject::parse(&val("--inject")).unwrap_or_else(|| usage()),
            "--replay" => args.replay = Some(val("--replay")),
            "--trace" => args.trace = Some(val("--trace")),
            "--metrics" => args.metrics = Some(val("--metrics")),
            "--trace-dir" => args.trace_dir = Some(val("--trace-dir")),
            "--config" => {
                args.config = match val("--config").as_str() {
                    "default" => ChaosConfig::default(),
                    "lossy" => ChaosConfig::lossy_only(),
                    "events" => ChaosConfig::events_only(),
                    // Pre-adversary axis set (drops/dups/reorder/
                    // partitions/crashes only) for bisecting regressions.
                    "legacy" => ChaosConfig::default().without_new_axes(),
                    _ => usage(),
                }
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.protocols.is_empty() || args.seeds == 0 {
        usage();
    }
    args
}

fn replay(args: &Args, spec: &str) -> ! {
    let (protocol, plan) = match parse_replay(spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bad --replay spec: {e}");
            std::process::exit(2);
        }
    };
    let case = ChaosCase {
        protocol,
        plan,
        sim_seconds: args.sim_seconds,
        threshold: args.threshold,
        inject: args.inject,
    };
    println!("replaying {} under {}", case.plan, case.protocol.name());
    let mut scenario = case.scenario();
    let cluster_n = scenario.n;
    let mut recorder = None;
    let mut fanout = None;
    if let Some(dir) = &args.trace_dir {
        // Per-replica fan-out over the same sim-driven manual clock:
        // each replica's JSONL lands in DIR, and the merge back into one
        // cluster timeline is byte-identical across replays of the spec.
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create --trace-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        let (s, fan) = scenario.record_cluster();
        scenario = s;
        fan.lock().unwrap().set_trace_dir(&dir);
        fanout = Some((fan, dir));
    } else if args.trace.is_some() || args.metrics.is_some() {
        // A recording observer over the sim-driven manual clock: the
        // dumped JSONL is byte-identical across replays of the same spec
        // (and so are the snapshot's counter/gauge rows).
        let (obs, rec) = Obs::recording(Clock::manual());
        if let Some(path) = &args.trace {
            rec.lock().unwrap().set_trace_path(path.into());
        }
        scenario = scenario.with_observer(obs);
        recorder = Some(rec);
    }
    let report = scenario.run();
    println!("  {}", report.row());
    println!(
        "  chaos: dropped={} dup={} reordered={} partitions={} crashes={} restarts={} \
         snapshot-syncs={} replays={} adversaries={} bitrot={} failstops={} rotations={}",
        report.chaos.dropped_msgs,
        report.chaos.duplicated_msgs,
        report.chaos.reordered_msgs,
        report.chaos.partitions,
        report.chaos.crashes,
        report.chaos.restarts,
        report.chaos.snapshot_syncs,
        report.chaos.replay_catchups,
        report.chaos.adversaries,
        report.chaos.bitrot_events,
        report.chaos.bitrot_failstops,
        report.chaos.snapshot_rotations,
    );
    println!("  views: {:?}  chain-lens: {:?}", report.replica_views, report.replica_chain_lens);
    println!("  fingerprint: {:#018x}", report.fingerprint);
    report.ensure_invariants("replay");
    println!("  invariants hold");
    if let Some(rec) = recorder {
        let mut rec = rec.lock().unwrap();
        if let Some(path) = &args.trace {
            if let Err(e) = rec.flush_to_path() {
                eprintln!("failed to write trace {path}: {e}");
                std::process::exit(1);
            }
            let snapshot = rec.snapshot();
            println!(
                "  trace: {} events, {} metric rows -> {path}",
                rec.trace().len(),
                snapshot.rows.len()
            );
        }
        if let Some(path) = &args.metrics {
            let snapshot = rec.snapshot();
            if let Err(e) = std::fs::write(path, snapshot.to_csv()) {
                eprintln!("failed to write metrics {path}: {e}");
                std::process::exit(1);
            }
            println!("  metrics: {} rows -> {path}", snapshot.rows.len());
        }
    }
    if let Some((fan, dir)) = fanout {
        let mut fan = fan.lock().unwrap();
        // Write the per-replica JSONL files (replica-<i>.jsonl +
        // harness.jsonl) that set_trace_dir configured.
        hs1_obs::Observer::flush(&mut *fan);
        let merged = fan.merged();
        let quorum = cluster_n - (cluster_n - 1) / 3;
        let paths = hs1_obs::critical_path::analyze(&merged.events, quorum);
        let finalized = hs1_obs::critical_path::finalized_blocks(&merged.events);

        let write = |name: &str, body: String| {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        write("cluster.jsonl", merged.to_jsonl());
        write("critical_path.csv", hs1_obs::attribution_csv(&paths));
        write("trace.perfetto.json", hs1_obs::perfetto::chrome_trace_json(&merged.events));
        if let Some(path) = &args.metrics {
            let snapshot = fan.snapshot();
            if let Err(e) = std::fs::write(path, snapshot.to_csv()) {
                eprintln!("failed to write metrics {path}: {e}");
                std::process::exit(1);
            }
            println!("  metrics: {} rows -> {path}", snapshot.rows.len());
        }
        println!(
            "  cluster trace: {} events across {} replica lanes -> {}",
            merged.events.len(),
            fan.n(),
            dir.join("cluster.jsonl").display()
        );
        println!(
            "  critical path: {} blocks attributed ({} finalized), hops telescope exactly",
            paths.len(),
            finalized
        );
        println!("  perfetto: {}", dir.join("trace.perfetto.json").display());

        // Canary: every finalized block must get an attributed critical
        // path, and each path's hop durations must telescope exactly to
        // its end-to-end latency. Runs after the artifacts are written so
        // a failure leaves the trace on disk for inspection.
        if paths.len() < finalized {
            eprintln!(
                "CRITICAL-PATH CANARY FAILED: {} finalized blocks but only {} attributed paths",
                finalized,
                paths.len()
            );
            std::process::exit(1);
        }
        for p in &paths {
            let hop_sum: u64 = (0..5).map(|i| p.hop_ns(i)).sum();
            if hop_sum != p.e2e_ns() {
                eprintln!(
                    "CRITICAL-PATH CANARY FAILED: block {:#018x} hops sum to {hop_sum}ns \
                     but e2e is {}ns",
                    p.block,
                    p.e2e_ns()
                );
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if let Some(spec) = &args.replay {
        replay(&args, spec);
    }

    let cells = args.seeds * args.protocols.len() as u64;
    println!(
        "chaos sweep: {} seeds x {} protocols = {cells} runs ({}s sim each, n=4)",
        args.seeds,
        args.protocols.len(),
        args.sim_seconds,
    );
    let started = std::time::Instant::now();
    let quiet = args.quiet;
    let result = sweep(
        &args.protocols,
        args.start,
        args.seeds,
        &args.config,
        4,
        args.sim_seconds,
        args.threshold,
        args.inject,
        |case, report| {
            if !quiet {
                println!(
                    "  seed={:<4} {:<10} tput={:>8.0} tx/s dropped={:<5} dup={:<4} crashes={} \
                     snap={} adv={} rot={} ok={}",
                    case.plan.seed,
                    protocol_token(case.protocol),
                    report.throughput_tps,
                    report.chaos.dropped_msgs,
                    report.chaos.duplicated_msgs,
                    report.chaos.crashes,
                    report.chaos.snapshot_syncs,
                    report.chaos.adversaries,
                    report.chaos.bitrot_events,
                    report.invariants_ok(),
                );
            }
        },
    );
    match result {
        Ok(passed) => {
            println!(
                "all {passed} chaos runs passed in {:.1}s wall",
                started.elapsed().as_secs_f64()
            );
        }
        Err(failure) => {
            eprintln!("\nCHAOS FAILURE under {}:", failure.case.protocol.name());
            for v in &failure.report.invariant_violations {
                eprintln!("  - {v}");
            }
            eprintln!("  seed     : {}", failure.case.plan.seed);
            eprintln!("  plan     : {}", failure.case.plan);
            eprintln!("  shrunk   : {} ({} runs)", failure.minimized.plan, failure.shrink_runs);
            eprintln!("  fingerprint: {:#018x}", failure.report.fingerprint);
            eprintln!("\nreplay the original:\n  {}", replay_command(&failure.case));
            eprintln!("\nreplay the minimized schedule:\n  {}", replay_command(&failure.minimized));
            std::process::exit(1);
        }
    }
}
