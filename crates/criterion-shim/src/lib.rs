//! Offline stand-in for the `criterion` crate.
//!
//! The container that builds this workspace has no access to crates.io, so
//! this crate vendors the *subset* of criterion's API that the benches in
//! `hs1-bench` use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with
//! `iter` / `iter_batched`, [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop with
//! a calibrated iteration count — good enough for relative comparisons,
//! with none of criterion's statistics. Swap in the real crate by pointing
//! the `criterion` dependency back at crates.io; no bench code changes.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` like the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Mirrors `criterion::BatchSize`; only affects how many setup calls we
/// amortize per timing pass (the shim always re-runs setup per batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Target measurement time per benchmark, overridable with
/// `CRITERION_SHIM_MEASURE_MS` (default 300 ms; real criterion uses 5 s).
fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MEASURE_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last routine measured.
    last_ns: f64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher { last_ns: f64::NAN }
    }

    /// Time `routine` by running it repeatedly inside a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that fills ~1/10 of the window.
        let window = measure_window();
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= window / 10 || iters >= 1 << 30 {
                // Final measurement pass scaled to fill the window.
                let scale = (window.as_secs_f64() / dt.as_secs_f64().max(1e-9)).min(1024.0);
                let final_iters = ((iters as f64) * scale).max(1.0) as u64;
                let t1 = Instant::now();
                for _ in 0..final_iters {
                    std_black_box(routine());
                }
                self.last_ns = t1.elapsed().as_secs_f64() * 1e9 / final_iters as f64;
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let window = measure_window();
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        while total < window && wall.elapsed() < window * 4 {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            total += t0.elapsed();
            iters += 1;
        }
        self.last_ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        println!("{full:<40} time: [{}]", fmt_ns(b.last_ns));
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench` plus an optional name filter; keep
        // the first free-standing arg as a substring filter like criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            let mut b = Bencher::new();
            f(&mut b);
            println!("{id:<40} time: [{}]", fmt_ns(b.last_ns));
        }
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// benchmark function against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
