//! The discrete-event loop: engines + network model + resource model +
//! client oracle — plus, when a chaos plan is installed, scheduled
//! partition/heal transitions and replica crash-restart through the real
//! `hs1-storage` recovery path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use crate::chaos::{ChaosEventKind, ChaosPlan};
use crate::cost::CostModel;
use crate::net::NetModel;
use crate::openloop::{ArrivalGen, OpenLoop};
use crate::oracle::{ClientOracle, LatencyHist};
use crate::statesync::CatchupModel;
use hs1_adversary::AdversaryStrategy;
use hs1_core::common::{SharedMempool, TxSource};
use hs1_core::persist::{Persistence, RecoveredState};
use hs1_core::replica::{Action, Replica, Timer};
use hs1_obs::{block_key, Obs, Stage};
use hs1_storage::{ReplicaStorage, StorageConfig};
use hs1_types::ids::Rank;
use hs1_types::{
    Block, BlockId, ClientId, Message, ProtocolKind, ReplicaId, ReplyKind, SimDuration, SimTime,
    SplitMix64, Transaction, View,
};
use hs1_workloads::Workload;

const RESPONSE_BYTES_PER_TX: usize = 96;

/// Pseudo-actor id for harness-level trace events (client-oracle
/// finality, per-block submit means) — distinct from any replica id.
pub const ORACLE_ACTOR: u32 = u32::MAX;

#[derive(Clone)]
enum Ev {
    /// Message bytes arrived at `to`; it now queues for CPU.
    Deliver { from: ReplicaId, to: ReplicaId, msg: Message },
    /// CPU processing finished; invoke the engine. `inc` is the target's
    /// incarnation at enqueue time: a crash kills in-flight processing.
    Handle { from: ReplicaId, to: ReplicaId, msg: Message, inc: u32 },
    /// `inc` guards against timers armed by a pre-crash incarnation.
    Timer { at: ReplicaId, timer: Timer, inc: u32 },
    /// A client request lands in the shared mempool.
    Submit { tx: Transaction },
    /// The next open-loop arrival fires (schedules its successor).
    OpenArrival,
    /// A scheduled chaos transition (partition/heal/crash/restart).
    Chaos { kind: ChaosEventKind },
    /// Recovery (and, if chosen, the modeled snapshot transfer) finished;
    /// the replica rejoins the network.
    RestartDone { replica: ReplicaId, inc: u32 },
}

/// Chaos-injection counters (all zero on fault-free runs).
#[derive(Clone, Debug, Default)]
pub struct ChaosStats {
    /// Messages lost to link faults, partitions, or a down receiver.
    pub dropped_msgs: u64,
    /// Extra copies delivered by link duplication.
    pub duplicated_msgs: u64,
    /// Copies delivered with a chaos reorder delay.
    pub reordered_msgs: u64,
    pub partitions: u64,
    pub crashes: u64,
    pub restarts: u64,
    /// Restarts whose gap made `CatchupModel` choose snapshot transfer.
    pub snapshot_syncs: u64,
    /// Restarts that caught up through per-block fetch replay.
    pub replay_catchups: u64,
    /// Bit-rot events applied to a downed replica's storage.
    pub bitrot_events: u64,
    /// Recoveries that (correctly) fail-stopped on unrecoverable rot —
    /// the replica stays down rather than rejoining with bad state.
    pub bitrot_failstops: u64,
    /// Modeled snapshot-download rotations away from chunk-corrupting
    /// adversarial peers.
    pub snapshot_rotations: u64,
    /// Adversarial backups wrapped around engines this run.
    pub adversaries: u64,
}

/// Everything the runner needs to crash-restart replicas mid-run:
/// per-replica journal directories, the storage config those journals
/// use, a factory for fresh engine instances, and the catch-up cost
/// model that prices replay vs snapshot at restart time.
pub struct ChaosRuntime {
    pub dirs: Vec<PathBuf>,
    pub storage: StorageConfig,
    pub rebuild: Box<dyn Fn(usize) -> Box<dyn Replica>>,
    pub catchup: CatchupModel,
    /// Override the model-derived snapshot threshold (blocks of gap).
    pub catchup_threshold: Option<u64>,
}

/// Post-crash placeholder: keeps the dead replica's last committed chain
/// and state root visible to the invariant checker while it is down.
struct Downed {
    id: ReplicaId,
    chain: Vec<BlockId>,
    root: hs1_crypto::Digest,
    view: View,
}

impl Replica for Downed {
    fn id(&self) -> ReplicaId {
        self.id
    }
    fn on_init(&mut self, _now: SimTime, _out: &mut Vec<Action>) {}
    fn on_message(&mut self, _f: ReplicaId, _m: Message, _n: SimTime, _o: &mut Vec<Action>) {}
    fn on_timer(&mut self, _t: Timer, _n: SimTime, _o: &mut Vec<Action>) {}
    fn enqueue_txs(&mut self, _txs: &[Transaction]) {}
    fn current_view(&self) -> View {
        self.view
    }
    fn committed_head(&self) -> BlockId {
        *self.chain.last().expect("genesis always committed")
    }
    fn committed_chain(&self) -> Vec<BlockId> {
        self.chain.clone()
    }
    fn set_persistence(&mut self, _p: Box<dyn hs1_core::Persistence>) {}
    fn restore(&mut self, _rs: RecoveredState) {}
    fn state_root(&self) -> hs1_crypto::Digest {
        self.root
    }
}

/// Open-loop client state: the arrival stream plus the bookkeeping the
/// duplicate-submitting adversary and the round-robin client pool need.
struct OpenState {
    gen: ArrivalGen,
    cfg: OpenLoop,
    next_client: u32,
    /// Arrivals fired so far (drives `duplicate_every`).
    arrivals: u64,
    /// The previous fresh transaction (what a duplicate resubmits).
    last_tx: Option<Transaction>,
}

/// Aggregated counters produced by a run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    pub finalized_txs: u64,
    pub committed_blocks: u64,
    pub rollbacks: u64,
    pub views_entered: u64,
    pub orphaned_blocks: u64,
    /// Open-loop transactions offered inside the measurement window
    /// (fresh arrivals only; zero on closed-loop runs).
    pub offered_txs: u64,
    /// Submissions rejected by mempool admission control inside the
    /// measurement window (backpressure).
    pub admission_drops: u64,
    /// Duplicate submissions dropped by mempool admission dedup
    /// (whole-run total, from the shared pool's counter).
    pub requests_deduped: u64,
    /// Replica responses observed by the client oracle (spec, committed).
    pub responses: (u64, u64),
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub invariant_violations: Vec<String>,
    pub chaos: ChaosStats,
}

pub struct SimRunner {
    engines: Vec<Box<dyn Replica>>,
    net: NetModel,
    cost: CostModel,
    quorum: usize,

    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Ev>,
    seq: u64,
    now: SimTime,
    cpu_free: Vec<SimTime>,
    nic_free: Vec<SimTime>,
    rng: SplitMix64,

    mempool: SharedMempool,
    oracle: ClientOracle,
    workload: Box<dyn Workload>,
    client_seq: HashMap<ClientId, u64>,
    request_delay: SimDuration,
    /// Open-loop arrival machinery; `None` = closed-loop clients.
    open_loop: Option<OpenState>,

    /// All proposed blocks in flight (for orphan resurrection).
    proposed: HashMap<BlockId, Arc<Block>>,
    committed_first: HashSet<BlockId>,
    /// Finality times of blocks finalized late (for invariant leniency).
    late_final: Vec<(BlockId, SimTime)>,
    /// Rank of every finalized block (invariant checking).
    finalized_ranks: HashMap<BlockId, Rank>,
    /// Highest committed rank seen anywhere.
    max_committed_rank: Rank,

    // -- chaos state (inert on fault-free runs) -----------------------------
    /// Crash-restart machinery; `None` disables mid-run crash handling.
    chaos_rt: Option<ChaosRuntime>,
    /// Replicas currently down (messages and timers are dropped).
    crashed: Vec<bool>,
    /// Bumped at every crash; stale Handle/Timer events are discarded.
    incarnation: Vec<u32>,
    /// Per-replica timer-rate factors (clock-skew axis; 1.0 = nominal).
    timer_rate: Vec<f64>,
    /// Replicas whose on-disk state was rotted since their last crash:
    /// the recovery oracle switches from "preserve everything" to
    /// "fail-stop or clean prefix, never silent divergence".
    bitrot: Vec<bool>,
    /// Seed the bit-flip positions derive from (the plan seed).
    chaos_seed: u64,
    /// Adversary strategy per replica (None = honest), used by the
    /// modeled snapshot path and the honest-subset oracles.
    adversary: Vec<Option<AdversaryStrategy>>,
    /// Every proposed block body ever seen (never pruned): the archive a
    /// modeled snapshot install draws bodies from.
    bodies: HashMap<BlockId, Arc<Block>>,
    /// Committed chain + state root captured at crash time, checked
    /// against the recovered state at restart (commits must survive).
    precrash: HashMap<usize, (Vec<BlockId>, hs1_crypto::Digest)>,
    /// `(time, committed_blocks)` at the last heal/rejoin: liveness must
    /// resume after it.
    liveness_mark: Option<(SimTime, u64)>,

    warmup_end: SimTime,
    window_end: SimTime,
    hist: LatencyHist,
    stats: RunStats,
    /// Observability sink shared with every engine; the runner drives its
    /// manual clock to `now` so trace timestamps are sim-time (and thus
    /// byte-reproducible per seed).
    obs: Obs,
    /// `HS1_CHAOS_DEBUG` set: trace view entries and commits to stderr
    /// (chaos-failure forensics; cached so the hot path pays one bool).
    debug_trace: bool,
}

impl SimRunner {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        engines: Vec<Box<dyn Replica>>,
        mempool: SharedMempool,
        net: NetModel,
        cost: CostModel,
        protocol: ProtocolKind,
        f: usize,
        workload: Box<dyn Workload>,
        seed: u64,
    ) -> SimRunner {
        let n = engines.len();
        let mut rng = SplitMix64::new(seed ^ 0x51e5);
        let request_delay = (0..n)
            .map(|r| net.client_delay(ReplicaId(r as u32), &mut rng))
            .min()
            .unwrap_or(SimDuration::ZERO);
        SimRunner {
            quorum: n - f,
            oracle: ClientOracle::new(n, f, protocol),
            engines,
            net,
            cost,
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            cpu_free: vec![SimTime::ZERO; n],
            nic_free: vec![SimTime::ZERO; n],
            rng,
            mempool,
            workload,
            client_seq: HashMap::new(),
            request_delay,
            open_loop: None,
            proposed: HashMap::new(),
            committed_first: HashSet::new(),
            late_final: Vec::new(),
            finalized_ranks: HashMap::new(),
            max_committed_rank: Rank::GENESIS,
            chaos_rt: None,
            crashed: vec![false; n],
            incarnation: vec![0; n],
            timer_rate: vec![1.0; n],
            bitrot: vec![false; n],
            chaos_seed: 0,
            adversary: vec![None; n],
            bodies: HashMap::new(),
            precrash: HashMap::new(),
            liveness_mark: None,
            warmup_end: SimTime::ZERO,
            window_end: SimTime::MAX,
            hist: LatencyHist::default(),
            stats: RunStats::default(),
            obs: Obs::noop(),
            debug_trace: std::env::var_os("HS1_CHAOS_DEBUG").is_some(),
        }
    }

    fn n(&self) -> usize {
        self.engines.len()
    }

    /// Install an observability sink in the runner and every engine. The
    /// sink's clock should be [`hs1_obs::Clock::manual`]; the runner
    /// advances it to sim-time before each event, so all trace timestamps
    /// are deterministic per seed. Pure observer: fingerprints are
    /// identical with or without a recording sink.
    pub fn set_observer(&mut self, obs: Obs) {
        for e in self.engines.iter_mut() {
            e.set_observer(obs.clone());
        }
        self.obs = obs;
    }

    /// Install a chaos plan: link faults go to the network model, the
    /// scheduled transitions enter the event heap, and (when the plan
    /// crashes replicas) `rt` supplies the storage dirs + engine factory
    /// the restart path needs.
    pub fn install_chaos(&mut self, plan: &ChaosPlan, rt: Option<ChaosRuntime>) {
        self.net.install_chaos(plan);
        if plan.has_crashes() {
            assert!(rt.is_some(), "a plan with crash events needs a ChaosRuntime");
        }
        self.chaos_rt = rt;
        self.chaos_seed = plan.seed;
        if plan.skew.len() == self.n() {
            self.timer_rate = plan.skew.clone();
        }
        self.note_adversaries(
            &plan.adversaries.iter().map(|&(r, s)| (r as usize, s)).collect::<Vec<_>>(),
        );
        for ev in &plan.events {
            self.push(ev.at, Ev::Chaos { kind: ev.kind.clone() });
        }
    }

    /// Record which replicas run behind an adversary wrapper (the
    /// scenario wraps them; the runner needs the placement for the
    /// modeled snapshot path and the honest-subset oracles). Overrides
    /// whatever the installed plan declared — the scenario passes the
    /// merged plan + explicit set.
    pub fn note_adversaries(&mut self, set: &[(usize, AdversaryStrategy)]) {
        self.adversary = vec![None; self.n()];
        for &(r, s) in set {
            if r < self.n() {
                self.adversary[r] = Some(s);
            }
        }
        self.stats.chaos.adversaries = set.len() as u64;
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let idx = self.events.len();
        self.events.push(ev);
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Spawn `clients` closed-loop clients, staggered over the first
    /// millisecond.
    pub fn spawn_clients(&mut self, clients: usize) {
        for c in 0..clients {
            let client = ClientId(c as u32);
            let submit = SimTime::ZERO + SimDuration::from_nanos((c as u64) * 1_000);
            self.issue_tx(client, submit);
        }
    }

    /// Install open-loop clients instead of [`SimRunner::spawn_clients`]:
    /// transactions arrive on `cfg`'s schedule regardless of finality, so
    /// the run can be driven past saturation. The arrival RNG is a fork of
    /// the runner's stream — closed-loop runs consume zero extra draws, so
    /// their event sequences (and fingerprints) are untouched.
    pub fn spawn_open_loop(&mut self, cfg: OpenLoop) {
        let mut gen = ArrivalGen::new(&cfg, self.rng.fork(0x09e4_10ad));
        let first = gen.next_arrival();
        self.open_loop = Some(OpenState { gen, cfg, next_client: 0, arrivals: 0, last_tx: None });
        self.push(first, Ev::OpenArrival);
    }

    fn issue_tx(&mut self, client: ClientId, submit: SimTime) -> Transaction {
        let seq = self.client_seq.entry(client).or_insert(0);
        let tx = self.workload.next_tx(client, *seq);
        *seq += 1;
        self.oracle.note_submit(tx.id, submit);
        self.push(submit + self.request_delay, Ev::Submit { tx });
        tx
    }

    /// One open-loop arrival: issue a fresh transaction (or, for the
    /// duplicate-submitting adversary's turns, resubmit the previous one)
    /// and schedule the next arrival. Arrivals stop at the end of the
    /// measurement window — the drain phase measures completion, not new
    /// offered load.
    fn on_open_arrival(&mut self) {
        let Some(st) = self.open_loop.as_mut() else { return };
        st.arrivals += 1;
        let dup_tx =
            if st.cfg.duplicate_every > 0 && st.arrivals.is_multiple_of(st.cfg.duplicate_every) {
                st.last_tx
            } else {
                None
            };
        let client = ClientId(st.next_client);
        if dup_tx.is_none() {
            st.next_client = (st.next_client + 1) % st.cfg.clients.max(1) as u32;
        }
        match dup_tx {
            // Same TxId, resubmitted: admission dedup must drop it.
            Some(tx) => self.push(self.now + self.request_delay, Ev::Submit { tx }),
            None => {
                if self.now >= self.warmup_end && self.now <= self.window_end {
                    self.stats.offered_txs += 1;
                }
                let tx = self.issue_tx(client, self.now);
                self.open_loop.as_mut().expect("still installed").last_tx = Some(tx);
            }
        }
        let next = self.open_loop.as_mut().expect("still installed").gen.next_arrival();
        if next <= self.window_end {
            self.push(next, Ev::OpenArrival);
        }
    }

    /// Run the measured experiment: `warmup` then `window` of measurement,
    /// then a short drain for invariant checking. Returns the stats.
    pub fn run(&mut self, warmup: SimDuration, window: SimDuration) -> RunStats {
        self.warmup_end = SimTime::ZERO + warmup;
        self.window_end = self.warmup_end + window;
        self.obs.set_now(self.now.0);
        // Initialize engines.
        for i in 0..self.n() {
            let mut out = Vec::new();
            self.engines[i].on_init(self.now, &mut out);
            self.absorb(ReplicaId(i as u32), out);
        }
        let drain_until = self.window_end + SimDuration::from_millis(250);
        while let Some(Reverse((at, _, idx))) = self.heap.pop() {
            if at > drain_until {
                break;
            }
            self.now = at;
            self.obs.set_now(at.0);
            let ev = self.events[idx].clone();
            self.step(ev);
            if self.events.len() > 1 << 20 && self.heap.is_empty() {
                break;
            }
        }
        self.finish();
        self.stats.clone()
    }

    fn step(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, msg } => {
                let i = to.0 as usize;
                if self.crashed[i] {
                    // The receiving process is down; the bytes vanish.
                    self.stats.chaos.dropped_msgs += 1;
                    return;
                }
                let start = self.now.max(self.cpu_free[i]);
                let cost = self.cost.recv_cost(&msg, self.quorum);
                let done = start + cost;
                self.cpu_free[i] = done;
                self.push(done, Ev::Handle { from, to, msg, inc: self.incarnation[i] });
            }
            Ev::Handle { from, to, msg, inc } => {
                let i = to.0 as usize;
                if self.crashed[i] || inc != self.incarnation[i] {
                    // A crash killed the processing mid-flight.
                    self.stats.chaos.dropped_msgs += 1;
                    return;
                }
                let mut out = Vec::new();
                self.engines[i].on_message(from, msg, self.now, &mut out);
                self.absorb(to, out);
            }
            Ev::Timer { at, timer, inc } => {
                let i = at.0 as usize;
                if self.crashed[i] || inc != self.incarnation[i] {
                    return;
                }
                let mut out = Vec::new();
                self.engines[i].on_timer(timer, self.now, &mut out);
                self.absorb(at, out);
            }
            Ev::Submit { tx } => self.on_submit(tx),
            Ev::OpenArrival => self.on_open_arrival(),
            Ev::Chaos { kind } => self.on_chaos(kind),
            Ev::RestartDone { replica, inc } => {
                let i = replica.0 as usize;
                if inc != self.incarnation[i] {
                    return;
                }
                self.crashed[i] = false;
                // A fresh process has idle resources.
                self.cpu_free[i] = self.now;
                self.nic_free[i] = self.now;
                let mut out = Vec::new();
                self.engines[i].on_init(self.now, &mut out);
                self.absorb(replica, out);
                self.liveness_mark = Some((self.now, self.stats.committed_blocks));
            }
        }
    }

    /// A submission reaches the (shared) mempool — unless admission
    /// control rejects it. Bounded admission only engages in open-loop
    /// mode; closed-loop runs keep the historical unbounded pool.
    fn on_submit(&mut self, tx: Transaction) {
        let cap = self.open_loop.as_ref().map(|st| st.cfg.mempool_cap).unwrap_or(0);
        if cap > 0 && self.mempool.len() >= cap {
            // Backpressure: the pool is full, the submission is refused.
            // Forget its submit time so a later orphan scan cannot
            // resurrect a transaction the system never admitted.
            self.oracle.take_submit(tx.id);
            if self.now >= self.warmup_end && self.now <= self.window_end {
                self.stats.admission_drops += 1;
            }
            self.obs.with_actor(ORACLE_ACTOR).counter("admission_drops", 0, 1);
            return;
        }
        self.mempool.offer(tx);
        if self.obs.enabled() {
            // Queueing gauges, stamped at the harness actor: pool depth
            // and transactions submitted but not yet finalized.
            let o = self.obs.with_actor(ORACLE_ACTOR);
            o.gauge("mempool_depth", 0, self.mempool.len() as u64);
            o.gauge("inflight_txs", 0, self.oracle.pending() as u64);
        }
    }

    fn send_one(&mut self, from: ReplicaId, to: ReplicaId, msg: Message) {
        // Register proposals for orphan tracking and the body archive.
        if let Message::Propose(p) = &msg {
            if let std::collections::hash_map::Entry::Vacant(e) = self.proposed.entry(p.block.id())
            {
                e.insert(p.block.clone());
                if self.obs.enabled() {
                    // Queue wait (submit → first proposal), in sim-time
                    // nanoseconds. Histograms are metrics-only (never in
                    // the trace), and this one is seed-deterministic.
                    let o = self.obs.with_actor(ORACLE_ACTOR);
                    for t in &p.block.txs {
                        if let Some(s) = self.oracle.submit_time(t.id) {
                            o.observe_nanos("queue_wait_ns", self.now.since(s).0);
                        }
                    }
                }
            }
            if self.chaos_rt.is_some() {
                self.bodies.entry(p.block.id()).or_insert_with(|| p.block.clone());
            }
        }
        let i = from.0 as usize;
        if from == to {
            // Loopback skips the NIC (and chaos: a process cannot lose a
            // message to itself).
            self.push(self.now + SimDuration::from_micros(1), Ev::Deliver { from, to, msg });
            return;
        }
        let delivery = self.net.link_delivery(from, to, &mut self.rng);
        if delivery.copies == 0 {
            // Lost in flight; the sender still paid to transmit it.
            self.stats.chaos.dropped_msgs += 1;
            let size = msg.modeled_wire_size();
            let start = self.now.max(self.nic_free[i]);
            self.nic_free[i] = start + self.cost.tx_time(size);
            return;
        }
        let size = msg.modeled_wire_size();
        let start = self.now.max(self.nic_free[i]);
        let done = start + self.cost.tx_time(size);
        self.nic_free[i] = done;
        if delivery.copies > 1 {
            self.stats.chaos.duplicated_msgs += (delivery.copies - 1) as u64;
        }
        for c in 0..delivery.copies as usize {
            let extra = delivery.extra[c];
            if extra > SimDuration::ZERO {
                self.stats.chaos.reordered_msgs += 1;
            }
            let arrival = done + self.net.replica_delay(from, to, &mut self.rng) + extra;
            self.push(arrival, Ev::Deliver { from, to, msg: msg.clone() });
        }
    }

    fn on_chaos(&mut self, kind: ChaosEventKind) {
        match kind {
            ChaosEventKind::PartitionStart { side } => {
                self.net.set_partition(&side);
                self.stats.chaos.partitions += 1;
            }
            ChaosEventKind::PartitionHeal => {
                self.net.heal_partition();
                self.liveness_mark = Some((self.now, self.stats.committed_blocks));
            }
            ChaosEventKind::Crash { replica } => self.crash_replica(replica as usize),
            ChaosEventKind::BitRot { replica, flips } => self.apply_bitrot(replica, flips),
            ChaosEventKind::Restart { replica } => self.restart_replica(replica as usize),
        }
    }

    /// Storage bit rot: flip `flips` seeded bits across the downed
    /// replica's journal segments and checkpoints. Only meaningful while
    /// the replica is down (a live journal holds open handles and would
    /// not reread the flipped regions until recovery anyway).
    fn apply_bitrot(&mut self, replica: u32, flips: u32) {
        let i = replica as usize;
        if i >= self.n() || !self.crashed[i] {
            return;
        }
        let Some(rt) = self.chaos_rt.as_ref() else { return };
        let mut files: Vec<PathBuf> = match std::fs::read_dir(&rt.dirs[i]) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .map(|n| n.starts_with("wal-") || n.starts_with("ckpt-"))
                        .unwrap_or(false)
                })
                .collect(),
            Err(_) => return,
        };
        files.sort();
        if files.is_empty() {
            return;
        }
        // Positions derive from the plan seed (+ a per-event counter), so
        // a replayed run flips the same bits in the same files.
        let mut rng = SplitMix64::new(
            self.chaos_seed
                ^ 0xb17_1207
                ^ ((replica as u64) << 40)
                ^ self.stats.chaos.bitrot_events,
        );
        for _ in 0..flips {
            let path = &files[rng.next_range(files.len() as u64) as usize];
            let Ok(mut bytes) = std::fs::read(path) else { continue };
            if bytes.is_empty() {
                continue;
            }
            let off = rng.next_range(bytes.len() as u64) as usize;
            bytes[off] ^= 1u8 << rng.next_range(8);
            let _ = std::fs::write(path, bytes);
        }
        self.bitrot[i] = true;
        self.stats.chaos.bitrot_events += 1;
    }

    /// Kill replica `i`: all process state is gone (the engine is swapped
    /// for a [`Downed`] placeholder so the invariant checker still sees
    /// its last committed chain); only its journal directory survives.
    fn crash_replica(&mut self, i: usize) {
        if i >= self.n() || self.crashed[i] {
            return;
        }
        self.crashed[i] = true;
        self.incarnation[i] += 1;
        self.stats.chaos.crashes += 1;
        let chain = self.engines[i].committed_chain();
        let root = self.engines[i].state_root();
        let view = self.engines[i].current_view();
        self.precrash.insert(i, (chain.clone(), root));
        // Dropping the old engine closes its journal handles, like a
        // process exit would.
        self.engines[i] = Box::new(Downed { id: ReplicaId(i as u32), chain, root, view });
    }

    /// Bring replica `i` back through the real `hs1-storage` recovery
    /// path, then decide — with the calibrated [`CatchupModel`] — whether
    /// the gap to the live cluster warrants a modeled snapshot install
    /// (`hs1-statesync`'s decision point) or per-block fetch replay. The
    /// replica rejoins the network at `now` plus the modeled transfer
    /// time via [`Ev::RestartDone`].
    fn restart_replica(&mut self, i: usize) {
        if i >= self.n() || !self.crashed[i] {
            return;
        }
        let Some(rt) = self.chaos_rt.as_ref() else { return };
        self.stats.chaos.restarts += 1;
        let rotted = self.bitrot[i];
        let (state, mut storage) = match ReplicaStorage::open(&rt.dirs[i], rt.storage) {
            Ok(v) => v,
            Err(e) => {
                if rotted {
                    // Fail-stop is the *correct* answer to unrecoverable
                    // rot: the replica stays down (within the f budget —
                    // rot only targets the crashing replica) rather than
                    // rejoining on corrupt state. Liveness must resume
                    // among the remaining n − 1.
                    self.stats.chaos.bitrot_failstops += 1;
                    self.liveness_mark = Some((self.now, self.stats.committed_blocks));
                } else {
                    // A replica that cannot recover a *clean* journal is
                    // a finding the sweep surfaces.
                    self.stats
                        .invariant_violations
                        .push(format!("replica {i} recovery failed: {e}"));
                }
                return;
            }
        };
        self.bitrot[i] = false;
        let mut engine = (rt.rebuild)(i);
        engine.restore(state);

        // Commits must survive a crash: the recovered chain extends (or
        // equals) what was committed at crash time, and replaying it
        // reproduces the same state root. Under bit rot the oracle is the
        // weaker "fail-stop or clean prefix": CRC-detected corruption may
        // truncate the recovered chain, but what survives must still be a
        // prefix of the pre-crash chain — never a silent divergence.
        if let Some((pre_chain, pre_root)) = self.precrash.remove(&i) {
            let recovered = engine.committed_chain();
            if rotted {
                if !pre_chain.starts_with(&recovered) && !recovered.starts_with(&pre_chain) {
                    self.stats.invariant_violations.push(format!(
                        "replica {i} bit-rot recovery silently diverged from its own history"
                    ));
                } else if recovered == pre_chain && engine.state_root() != pre_root {
                    self.stats.invariant_violations.push(format!(
                        "replica {i} bit-rot recovery diverged in state at equal chain"
                    ));
                }
            } else if !recovered.starts_with(&pre_chain) {
                self.stats.invariant_violations.push(format!(
                    "replica {i} recovery lost committed blocks ({} -> {})",
                    pre_chain.len(),
                    recovered.len()
                ));
            } else if recovered == pre_chain && engine.state_root() != pre_root {
                self.stats
                    .invariant_violations
                    .push(format!("replica {i} recovery replay diverged from pre-crash state"));
            }
        }

        // Gap to the live cluster, measured against the longest committed
        // chain of any up replica.
        let own = engine.committed_chain();
        let peer = (0..self.n())
            .filter(|&p| p != i && !self.crashed[p])
            .map(|p| self.engines[p].committed_chain())
            .max_by_key(|c| c.len())
            .unwrap_or_default();
        let gap = peer.len().saturating_sub(own.len()) as u64;

        let mut model = rt.catchup.clone();
        model.chain_len = peer.len() as u64;
        // Materialized state grows with commit history (writes upper-bound
        // the distinct keys an image must carry).
        model.state_entries = model.chain_len * model.txs_per_block;
        let threshold = rt.catchup_threshold.unwrap_or_else(|| model.crossover_blocks());

        // The f+1-manifest trust boundary under adversaries: snapshot
        // agreement needs f+1 *honest* up peers behind one manifest key
        // (a chunk-corrupting adversary serves an honest manifest — its
        // lie is only detectable per chunk). Without that margin, the
        // joiner falls back to per-block replay.
        let up_peers: Vec<usize> = (0..self.n()).filter(|&p| p != i && !self.crashed[p]).collect();
        let corrupt_snapshot =
            |p: &usize| self.adversary[*p] == Some(AdversaryStrategy::CorruptSnapshot);
        let honest_up = up_peers.iter().filter(|p| !corrupt_snapshot(p)).count();
        let f = self.n() - self.quorum;
        let agreement_possible = honest_up > f;

        let mut delay = SimDuration::ZERO;
        if gap > 0 && gap >= threshold && agreement_possible {
            // Snapshot decision: install the peers' committed suffix as a
            // verified image (bodies come from the runner's archive — the
            // modeled analog of chunk transfer) and charge the modeled
            // transfer time before the replica rejoins. Blocks the
            // cluster commits *during* the transfer are the model's
            // residual; the live fetch path replays them organically.
            let suffix: Option<Vec<Arc<Block>>> =
                peer[own.len()..].iter().map(|id| self.bodies.get(id).cloned()).collect();
            if let Some(suffix) = suffix {
                let peer_view = (0..self.n())
                    .filter(|&p| p != i && !self.crashed[p])
                    .map(|p| self.engines[p].current_view())
                    .max()
                    .unwrap_or(View::GENESIS);
                engine.restore(RecoveredState {
                    view: peer_view,
                    decided: suffix.clone(),
                    ..Default::default()
                });
                // Mirror `ReplicaStorage::install_snapshot`: the adopted
                // suffix must be journaled before going live, or the next
                // recovery replays new commits onto a pre-sync base.
                for b in &suffix {
                    storage.on_commit(b);
                }
                storage.on_view(peer_view);
                storage.sync();
                delay = model.snapshot_time();
                // hs1-statesync downloads from the lowest-id agreeing
                // peer and rotates on a CRC-failing chunk: every
                // chunk-corrupting adversary ahead of the first honest
                // peer costs one rejected chunk round trip before the
                // ban/rotate moves on.
                let rotations = up_peers.iter().take_while(|p| corrupt_snapshot(p)).count() as u64;
                if rotations > 0 {
                    let per_rotation = model.rtt + model.cost.tx_time(model.chunk_bytes as usize);
                    delay += per_rotation * rotations;
                    self.stats.chaos.snapshot_rotations += rotations;
                }
                self.stats.chaos.snapshot_syncs += 1;
            } else {
                // Archive miss (should not happen — every proposal is
                // archived); fall back to live replay.
                self.stats.chaos.replay_catchups += 1;
            }
        } else if gap > 0 {
            self.stats.chaos.replay_catchups += 1;
        }

        storage.set_observer(self.obs.with_actor(i as u32));
        engine.set_observer(self.obs.clone());
        engine.set_persistence(Box::new(storage));
        self.engines[i] = engine;
        let inc = self.incarnation[i];
        self.push(self.now + delay, Ev::RestartDone { replica: ReplicaId(i as u32), inc });
    }

    fn absorb(&mut self, from: ReplicaId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => self.send_one(from, to, msg),
                Action::Broadcast { msg } => {
                    for r in 0..self.n() {
                        self.send_one(from, ReplicaId(r as u32), msg.clone());
                    }
                }
                Action::SetTimer { timer, at } => {
                    let at =
                        if at <= self.now { self.now + SimDuration::from_nanos(1) } else { at };
                    // Clock skew: a replica whose clock runs at rate r
                    // sees every timer interval stretched/compressed by
                    // r. Exact skip at 1.0 keeps fault-free runs
                    // bit-identical.
                    let rate = self.timer_rate[from.0 as usize];
                    let at = if rate == 1.0 {
                        at
                    } else {
                        // Truncation must not collapse the 1 ns
                        // forward-progress clamp above to zero.
                        let delay = at.since(self.now).0 as f64 * rate;
                        self.now + SimDuration::from_nanos((delay as u64).max(1))
                    };
                    let inc = self.incarnation[from.0 as usize];
                    self.push(at, Ev::Timer { at: from, timer, inc });
                }
                Action::Executed { block, kind, .. } => self.on_executed(from, block, kind),
                Action::Committed { block } => {
                    if self.debug_trace {
                        eprintln!(
                            "{:.4} r{} COMMIT h={}",
                            self.now.as_secs_f64(),
                            from.0,
                            self.engines[from.0 as usize].committed_chain().len()
                        );
                    }
                    self.on_committed(block)
                }
                Action::RolledBack { blocks } => self.stats.rollbacks += blocks as u64,
                Action::EnteredView { view } => {
                    if self.debug_trace {
                        eprintln!("{:.4} r{} VIEW {}", self.now.as_secs_f64(), from.0, view.0);
                    }
                    if from == ReplicaId(0) {
                        self.stats.views_entered += 1;
                    }
                }
            }
        }
    }

    fn on_executed(&mut self, from: ReplicaId, block: Arc<Block>, kind: ReplyKind) {
        if !self.committed_first.contains(&block.id()) {
            self.proposed.entry(block.id()).or_insert_with(|| block.clone());
        }
        let i = from.0 as usize;
        // Durable deployments fsync the journal record (SpecMark or
        // Decided, per policy) before the response may leave; the fsync
        // also occupies the replica's CPU lane.
        let fsync = match kind {
            ReplyKind::Speculative if self.cost.disk.fsync_on_speculate => self.cost.disk.fsync,
            ReplyKind::Committed if self.cost.disk.fsync_on_commit => self.cost.disk.fsync,
            _ => SimDuration::ZERO,
        };
        let ready = if fsync > SimDuration::ZERO {
            self.cpu_free[i] = self.now.max(self.cpu_free[i]) + fsync;
            self.cpu_free[i]
        } else {
            self.now
        };
        // Responses serialize through the replica's NIC.
        let bytes = block.txs.len() * RESPONSE_BYTES_PER_TX;
        let start = ready.max(self.nic_free[i]);
        let done = start + self.cost.tx_time(bytes);
        self.nic_free[i] = done;
        let arrival = done + self.net.client_delay(from, &mut self.rng);
        if self.obs.enabled() {
            // Stamped at client arrival: the moment this replica's answer
            // became observable (the quantity finality is defined over).
            self.obs.with_actor(from.0).stage_at(
                Stage::Responded,
                block_key(block.id()),
                arrival.0,
            );
        }
        match kind {
            ReplyKind::Speculative => self.stats.responses.0 += 1,
            ReplyKind::Committed => self.stats.responses.1 += 1,
        }
        if let Some(fin) = self.oracle.on_response(from, block.id(), kind, arrival) {
            self.on_finality(block, fin);
        }
    }

    fn on_finality(&mut self, block: Arc<Block>, fin: SimTime) {
        if fin > self.window_end {
            self.late_final.push((block.id(), fin));
        }
        if self.obs.enabled() {
            let key = block_key(block.id());
            let oracle = self.obs.with_actor(ORACLE_ACTOR);
            oracle.point_at("finality", key, block.txs.len() as u64, fin.0);
            // Mean submit time of the block's transactions: the t0 the
            // latency-breakdown bench anchors its stage decomposition at.
            let submits: Vec<u64> = block
                .txs
                .iter()
                .filter_map(|t| self.oracle.submit_time(t.id))
                .map(|s| s.0)
                .collect();
            if !submits.is_empty() {
                let mean = submits.iter().sum::<u64>() / submits.len() as u64;
                oracle.point_at("submit_mean", key, mean, fin.0);
            }
        }
        self.finalized_ranks.insert(block.id(), Rank::new(block.view, block.slot));
        let closed_loop = self.open_loop.is_none();
        for tx in &block.txs {
            let submit = self.oracle.take_submit(tx.id);
            if fin >= self.warmup_end && fin <= self.window_end {
                self.stats.finalized_txs += 1;
                if let Some(s) = submit {
                    self.hist.record(fin.since(s).0);
                }
            }
            // Closed loop: the client issues its next transaction. Open
            // loop: arrivals are scheduled by the arrival process alone.
            if closed_loop {
                let client = tx.id.client;
                self.issue_tx(client, fin);
            }
        }
        if self.stats.finalized_txs.is_multiple_of(4096) {
            self.oracle.gc();
        }
    }

    fn on_committed(&mut self, block: Arc<Block>) {
        let id = block.id();
        let first = self.committed_first.insert(id);
        self.proposed.remove(&id);
        if !first {
            return;
        }
        self.stats.committed_blocks += 1;
        // Orphan scan: any still-pending block ranked strictly below the
        // committed view can never commit (chains commit in rank order);
        // resurrect its unfinalized transactions.
        let rank = Rank::new(block.view, block.slot);
        if rank > self.max_committed_rank {
            self.max_committed_rank = rank;
        }
        // Sort the scan's hits: HashMap iteration order is not stable
        // across runs, and resurrect order shapes future batches — the
        // byte-for-byte replay guarantee forbids that leaking through.
        let mut orphans: Vec<BlockId> = self
            .proposed
            .iter()
            .filter(|(_, b)| b.view < rank.view && Rank::new(b.view, b.slot) <= rank)
            .map(|(id, _)| *id)
            .collect();
        orphans.sort_unstable_by_key(|id| id.0 .0);
        for oid in orphans {
            if let Some(ob) = self.proposed.remove(&oid) {
                self.stats.orphaned_blocks += 1;
                let pending: Vec<Transaction> = ob
                    .txs
                    .iter()
                    .filter(|t| self.oracle.submit_time(t.id).is_some())
                    .copied()
                    .collect();
                self.mempool.resurrect(&pending);
            }
        }
    }

    fn finish(&mut self) {
        self.stats.mean_latency_ms = self.hist.mean_ms();
        self.stats.p50_latency_ms = self.hist.quantile_ms(0.5);
        self.stats.p99_latency_ms = self.hist.quantile_ms(0.99);
        self.stats.requests_deduped = self.mempool.deduped();
        if self.stats.requests_deduped > 0 {
            self.obs.with_actor(ORACLE_ACTOR).counter(
                "requests_deduped",
                0,
                self.stats.requests_deduped,
            );
        }
        self.check_invariants();
    }

    /// Post-run safety checks: committed-prefix agreement across correct
    /// replicas, per-height commit agreement, state-root convergence for
    /// replicas at the same committed position, post-chaos liveness, and
    /// every finalized block on the canonical chain.
    fn check_invariants(&mut self) {
        let chains: Vec<Vec<BlockId>> = self.engines.iter().map(|e| e.committed_chain()).collect();

        // No two replicas may commit different blocks at the same height
        // (strictly stronger than the longest-prefix comparison below: it
        // also catches two short diverging chains).
        let max_len = chains.iter().map(|c| c.len()).max().unwrap_or(0);
        for h in 1..max_len {
            let mut seen: Option<BlockId> = None;
            for (i, c) in chains.iter().enumerate() {
                let Some(&id) = c.get(h) else { continue };
                match seen {
                    None => seen = Some(id),
                    Some(first) if first != id => {
                        self.stats.invariant_violations.push(format!(
                            "conflicting commits at height {h} (replica {i} disagrees)"
                        ));
                        break;
                    }
                    _ => {}
                }
            }
        }

        // Deterministic execution: identical committed chains must yield
        // identical state roots (a recovered or snapshot-synced replica
        // that reached the same position with different state diverged).
        let roots: Vec<_> = self.engines.iter().map(|e| e.state_root()).collect();
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                if chains[i] == chains[j] && roots[i] != roots[j] {
                    self.stats.invariant_violations.push(format!(
                        "replicas {i} and {j} share a committed chain but diverge in state root"
                    ));
                }
            }
        }

        // Post-GST liveness: after the last partition heal / replica
        // rejoin, the cluster must commit again (given it had room to).
        if let Some((at, height)) = self.liveness_mark {
            let slack = SimDuration::from_millis(100);
            if at + slack < self.window_end && self.stats.committed_blocks <= height {
                self.stats.invariant_violations.push(format!(
                    "no commits after faults quiesced at {:.3}s (height stuck at {height})",
                    at.as_secs_f64()
                ));
            }
        }
        // "Correct" replicas are those the scenario left honest; the
        // runner does not know fault assignments, so it checks agreement
        // over the longest mutually consistent set: any two chains must be
        // prefix-comparable unless one belongs to a Byzantine replica.
        // Scenario-level code passes the honest set through
        // `check_prefix_agreement`; here we run the weaker all-pairs check
        // against the longest chain and report divergence.
        let longest = chains.iter().max_by_key(|c| c.len()).cloned().unwrap_or_default();
        for (i, c) in chains.iter().enumerate() {
            if !longest.starts_with(c) && !c.starts_with(&longest) {
                self.stats
                    .invariant_violations
                    .push(format!("replica {i} committed chain diverges from longest"));
            }
        }
        let committed: HashSet<BlockId> = chains.iter().flatten().copied().collect();
        for (block, _fin) in self.oracle.drain_finalized() {
            if committed.contains(&block) {
                continue;
            }
            // An uncommitted finalized block is a *violation* only once
            // the committed frontier has moved decisively past it (it can
            // then never commit — it was orphaned after finality). Blocks
            // within two views of the frontier are merely commit-pending
            // at the end of the run (Corollary B.10 guarantees they
            // commit).
            let rank = self.finalized_ranks.get(&block).copied().unwrap_or(Rank::GENESIS);
            if self.max_committed_rank.view.0 > rank.view.0 + 2 {
                self.stats.invariant_violations.push(format!(
                    "finalized block {block:?} at {rank:?} orphaned (frontier {:?})",
                    self.max_committed_rank
                ));
            }
        }
    }

    /// Prefix-agreement check restricted to `honest` replica indices
    /// (used by scenarios that know the fault placement).
    pub fn check_prefix_agreement(&mut self, honest: &[usize]) {
        let chains: Vec<(usize, Vec<BlockId>)> =
            honest.iter().map(|&i| (i, self.engines[i].committed_chain())).collect();
        let longest =
            chains.iter().map(|(_, c)| c.clone()).max_by_key(|c| c.len()).unwrap_or_default();
        for (i, c) in &chains {
            if !longest.starts_with(c) {
                self.stats
                    .invariant_violations
                    .push(format!("honest replica {i} diverges from canonical chain"));
            }
        }
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SimRunner {
    /// Order-stable digest of the run's observable outcome: per-replica
    /// committed chains and state roots, invariant violations, and the
    /// headline counters. Two runs of the same seed + chaos plan must
    /// produce identical fingerprints — the byte-for-byte replay
    /// guarantee the chaos sweep prints seeds for.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in &self.engines {
            for id in e.committed_chain() {
                h = fnv1a(h, &id.0 .0);
            }
            h = fnv1a(h, &e.state_root().0);
            h = fnv1a(h, &e.current_view().0.to_le_bytes());
        }
        for v in &self.stats.invariant_violations {
            h = fnv1a(h, v.as_bytes());
        }
        for c in [
            self.stats.finalized_txs,
            self.stats.committed_blocks,
            self.stats.rollbacks,
            self.stats.offered_txs,
            self.stats.admission_drops,
            self.stats.requests_deduped,
            self.stats.chaos.dropped_msgs,
            self.stats.chaos.duplicated_msgs,
            self.stats.chaos.snapshot_syncs,
            self.stats.chaos.bitrot_events,
            self.stats.chaos.bitrot_failstops,
            self.stats.chaos.snapshot_rotations,
        ] {
            h = fnv1a(h, &c.to_le_bytes());
        }
        h
    }

    /// Per-replica committed-chain lengths (debug/inspection).
    pub fn committed_lengths(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.committed_chain().len()).collect()
    }
    /// Per-replica current views (debug/inspection).
    pub fn current_views(&self) -> Vec<u64> {
        self.engines.iter().map(|e| e.current_view().0).collect()
    }
}
