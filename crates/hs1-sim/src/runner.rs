//! The discrete-event loop: engines + network model + resource model +
//! client oracle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use crate::cost::CostModel;
use crate::net::NetModel;
use crate::oracle::{ClientOracle, LatencyHist};
use hs1_core::common::{SharedMempool, TxSource};
use hs1_core::replica::{Action, Replica, Timer};
use hs1_types::ids::Rank;
use hs1_types::{
    Block, BlockId, ClientId, Message, ProtocolKind, ReplicaId, ReplyKind, SimDuration, SimTime,
    SplitMix64, Transaction,
};
use hs1_workloads::Workload;

const RESPONSE_BYTES_PER_TX: usize = 96;

#[derive(Clone)]
enum Ev {
    /// Message bytes arrived at `to`; it now queues for CPU.
    Deliver {
        from: ReplicaId,
        to: ReplicaId,
        msg: Message,
    },
    /// CPU processing finished; invoke the engine.
    Handle {
        from: ReplicaId,
        to: ReplicaId,
        msg: Message,
    },
    Timer {
        at: ReplicaId,
        timer: Timer,
    },
    /// A client request lands in the shared mempool.
    Submit {
        tx: Transaction,
    },
}

/// Aggregated counters produced by a run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    pub finalized_txs: u64,
    pub committed_blocks: u64,
    pub rollbacks: u64,
    pub views_entered: u64,
    pub orphaned_blocks: u64,
    /// Replica responses observed by the client oracle (spec, committed).
    pub responses: (u64, u64),
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub invariant_violations: Vec<String>,
}

pub struct SimRunner {
    engines: Vec<Box<dyn Replica>>,
    net: NetModel,
    cost: CostModel,
    quorum: usize,

    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Ev>,
    seq: u64,
    now: SimTime,
    cpu_free: Vec<SimTime>,
    nic_free: Vec<SimTime>,
    rng: SplitMix64,

    mempool: SharedMempool,
    oracle: ClientOracle,
    workload: Box<dyn Workload>,
    client_seq: HashMap<ClientId, u64>,
    request_delay: SimDuration,

    /// All proposed blocks in flight (for orphan resurrection).
    proposed: HashMap<BlockId, Arc<Block>>,
    committed_first: HashSet<BlockId>,
    /// Finality times of blocks finalized late (for invariant leniency).
    late_final: Vec<(BlockId, SimTime)>,
    /// Rank of every finalized block (invariant checking).
    finalized_ranks: HashMap<BlockId, Rank>,
    /// Highest committed rank seen anywhere.
    max_committed_rank: Rank,

    warmup_end: SimTime,
    window_end: SimTime,
    hist: LatencyHist,
    stats: RunStats,
}

impl SimRunner {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        engines: Vec<Box<dyn Replica>>,
        mempool: SharedMempool,
        net: NetModel,
        cost: CostModel,
        protocol: ProtocolKind,
        f: usize,
        workload: Box<dyn Workload>,
        seed: u64,
    ) -> SimRunner {
        let n = engines.len();
        let mut rng = SplitMix64::new(seed ^ 0x51e5);
        let request_delay = (0..n)
            .map(|r| net.client_delay(ReplicaId(r as u32), &mut rng))
            .min()
            .unwrap_or(SimDuration::ZERO);
        SimRunner {
            quorum: n - f,
            oracle: ClientOracle::new(n, f, protocol),
            engines,
            net,
            cost,
            heap: BinaryHeap::new(),
            events: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            cpu_free: vec![SimTime::ZERO; n],
            nic_free: vec![SimTime::ZERO; n],
            rng,
            mempool,
            workload,
            client_seq: HashMap::new(),
            request_delay,
            proposed: HashMap::new(),
            committed_first: HashSet::new(),
            late_final: Vec::new(),
            finalized_ranks: HashMap::new(),
            max_committed_rank: Rank::GENESIS,
            warmup_end: SimTime::ZERO,
            window_end: SimTime::MAX,
            hist: LatencyHist::default(),
            stats: RunStats::default(),
        }
    }

    fn n(&self) -> usize {
        self.engines.len()
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        let idx = self.events.len();
        self.events.push(ev);
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Spawn `clients` closed-loop clients, staggered over the first
    /// millisecond.
    pub fn spawn_clients(&mut self, clients: usize) {
        for c in 0..clients {
            let client = ClientId(c as u32);
            let submit = SimTime::ZERO + SimDuration::from_nanos((c as u64) * 1_000);
            self.issue_tx(client, submit);
        }
    }

    fn issue_tx(&mut self, client: ClientId, submit: SimTime) {
        let seq = self.client_seq.entry(client).or_insert(0);
        let tx = self.workload.next_tx(client, *seq);
        *seq += 1;
        self.oracle.note_submit(tx.id, submit);
        self.push(submit + self.request_delay, Ev::Submit { tx });
    }

    /// Run the measured experiment: `warmup` then `window` of measurement,
    /// then a short drain for invariant checking. Returns the stats.
    pub fn run(&mut self, warmup: SimDuration, window: SimDuration) -> RunStats {
        self.warmup_end = SimTime::ZERO + warmup;
        self.window_end = self.warmup_end + window;
        // Initialize engines.
        for i in 0..self.n() {
            let mut out = Vec::new();
            self.engines[i].on_init(self.now, &mut out);
            self.absorb(ReplicaId(i as u32), out);
        }
        let drain_until = self.window_end + SimDuration::from_millis(250);
        while let Some(Reverse((at, _, idx))) = self.heap.pop() {
            if at > drain_until {
                break;
            }
            self.now = at;
            let ev = self.events[idx].clone();
            self.step(ev);
            if self.events.len() > 1 << 20 && self.heap.is_empty() {
                break;
            }
        }
        self.finish();
        self.stats.clone()
    }

    fn step(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, msg } => {
                let i = to.0 as usize;
                let start = self.now.max(self.cpu_free[i]);
                let cost = self.cost.recv_cost(&msg, self.quorum);
                let done = start + cost;
                self.cpu_free[i] = done;
                self.push(done, Ev::Handle { from, to, msg });
            }
            Ev::Handle { from, to, msg } => {
                let i = to.0 as usize;
                let mut out = Vec::new();
                self.engines[i].on_message(from, msg, self.now, &mut out);
                self.absorb(to, out);
            }
            Ev::Timer { at, timer } => {
                let i = at.0 as usize;
                let mut out = Vec::new();
                self.engines[i].on_timer(timer, self.now, &mut out);
                self.absorb(at, out);
            }
            Ev::Submit { tx } => {
                self.mempool.offer(tx);
            }
        }
    }

    fn send_one(&mut self, from: ReplicaId, to: ReplicaId, msg: Message) {
        // Register proposals for orphan tracking.
        if let Message::Propose(p) = &msg {
            self.proposed.entry(p.block.id()).or_insert_with(|| p.block.clone());
        }
        let i = from.0 as usize;
        if from == to {
            // Loopback skips the NIC.
            self.push(self.now + SimDuration::from_micros(1), Ev::Deliver { from, to, msg });
            return;
        }
        let size = msg.modeled_wire_size();
        let start = self.now.max(self.nic_free[i]);
        let done = start + self.cost.tx_time(size);
        self.nic_free[i] = done;
        let arrival = done + self.net.replica_delay(from, to, &mut self.rng);
        self.push(arrival, Ev::Deliver { from, to, msg });
    }

    fn absorb(&mut self, from: ReplicaId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => self.send_one(from, to, msg),
                Action::Broadcast { msg } => {
                    for r in 0..self.n() {
                        self.send_one(from, ReplicaId(r as u32), msg.clone());
                    }
                }
                Action::SetTimer { timer, at } => {
                    let at =
                        if at <= self.now { self.now + SimDuration::from_nanos(1) } else { at };
                    self.push(at, Ev::Timer { at: from, timer });
                }
                Action::Executed { block, kind, .. } => self.on_executed(from, block, kind),
                Action::Committed { block } => self.on_committed(block),
                Action::RolledBack { blocks } => self.stats.rollbacks += blocks as u64,
                Action::EnteredView { .. } => {
                    if from == ReplicaId(0) {
                        self.stats.views_entered += 1;
                    }
                }
            }
        }
    }

    fn on_executed(&mut self, from: ReplicaId, block: Arc<Block>, kind: ReplyKind) {
        if !self.committed_first.contains(&block.id()) {
            self.proposed.entry(block.id()).or_insert_with(|| block.clone());
        }
        let i = from.0 as usize;
        // Durable deployments fsync the journal record (SpecMark or
        // Decided, per policy) before the response may leave; the fsync
        // also occupies the replica's CPU lane.
        let fsync = match kind {
            ReplyKind::Speculative if self.cost.disk.fsync_on_speculate => self.cost.disk.fsync,
            ReplyKind::Committed if self.cost.disk.fsync_on_commit => self.cost.disk.fsync,
            _ => SimDuration::ZERO,
        };
        let ready = if fsync > SimDuration::ZERO {
            self.cpu_free[i] = self.now.max(self.cpu_free[i]) + fsync;
            self.cpu_free[i]
        } else {
            self.now
        };
        // Responses serialize through the replica's NIC.
        let bytes = block.txs.len() * RESPONSE_BYTES_PER_TX;
        let start = ready.max(self.nic_free[i]);
        let done = start + self.cost.tx_time(bytes);
        self.nic_free[i] = done;
        let arrival = done + self.net.client_delay(from, &mut self.rng);
        match kind {
            ReplyKind::Speculative => self.stats.responses.0 += 1,
            ReplyKind::Committed => self.stats.responses.1 += 1,
        }
        if let Some(fin) = self.oracle.on_response(from, block.id(), kind, arrival) {
            self.on_finality(block, fin);
        }
    }

    fn on_finality(&mut self, block: Arc<Block>, fin: SimTime) {
        if fin > self.window_end {
            self.late_final.push((block.id(), fin));
        }
        self.finalized_ranks.insert(block.id(), Rank::new(block.view, block.slot));
        for tx in &block.txs {
            let submit = self.oracle.take_submit(tx.id);
            if fin >= self.warmup_end && fin <= self.window_end {
                self.stats.finalized_txs += 1;
                if let Some(s) = submit {
                    self.hist.record(fin.since(s).0);
                }
            }
            // Closed loop: the client issues its next transaction.
            let client = tx.id.client;
            self.issue_tx(client, fin);
        }
        if self.stats.finalized_txs.is_multiple_of(4096) {
            self.oracle.gc();
        }
    }

    fn on_committed(&mut self, block: Arc<Block>) {
        let id = block.id();
        let first = self.committed_first.insert(id);
        self.proposed.remove(&id);
        if !first {
            return;
        }
        self.stats.committed_blocks += 1;
        // Orphan scan: any still-pending block ranked strictly below the
        // committed view can never commit (chains commit in rank order);
        // resurrect its unfinalized transactions.
        let rank = Rank::new(block.view, block.slot);
        if rank > self.max_committed_rank {
            self.max_committed_rank = rank;
        }
        let orphans: Vec<BlockId> = self
            .proposed
            .iter()
            .filter(|(_, b)| b.view < rank.view && Rank::new(b.view, b.slot) <= rank)
            .map(|(id, _)| *id)
            .collect();
        for oid in orphans {
            if let Some(ob) = self.proposed.remove(&oid) {
                self.stats.orphaned_blocks += 1;
                let pending: Vec<Transaction> = ob
                    .txs
                    .iter()
                    .filter(|t| self.oracle.submit_time(t.id).is_some())
                    .copied()
                    .collect();
                self.mempool.resurrect(&pending);
            }
        }
    }

    fn finish(&mut self) {
        self.stats.mean_latency_ms = self.hist.mean_ms();
        self.stats.p50_latency_ms = self.hist.quantile_ms(0.5);
        self.stats.p99_latency_ms = self.hist.quantile_ms(0.99);
        self.check_invariants();
    }

    /// Post-run safety checks: committed-prefix agreement across correct
    /// replicas, and every finalized block on the canonical chain.
    fn check_invariants(&mut self) {
        let chains: Vec<Vec<BlockId>> = self.engines.iter().map(|e| e.committed_chain()).collect();
        // "Correct" replicas are those the scenario left honest; the
        // runner does not know fault assignments, so it checks agreement
        // over the longest mutually consistent set: any two chains must be
        // prefix-comparable unless one belongs to a Byzantine replica.
        // Scenario-level code passes the honest set through
        // `check_prefix_agreement`; here we run the weaker all-pairs check
        // against the longest chain and report divergence.
        let longest = chains.iter().max_by_key(|c| c.len()).cloned().unwrap_or_default();
        for (i, c) in chains.iter().enumerate() {
            if !longest.starts_with(c) && !c.starts_with(&longest) {
                self.stats
                    .invariant_violations
                    .push(format!("replica {i} committed chain diverges from longest"));
            }
        }
        let committed: HashSet<BlockId> = chains.iter().flatten().copied().collect();
        for (block, _fin) in self.oracle.drain_finalized() {
            if committed.contains(&block) {
                continue;
            }
            // An uncommitted finalized block is a *violation* only once
            // the committed frontier has moved decisively past it (it can
            // then never commit — it was orphaned after finality). Blocks
            // within two views of the frontier are merely commit-pending
            // at the end of the run (Corollary B.10 guarantees they
            // commit).
            let rank = self.finalized_ranks.get(&block).copied().unwrap_or(Rank::GENESIS);
            if self.max_committed_rank.view.0 > rank.view.0 + 2 {
                self.stats.invariant_violations.push(format!(
                    "finalized block {block:?} at {rank:?} orphaned (frontier {:?})",
                    self.max_committed_rank
                ));
            }
        }
    }

    /// Prefix-agreement check restricted to `honest` replica indices
    /// (used by scenarios that know the fault placement).
    pub fn check_prefix_agreement(&mut self, honest: &[usize]) {
        let chains: Vec<(usize, Vec<BlockId>)> =
            honest.iter().map(|&i| (i, self.engines[i].committed_chain())).collect();
        let longest =
            chains.iter().map(|(_, c)| c.clone()).max_by_key(|c| c.len()).unwrap_or_default();
        for (i, c) in &chains {
            if !longest.starts_with(c) {
                self.stats
                    .invariant_violations
                    .push(format!("honest replica {i} diverges from canonical chain"));
            }
        }
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl SimRunner {
    /// Per-replica committed-chain lengths (debug/inspection).
    pub fn committed_lengths(&self) -> Vec<usize> {
        self.engines.iter().map(|e| e.committed_chain().len()).collect()
    }
    /// Per-replica current views (debug/inspection).
    pub fn current_views(&self) -> Vec<u64> {
        self.engines.iter().map(|e| e.current_view().0).collect()
    }
}
