//! Open-loop load generation: seed-deterministic arrival processes with
//! an offered load in tx/s, decoupled from finality.
//!
//! The closed-loop clients [`crate::runner::SimRunner::spawn_clients`]
//! models reissue on finalize, so the offered load always equals the
//! service rate and the system can never be pushed *past* saturation —
//! latency under overload, queue growth, and admission backpressure are
//! all invisible. Open-loop arrivals fix that: transactions arrive on a
//! schedule that does not care whether earlier ones finished, which is
//! how "heavy traffic from millions of users" actually behaves.
//!
//! Two arrival processes, both pure functions of the seed:
//!
//! * **Poisson** — exponential inter-arrival gaps at the offered rate,
//!   the standard memoryless model.
//! * **Bursty** — an on/off modulated Poisson: each `period` opens with an
//!   on-window covering `duty` of it, during which arrivals run at
//!   `offered / duty` (so the *average* rate still matches the offered
//!   load), followed by silence. Models synchronized client cohorts and
//!   retry storms.

use hs1_types::{SimDuration, SimTime, SplitMix64};

/// How open-loop arrivals are spaced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalKind {
    /// Memoryless arrivals at the offered rate.
    Poisson,
    /// On/off bursts: active for `duty` of each `period` at a peak rate
    /// of `offered / duty`, silent otherwise. `duty` is clamped to
    /// (0, 1]; `duty = 1` degenerates to [`ArrivalKind::Poisson`].
    Bursty { period: SimDuration, duty: f64 },
}

/// A complete open-loop client description, installed on a
/// [`crate::Scenario`] via [`crate::Scenario::open_loop`].
#[derive(Clone, Debug)]
pub struct OpenLoop {
    /// Offered load in transactions per second (averaged over bursts).
    pub offered_tps: f64,
    /// Arrival process shape.
    pub arrivals: ArrivalKind,
    /// Virtual client pool the arrivals round-robin over (distinct
    /// `TxId.client` values; affects key-space attribution only).
    pub clients: usize,
    /// Mempool admission bound: a submission arriving while the pool
    /// holds this many pending transactions is dropped (backpressure).
    /// `0` = unbounded.
    pub mempool_cap: usize,
    /// Adversarial duplicate-submitting client: every `k`-th arrival
    /// resubmits the previous transaction (same `TxId`) instead of a
    /// fresh one. `0` = none. The mempool's admission dedup must drop
    /// these, counted under `requests_deduped`.
    pub duplicate_every: u64,
}

impl OpenLoop {
    /// Poisson arrivals at `offered_tps` over a 256-client pool with a
    /// 4096-deep mempool bound.
    pub fn poisson(offered_tps: f64) -> OpenLoop {
        OpenLoop {
            offered_tps,
            arrivals: ArrivalKind::Poisson,
            clients: 256,
            mempool_cap: 4096,
            duplicate_every: 0,
        }
    }

    /// Bursty arrivals averaging `offered_tps`: 20 ms periods, 25% duty
    /// (4x peak rate inside each burst).
    pub fn bursty(offered_tps: f64) -> OpenLoop {
        OpenLoop {
            arrivals: ArrivalKind::Bursty { period: SimDuration::from_millis(20), duty: 0.25 },
            ..OpenLoop::poisson(offered_tps)
        }
    }

    pub fn clients(mut self, c: usize) -> OpenLoop {
        self.clients = c.max(1);
        self
    }

    pub fn mempool_cap(mut self, cap: usize) -> OpenLoop {
        self.mempool_cap = cap;
        self
    }

    pub fn duplicate_every(mut self, k: u64) -> OpenLoop {
        self.duplicate_every = k;
        self
    }
}

/// The deterministic arrival-time stream for one [`OpenLoop`] config.
///
/// Gaps are sampled in *active time* (time during on-windows) and mapped
/// to wall time afterwards, so the bursty mapping needs no rejection
/// loop: cumulative active time `a` lands at wall time
/// `floor(a / on) * period + (a mod on)`.
pub struct ArrivalGen {
    /// Peak rate (arrivals per active second).
    rate: f64,
    /// On-window length per period in seconds (0 = continuous Poisson).
    on_s: f64,
    period_s: f64,
    /// Cumulative active time of the last arrival, seconds.
    active_s: f64,
    rng: SplitMix64,
}

impl ArrivalGen {
    pub fn new(cfg: &OpenLoop, rng: SplitMix64) -> ArrivalGen {
        assert!(cfg.offered_tps > 0.0, "open-loop offered load must be positive");
        let (rate, on_s, period_s) = match cfg.arrivals {
            ArrivalKind::Poisson => (cfg.offered_tps, 0.0, 0.0),
            ArrivalKind::Bursty { period, duty } => {
                let duty = duty.clamp(1e-6, 1.0);
                if duty >= 1.0 {
                    (cfg.offered_tps, 0.0, 0.0)
                } else {
                    let period_s = period.as_secs_f64().max(1e-9);
                    (cfg.offered_tps / duty, period_s * duty, period_s)
                }
            }
        };
        ArrivalGen { rate, on_s, period_s, active_s: 0.0, rng }
    }

    /// The next arrival's wall time. Strictly monotone non-decreasing.
    pub fn next_arrival(&mut self) -> SimTime {
        // `1 - u` keeps the argument in (0, 1]: ln(0) never happens.
        let u = self.rng.next_f64();
        self.active_s += -(1.0 - u).ln() / self.rate;
        let wall_s = if self.on_s == 0.0 {
            self.active_s
        } else {
            let epoch = (self.active_s / self.on_s).floor();
            epoch * self.period_s + (self.active_s - epoch * self.on_s)
        };
        SimTime::ZERO + SimDuration::from_secs_f64(wall_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(cfg: &OpenLoop, seed: u64, n: usize) -> Vec<SimTime> {
        let mut g = ArrivalGen::new(cfg, SplitMix64::new(seed));
        (0..n).map(|_| g.next_arrival()).collect()
    }

    #[test]
    fn poisson_hits_the_offered_rate() {
        let cfg = OpenLoop::poisson(10_000.0);
        let ts = times(&cfg, 7, 20_000);
        let span = ts.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate - 10_000.0).abs() < 500.0, "measured {rate} tx/s");
    }

    #[test]
    fn arrivals_are_monotone_and_deterministic() {
        let cfg = OpenLoop::bursty(5_000.0);
        let a = times(&cfg, 11, 5_000);
        let b = times(&cfg, 11, 5_000);
        assert_eq!(a, b, "same seed, same arrival stream");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "monotone arrival times");
        assert_ne!(a, times(&cfg, 12, 5_000), "different seed, different stream");
    }

    #[test]
    fn bursty_matches_average_rate_but_concentrates_arrivals() {
        let cfg = OpenLoop::bursty(10_000.0); // 20 ms period, 25% duty
        let ts = times(&cfg, 3, 40_000);
        let span = ts.last().unwrap().as_secs_f64();
        let rate = 40_000.0 / span;
        assert!((rate - 10_000.0).abs() < 600.0, "average rate holds: {rate} tx/s");
        // Every arrival falls inside an on-window ([k*20ms, k*20ms+5ms)).
        for t in &ts {
            let in_period = t.as_secs_f64() % 0.020;
            assert!(in_period < 0.005 + 1e-9, "arrival at {in_period}s offset is inside a burst");
        }
    }

    #[test]
    fn duty_one_is_plain_poisson() {
        let bursty = OpenLoop {
            arrivals: ArrivalKind::Bursty { period: SimDuration::from_millis(20), duty: 1.0 },
            ..OpenLoop::poisson(8_000.0)
        };
        assert_eq!(times(&bursty, 5, 1_000), times(&OpenLoop::poisson(8_000.0), 5, 1_000));
    }
}
