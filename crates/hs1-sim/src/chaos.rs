//! Deterministic chaos: seed-derived fault schedules for the simulator.
//!
//! A [`ChaosPlan`] is a complete, replayable description of every fault a
//! run injects — per-link loss/duplication/reordering probabilities, a
//! partition/heal schedule between replica sets, and mid-run
//! crash-restart windows whose recovery goes through the real
//! `hs1-storage` journal/checkpoint path. The whole plan derives from one
//! `SplitMix64` seed via [`ChaosPlan::generate`], so a failing run
//! reproduces byte-for-byte from its seed; a *shrunk* plan (fault events
//! removed while the failure persists) is no longer seed-derivable, so
//! plans also round-trip through a compact text spec
//! ([`ChaosPlan::to_spec`] / [`ChaosPlan::from_spec`]) that the sweep
//! runner prints for one-command local replay.
//!
//! The design follows the FoundationDB simulation playbook: faults are
//! data, not code paths, and the schedule is explored by sweeping seeds
//! (`hs1-chaos`), not by hand-picking scenarios.

use hs1_adversary::AdversaryStrategy;
use hs1_types::{SimDuration, SimTime, SplitMix64};

/// Per-ordered-link fault probabilities (replica → replica messages; the
/// client path is modeled in aggregate and stays clean).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFault {
    /// Probability a message is lost in flight.
    pub drop: f64,
    /// Probability a message is delivered twice (network-level
    /// retransmission; independent delays per copy).
    pub dup: f64,
    /// Probability a copy is delayed by an extra uniform amount in
    /// `[0, reorder_delay)`, overtaking later traffic.
    pub reorder: f64,
}

/// One scheduled fault transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEventKind {
    /// Cut every link between `side` and its complement (bidirectional).
    PartitionStart { side: Vec<u32> },
    /// Remove the active partition.
    PartitionHeal,
    /// Kill replica `r`: its process state is lost, messages to and from
    /// it are dropped, only its on-disk journal/checkpoints survive.
    Crash { replica: u32 },
    /// Flip `flips` seeded bits across replica `r`'s journal segments and
    /// checkpoints while it is down (storage bit rot). The strengthened
    /// recovery oracle: the subsequent restart must either fail-stop or
    /// restore a clean prefix of the pre-crash chain — never silently
    /// diverge.
    BitRot { replica: u32, flips: u32 },
    /// Restart replica `r` through `hs1-storage` recovery.
    Restart { replica: u32 },
}

impl ChaosEventKind {
    fn spec_token(&self) -> String {
        match self {
            ChaosEventKind::PartitionStart { side } => {
                let ids: Vec<String> = side.iter().map(|r| r.to_string()).collect();
                format!("p{}", ids.join("+"))
            }
            ChaosEventKind::PartitionHeal => "h".to_string(),
            ChaosEventKind::Crash { replica } => format!("c{replica}"),
            ChaosEventKind::BitRot { replica, flips } => format!("b{replica}x{flips}"),
            ChaosEventKind::Restart { replica } => format!("r{replica}"),
        }
    }
}

/// A fault transition at a point in simulated time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    pub at: SimTime,
    pub kind: ChaosEventKind,
}

/// Knobs for [`ChaosPlan::generate`]: *caps* from which the seed derives
/// concrete per-link probabilities and event placements.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Max per-link drop probability (each link draws in `[0, cap]`).
    pub drop_p: f64,
    /// Max per-link duplication probability.
    pub dup_p: f64,
    /// Max per-link reorder probability.
    pub reorder_p: f64,
    /// Max extra delay a reordered copy picks up.
    pub reorder_delay: SimDuration,
    /// Partition/heal cycles to schedule.
    pub partitions: usize,
    /// Length of each partition window.
    pub partition_len: SimDuration,
    /// Crash-restart cycles to schedule.
    pub crashes: usize,
    /// Downtime of each crash window.
    pub downtime: SimDuration,
    /// Faults start no earlier than this (let the run warm up).
    pub start: SimDuration,
    /// Max adversarial backups; the seed draws `0..=min(this, f)` of
    /// them, with a seed-chosen in-model strategy each (see
    /// `hs1-adversary`). Combined with crash windows, the *union* of
    /// adversarial and crashing replicas stays ≤ f: when adversaries are
    /// active, crash windows target an adversary — chaos explores
    /// schedules within the fault model, it does not exceed it.
    pub adversaries: usize,
    /// Bits flipped in the crashing replica's journal/checkpoint files
    /// mid-window (0 disables the bit-rot axis).
    pub bitrot_flips: u32,
    /// Max per-replica timer-rate deviation (0.03 = clocks run up to
    /// ±3% fast/slow). The pacemaker's epoch synchronization must keep
    /// post-GST liveness despite replicas drifting apart.
    pub skew_max: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_p: 0.05,
            dup_p: 0.03,
            reorder_p: 0.05,
            reorder_delay: SimDuration::from_millis(5),
            partitions: 1,
            partition_len: SimDuration::from_millis(120),
            crashes: 1,
            downtime: SimDuration::from_millis(150),
            start: SimDuration::from_millis(100),
            adversaries: 1,
            bitrot_flips: 4,
            skew_max: 0.03,
        }
    }
}

impl ChaosConfig {
    /// Lossy links only — no partitions, no crashes.
    pub fn lossy_only() -> ChaosConfig {
        ChaosConfig { partitions: 0, crashes: 0, ..ChaosConfig::default() }
    }

    /// Clean links — only scheduled partition/crash events.
    pub fn events_only() -> ChaosConfig {
        ChaosConfig { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, ..ChaosConfig::default() }
    }

    /// Disable the adversary, bit-rot, and clock-skew axes (tests that
    /// isolate one legacy axis).
    pub fn without_new_axes(self) -> ChaosConfig {
        ChaosConfig { adversaries: 0, bitrot_flips: 0, skew_max: 0.0, ..self }
    }
}

/// A fully materialized fault schedule. Everything the simulator needs to
/// replay a chaotic run is here (plus the scenario seed, which the plan
/// records for convenience).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Scenario seed this plan was generated for (also seeds the link
    /// probability derivation).
    pub seed: u64,
    /// Replica count the link matrix was derived for.
    pub n: usize,
    /// Per-ordered-pair fault probabilities (`links[from][to]`; diagonal
    /// unused — loopback is never faulted).
    pub links: Vec<Vec<LinkFault>>,
    /// Max extra delay for reordered copies.
    pub reorder_delay: SimDuration,
    /// Scheduled transitions, sorted by time.
    pub events: Vec<ChaosEvent>,
    /// Per-replica timer-rate factors (clock skew; 1.0 everywhere means
    /// no skew and changes nothing).
    pub skew: Vec<f64>,
    /// Adversarial backups active for the whole run: `(replica,
    /// strategy)`, at most `f` of them, wrapped around the engine by the
    /// scenario (see `hs1-adversary`).
    pub adversaries: Vec<(u32, AdversaryStrategy)>,
}

impl ChaosPlan {
    /// A no-fault plan (useful as a shrinking terminal state).
    pub fn empty(seed: u64, n: usize) -> ChaosPlan {
        ChaosPlan {
            seed,
            n,
            links: vec![vec![LinkFault::default(); n]; n],
            reorder_delay: SimDuration::ZERO,
            events: Vec::new(),
            skew: vec![1.0; n],
            adversaries: Vec::new(),
        }
    }

    /// Derive a full schedule from `seed`. Events land in
    /// `[cfg.start, horizon)`; callers leave a fault-free tail after
    /// `horizon` so the post-GST liveness invariant has room to bite.
    /// Partition sides have 1..=f replicas (the majority side keeps
    /// quorum) and crash windows never overlap partitions, so at most `f`
    /// replicas are impaired at once — chaos explores schedules *within*
    /// the fault model, it does not exceed it.
    pub fn generate(seed: u64, cfg: &ChaosConfig, n: usize, horizon: SimTime) -> ChaosPlan {
        let mut plan = ChaosPlan::empty(seed, n);
        plan.reorder_delay = cfg.reorder_delay;

        let base = SplitMix64::new(seed ^ 0xc4a0_5c4a);
        let mut link_rng = base.fork(1);
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                plan.links[from][to] = LinkFault {
                    drop: cfg.drop_p * link_rng.next_f64(),
                    dup: cfg.dup_p * link_rng.next_f64(),
                    reorder: cfg.reorder_p * link_rng.next_f64(),
                };
            }
        }

        let f = (n - 1) / 3;

        // Adversarial backups: 0..=min(cap, f) replicas, each playing a
        // seed-chosen in-model strategy for the whole run. Drawn from an
        // own fork so the link/event derivations above/below are
        // unperturbed by this axis.
        let mut adv_rng = base.fork(3);
        let adv_cap = cfg.adversaries.min(f);
        if adv_cap > 0 {
            let k = adv_rng.next_range(adv_cap as u64 + 1) as usize;
            let strategies = AdversaryStrategy::IN_MODEL;
            plan.adversaries = adv_rng
                .sample_indices(n, k)
                .into_iter()
                .map(|r| {
                    let s = strategies[adv_rng.next_range(strategies.len() as u64) as usize];
                    (r as u32, s)
                })
                .collect();
        }

        // Clock skew: per-replica timer-rate factors in [1−max, 1+max].
        let mut skew_rng = base.fork(4);
        if cfg.skew_max > 0.0 {
            for rate in plan.skew.iter_mut() {
                *rate = 1.0 + cfg.skew_max * (2.0 * skew_rng.next_f64() - 1.0);
            }
        }

        // Slot partition and crash windows sequentially into the active
        // span with seed-chosen gaps, so windows never overlap each other.
        let mut ev_rng = base.fork(2);
        let mut cursor = SimTime::ZERO + cfg.start;
        let mut windows: Vec<(SimDuration, bool)> = Vec::new();
        for _ in 0..cfg.partitions {
            windows.push((cfg.partition_len, true));
        }
        for _ in 0..cfg.crashes {
            windows.push((cfg.downtime, false));
        }
        ev_rng.shuffle(&mut windows);
        for (len, is_partition) in windows {
            let gap = SimDuration::from_nanos(ev_rng.next_range(cfg.partition_len.0.max(1)));
            let at = cursor + gap;
            let end = at + len;
            if end >= horizon {
                break;
            }
            if is_partition && f >= 1 {
                let side_len = 1 + ev_rng.next_range(f as u64) as usize;
                let side: Vec<u32> =
                    ev_rng.sample_indices(n, side_len).into_iter().map(|i| i as u32).collect();
                plan.events.push(ChaosEvent { at, kind: ChaosEventKind::PartitionStart { side } });
                plan.events.push(ChaosEvent { at: end, kind: ChaosEventKind::PartitionHeal });
            } else if !is_partition {
                // With adversaries active, crash windows target an
                // adversary: the union of Byzantine and crashing replicas
                // must stay ≤ f, or a vote-damaging adversary plus a
                // fail-stopped honest disk would exceed the fault model.
                let replica = if plan.adversaries.is_empty() {
                    ev_rng.next_range(n as u64) as u32
                } else {
                    let pick = ev_rng.next_range(plan.adversaries.len() as u64) as usize;
                    plan.adversaries[pick].0
                };
                plan.events.push(ChaosEvent { at, kind: ChaosEventKind::Crash { replica } });
                // Roughly half the crash windows also rot the downed
                // replica's disk, so the sweep covers clean recovery and
                // corrupted recovery in the same seed range.
                if cfg.bitrot_flips > 0 && ev_rng.chance(0.5) {
                    plan.events.push(ChaosEvent {
                        at: at + SimDuration(len.0 / 2),
                        kind: ChaosEventKind::BitRot { replica, flips: cfg.bitrot_flips },
                    });
                }
                plan.events.push(ChaosEvent { at: end, kind: ChaosEventKind::Restart { replica } });
            }
            cursor = end;
        }
        plan.events.sort_by_key(|e| e.at.0);
        plan
    }

    /// Does any link carry a nonzero fault probability?
    pub fn has_link_faults(&self) -> bool {
        self.links.iter().flatten().any(|l| l.drop > 0.0 || l.dup > 0.0 || l.reorder > 0.0)
    }

    /// Does the schedule crash (and restart) any replica?
    pub fn has_crashes(&self) -> bool {
        self.events.iter().any(|e| matches!(e.kind, ChaosEventKind::Crash { .. }))
    }

    /// Does the schedule rot any replica's storage?
    pub fn has_bitrot(&self) -> bool {
        self.events.iter().any(|e| matches!(e.kind, ChaosEventKind::BitRot { .. }))
    }

    /// Does any replica's clock run fast or slow?
    pub fn skew_active(&self) -> bool {
        self.skew.iter().any(|&r| r != 1.0)
    }

    /// The plan with every clock back at nominal rate (shrinking).
    pub fn without_skew(&self) -> ChaosPlan {
        let mut plan = self.clone();
        plan.skew = vec![1.0; self.n];
        plan
    }

    /// The plan minus adversary `idx` (shrinking: adversaries drop one at
    /// a time toward a minimal failing plan).
    pub fn without_adversary(&self, idx: usize) -> ChaosPlan {
        let mut plan = self.clone();
        if idx < plan.adversaries.len() {
            plan.adversaries.remove(idx);
        }
        plan
    }

    /// Time of the last scheduled transition (liveness is checked after
    /// this point), or `None` for a pure link-fault plan.
    pub fn last_event_time(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Indices of `events` grouped into removable units: a
    /// `Crash`/`Restart` or `PartitionStart`/`PartitionHeal` pair is one
    /// unit (removing a crash without its restart would change the fault
    /// model, not shrink the schedule).
    pub fn removable_units(&self) -> Vec<Vec<usize>> {
        let mut units: Vec<Vec<usize>> = Vec::new();
        let mut open_partition: Option<usize> = None;
        let mut open_crash: Vec<(u32, usize)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            match &ev.kind {
                ChaosEventKind::PartitionStart { .. } => open_partition = Some(units.len()),
                ChaosEventKind::BitRot { replica, .. } => {
                    // Bit rot belongs to the crash window it falls inside:
                    // removing a crash without its rot (or vice versa)
                    // would change the fault, not shrink the schedule.
                    if let Some(&(_, u)) = open_crash.iter().find(|(r, _)| r == replica) {
                        if let Some(unit) = units.get_mut(u) {
                            unit.push(i);
                            continue;
                        }
                    }
                    units.push(vec![i]);
                    continue;
                }
                ChaosEventKind::PartitionHeal => {
                    if let Some(u) = open_partition.take() {
                        if let Some(unit) = units.get_mut(u) {
                            unit.push(i);
                            continue;
                        }
                    }
                    units.push(vec![i]);
                    continue;
                }
                ChaosEventKind::Crash { replica } => open_crash.push((*replica, units.len())),
                ChaosEventKind::Restart { replica } => {
                    if let Some(pos) = open_crash.iter().position(|(r, _)| r == replica) {
                        let (_, u) = open_crash.remove(pos);
                        if let Some(unit) = units.get_mut(u) {
                            unit.push(i);
                            continue;
                        }
                    }
                    units.push(vec![i]);
                    continue;
                }
            }
            units.push(vec![i]);
        }
        units
    }

    /// The plan minus the events at `indices` (a unit from
    /// [`ChaosPlan::removable_units`]).
    pub fn without_events(&self, indices: &[usize]) -> ChaosPlan {
        let mut plan = self.clone();
        plan.events = self
            .events
            .iter()
            .enumerate()
            .filter(|(i, _)| !indices.contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        plan
    }

    /// The plan with one link-fault axis zeroed everywhere.
    pub fn without_axis(&self, axis: LinkAxis) -> ChaosPlan {
        let mut plan = self.clone();
        for row in plan.links.iter_mut() {
            for l in row.iter_mut() {
                match axis {
                    LinkAxis::Drop => l.drop = 0.0,
                    LinkAxis::Dup => l.dup = 0.0,
                    LinkAxis::Reorder => l.reorder = 0.0,
                }
            }
        }
        plan
    }

    /// Total fault mass: events plus active link axes, adversaries, and
    /// the skew axis (shrinking progress metric).
    pub fn weight(&self) -> usize {
        let axes = [LinkAxis::Drop, LinkAxis::Dup, LinkAxis::Reorder]
            .iter()
            .filter(|a| self.axis_active(**a))
            .count();
        self.events.len() + axes + self.adversaries.len() + usize::from(self.skew_active())
    }

    /// Is `axis` nonzero on any link?
    pub fn axis_active(&self, axis: LinkAxis) -> bool {
        self.links.iter().flatten().any(|l| match axis {
            LinkAxis::Drop => l.drop > 0.0,
            LinkAxis::Dup => l.dup > 0.0,
            LinkAxis::Reorder => l.reorder > 0.0,
        })
    }

    /// Compact replayable text form. Link probabilities are encoded as
    /// exact f64 bit patterns so a replayed run is byte-identical (a
    /// decimal round-trip would perturb the Bernoulli draws).
    pub fn to_spec(&self) -> String {
        let mut s = format!("v1;seed={};n={};rd={}", self.seed, self.n, self.reorder_delay.0);
        let mut link_parts: Vec<String> = Vec::new();
        for (from, row) in self.links.iter().enumerate() {
            for (to, l) in row.iter().enumerate() {
                if *l == LinkFault::default() {
                    continue;
                }
                link_parts.push(format!(
                    "{from}>{to}>{:x}>{:x}>{:x}",
                    l.drop.to_bits(),
                    l.dup.to_bits(),
                    l.reorder.to_bits()
                ));
            }
        }
        if !link_parts.is_empty() {
            s.push_str(";links=");
            s.push_str(&link_parts.join(","));
        }
        if self.skew_active() {
            // Exact f64 bit patterns, like the link probabilities: a
            // replayed run must scale timers bit-identically.
            let rates: Vec<String> =
                self.skew.iter().map(|r| format!("{:x}", r.to_bits())).collect();
            s.push_str(";skew=");
            s.push_str(&rates.join("+"));
        }
        if !self.adversaries.is_empty() {
            let advs: Vec<String> = self
                .adversaries
                .iter()
                .map(|(r, strat)| format!("{r}:{}", strat.token()))
                .collect();
            s.push_str(";adv=");
            s.push_str(&advs.join(","));
        }
        if !self.events.is_empty() {
            let evs: Vec<String> =
                self.events.iter().map(|e| format!("{}@{}", e.kind.spec_token(), e.at.0)).collect();
            s.push_str(";ev=");
            s.push_str(&evs.join(","));
        }
        s
    }

    /// Parse [`ChaosPlan::to_spec`] output.
    pub fn from_spec(spec: &str) -> Result<ChaosPlan, String> {
        let mut seed = None;
        let mut n = None;
        let mut rd = 0u64;
        let mut link_str: Option<&str> = None;
        let mut ev_str: Option<&str> = None;
        let mut skew_str: Option<&str> = None;
        let mut adv_str: Option<&str> = None;
        for (i, part) in spec.trim().split(';').enumerate() {
            if i == 0 {
                if part != "v1" {
                    return Err(format!("unknown spec version {part:?}"));
                }
                continue;
            }
            let (key, val) = part.split_once('=').ok_or_else(|| format!("bad field {part:?}"))?;
            match key {
                "seed" => seed = Some(val.parse::<u64>().map_err(|e| e.to_string())?),
                "n" => n = Some(val.parse::<usize>().map_err(|e| e.to_string())?),
                "rd" => rd = val.parse::<u64>().map_err(|e| e.to_string())?,
                "links" => link_str = Some(val),
                "skew" => skew_str = Some(val),
                "adv" => adv_str = Some(val),
                "ev" => ev_str = Some(val),
                _ => return Err(format!("unknown field {key:?}")),
            }
        }
        let seed = seed.ok_or("missing seed")?;
        let n = n.ok_or("missing n")?;
        if n == 0 || n > 1024 {
            return Err(format!("implausible n={n}"));
        }
        let mut plan = ChaosPlan::empty(seed, n);
        plan.reorder_delay = SimDuration::from_nanos(rd);
        if let Some(ls) = link_str {
            for entry in ls.split(',') {
                let fields: Vec<&str> = entry.split('>').collect();
                if fields.len() != 5 {
                    return Err(format!("bad link entry {entry:?}"));
                }
                let from: usize = fields[0].parse().map_err(|_| "bad link from")?;
                let to: usize = fields[1].parse().map_err(|_| "bad link to")?;
                if from >= n || to >= n {
                    return Err(format!("link {from}->{to} out of range"));
                }
                let bits = |s: &str| u64::from_str_radix(s, 16).map_err(|_| "bad f64 bits");
                plan.links[from][to] = LinkFault {
                    drop: f64::from_bits(bits(fields[2])?),
                    dup: f64::from_bits(bits(fields[3])?),
                    reorder: f64::from_bits(bits(fields[4])?),
                };
            }
        }
        if let Some(ss) = skew_str {
            let rates: Vec<&str> = ss.split('+').collect();
            if rates.len() != n {
                return Err(format!("skew has {} rates, n={n}", rates.len()));
            }
            for (i, r) in rates.iter().enumerate() {
                let bits = u64::from_str_radix(r, 16).map_err(|_| "bad skew bits")?;
                let rate = f64::from_bits(bits);
                if !(0.5..=2.0).contains(&rate) {
                    return Err(format!("implausible skew rate {rate} for replica {i}"));
                }
                plan.skew[i] = rate;
            }
        }
        if let Some(advs) = adv_str {
            for entry in advs.split(',') {
                let (r, tok) =
                    entry.split_once(':').ok_or_else(|| format!("bad adversary {entry:?}"))?;
                let replica: u32 = r.parse().map_err(|_| "bad adversary replica")?;
                if replica as usize >= n {
                    return Err(format!("adversary replica {replica} out of range (n={n})"));
                }
                let strategy = AdversaryStrategy::parse(tok)
                    .ok_or_else(|| format!("unknown adversary strategy {tok:?}"))?;
                plan.adversaries.push((replica, strategy));
            }
        }
        if let Some(es) = ev_str {
            for entry in es.split(',') {
                let (tok, at) =
                    entry.split_once('@').ok_or_else(|| format!("bad event {entry:?}"))?;
                let at = SimTime(at.parse::<u64>().map_err(|e| e.to_string())?);
                // Validate replica indices like the links branch does: an
                // out-of-range event would replay as a silent no-op and a
                // hand-edited/truncated spec would "pass" a weaker
                // schedule than it claims.
                let checked = |r: u32| {
                    if (r as usize) < n {
                        Ok(r)
                    } else {
                        Err(format!("event replica {r} out of range (n={n})"))
                    }
                };
                let kind = match tok.split_at(1) {
                    ("p", rest) => {
                        let side: Result<Vec<u32>, String> = rest
                            .split('+')
                            .map(|r| checked(r.parse::<u32>().map_err(|_| "bad partition side")?))
                            .collect();
                        ChaosEventKind::PartitionStart { side: side? }
                    }
                    ("h", "") => ChaosEventKind::PartitionHeal,
                    ("c", rest) => ChaosEventKind::Crash {
                        replica: checked(rest.parse().map_err(|_| "bad crash replica")?)?,
                    },
                    ("b", rest) => {
                        let (r, flips) =
                            rest.split_once('x').ok_or_else(|| format!("bad bitrot {tok:?}"))?;
                        ChaosEventKind::BitRot {
                            replica: checked(r.parse().map_err(|_| "bad bitrot replica")?)?,
                            flips: flips.parse().map_err(|_| "bad bitrot flips")?,
                        }
                    }
                    ("r", rest) => ChaosEventKind::Restart {
                        replica: checked(rest.parse().map_err(|_| "bad restart replica")?)?,
                    },
                    _ => return Err(format!("unknown event token {tok:?}")),
                };
                plan.events.push(ChaosEvent { at, kind });
            }
        }
        Ok(plan)
    }
}

/// One of the three link-fault axes (shrinking granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkAxis {
    Drop,
    Dup,
    Reorder,
}

impl std::fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let active: usize = self
            .links
            .iter()
            .flatten()
            .filter(|l| l.drop > 0.0 || l.dup > 0.0 || l.reorder > 0.0)
            .count();
        write!(f, "chaos(seed={}, n={}, faulty-links={}", self.seed, self.n, active)?;
        if self.skew_active() {
            let worst = self.skew.iter().map(|r| (r - 1.0).abs()).fold(0.0f64, f64::max);
            write!(f, ", skew=±{:.1}%", worst * 100.0)?;
        }
        if !self.adversaries.is_empty() {
            write!(f, ", adversaries=[")?;
            for (i, (r, s)) in self.adversaries.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{r}:{}", s.name())?;
            }
            write!(f, "]")?;
        }
        write!(f, ", events=[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}@{:.3}s", e.kind.spec_token(), e.at.as_secs_f64())?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(1)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = ChaosPlan::generate(7, &cfg, 4, horizon());
        let b = ChaosPlan::generate(7, &cfg, 4, horizon());
        assert_eq!(a, b);
        let c = ChaosPlan::generate(8, &cfg, 4, horizon());
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn events_paired_and_in_window() {
        let cfg = ChaosConfig::default();
        for seed in 0..32 {
            let plan = ChaosPlan::generate(seed, &cfg, 4, horizon());
            let starts = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::PartitionStart { .. }))
                .count();
            let heals = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::PartitionHeal))
                .count();
            assert_eq!(starts, heals);
            let crashes = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::Crash { .. }))
                .count();
            let restarts = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::Restart { .. }))
                .count();
            assert_eq!(crashes, restarts);
            for ev in &plan.events {
                assert!(ev.at >= SimTime::ZERO + cfg.start);
                assert!(ev.at < horizon());
            }
            for w in plan.events.windows(2) {
                assert!(w[0].at <= w[1].at, "events sorted");
            }
        }
    }

    #[test]
    fn partition_sides_respect_f() {
        let cfg = ChaosConfig { partitions: 3, ..ChaosConfig::default() };
        for seed in 0..16 {
            let plan =
                ChaosPlan::generate(seed, &cfg, 7, SimTime::ZERO + SimDuration::from_secs(4));
            for ev in &plan.events {
                if let ChaosEventKind::PartitionStart { side } = &ev.kind {
                    assert!(!side.is_empty() && side.len() <= 2, "side within f for n=7");
                }
            }
        }
    }

    #[test]
    fn link_probabilities_capped() {
        let cfg = ChaosConfig::default();
        let plan = ChaosPlan::generate(3, &cfg, 5, horizon());
        for (i, row) in plan.links.iter().enumerate() {
            for (j, l) in row.iter().enumerate() {
                if i == j {
                    assert_eq!(*l, LinkFault::default(), "loopback unfaulted");
                    continue;
                }
                assert!(l.drop >= 0.0 && l.drop <= cfg.drop_p);
                assert!(l.dup >= 0.0 && l.dup <= cfg.dup_p);
                assert!(l.reorder >= 0.0 && l.reorder <= cfg.reorder_p);
            }
        }
        assert!(plan.has_link_faults());
    }

    #[test]
    fn spec_roundtrip_is_exact() {
        let cfg = ChaosConfig::default();
        for seed in [0, 1, 42, 0xdead_beef] {
            let plan = ChaosPlan::generate(seed, &cfg, 4, horizon());
            let spec = plan.to_spec();
            let back = ChaosPlan::from_spec(&spec).expect("spec parses");
            assert_eq!(plan, back, "byte-exact roundtrip for seed {seed}");
        }
    }

    #[test]
    fn spec_roundtrip_after_shrink() {
        let cfg = ChaosConfig::default();
        let plan = ChaosPlan::generate(11, &cfg, 4, horizon());
        let shrunk = plan.without_axis(LinkAxis::Dup);
        let back = ChaosPlan::from_spec(&shrunk.to_spec()).unwrap();
        assert_eq!(shrunk, back);
        assert!(!back.axis_active(LinkAxis::Dup));
        assert!(back.axis_active(LinkAxis::Drop));
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ChaosPlan::from_spec("v2;seed=1;n=4").is_err());
        assert!(ChaosPlan::from_spec("v1;n=4").is_err(), "missing seed");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;links=9>0>0>0>0").is_err(), "link range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=x3@5").is_err(), "unknown event");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=c7@5").is_err(), "crash replica range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=r9@5").is_err(), "restart replica range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=p0+8@5").is_err(), "partition side range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=c3@5").is_ok(), "in-range events parse");
    }

    #[test]
    fn removable_units_pair_windows() {
        let cfg = ChaosConfig { partitions: 1, crashes: 1, ..ChaosConfig::default() };
        let plan = ChaosPlan::generate(5, &cfg, 4, horizon());
        let units = plan.removable_units();
        // Every unit removes a *balanced* slice of the schedule.
        for unit in &units {
            let removed = plan.without_events(unit);
            let crashes = removed
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::Crash { .. }))
                .count();
            let restarts = removed
                .events
                .iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::Restart { .. }))
                .count();
            assert_eq!(crashes, restarts, "crash windows stay paired after removal");
        }
        let total: usize = units.iter().map(|u| u.len()).sum();
        assert_eq!(total, plan.events.len(), "units cover the schedule");
    }

    #[test]
    fn empty_plan_has_zero_weight() {
        let plan = ChaosPlan::empty(1, 4);
        assert_eq!(plan.weight(), 0);
        assert!(!plan.has_link_faults());
        assert!(!plan.has_crashes());
        assert!(!plan.has_bitrot());
        assert!(!plan.skew_active());
        assert!(plan.adversaries.is_empty());
        assert!(plan.last_event_time().is_none());
    }

    #[test]
    fn adversaries_stay_within_f_and_crashes_target_them() {
        let cfg = ChaosConfig { crashes: 2, ..ChaosConfig::default() };
        let mut saw_adversary = false;
        for seed in 0..48 {
            let plan =
                ChaosPlan::generate(seed, &cfg, 4, SimTime::ZERO + SimDuration::from_secs(4));
            assert!(plan.adversaries.len() <= 1, "≤ f adversaries for n=4");
            if plan.adversaries.is_empty() {
                continue;
            }
            saw_adversary = true;
            let adv: Vec<u32> = plan.adversaries.iter().map(|(r, _)| *r).collect();
            for ev in &plan.events {
                if let ChaosEventKind::Crash { replica } | ChaosEventKind::BitRot { replica, .. } =
                    &ev.kind
                {
                    assert!(
                        adv.contains(replica),
                        "seed {seed}: crash/rot of {replica} outside the adversary set {adv:?}"
                    );
                }
            }
        }
        assert!(saw_adversary, "some seeds draw an adversary");
    }

    #[test]
    fn bitrot_rides_inside_crash_windows() {
        let cfg = ChaosConfig { partitions: 0, crashes: 3, ..ChaosConfig::events_only() };
        let mut saw_rot = false;
        for seed in 0..16 {
            let plan =
                ChaosPlan::generate(seed, &cfg, 4, SimTime::ZERO + SimDuration::from_secs(4));
            let mut down: Option<u32> = None;
            for ev in &plan.events {
                match &ev.kind {
                    ChaosEventKind::Crash { replica } => down = Some(*replica),
                    ChaosEventKind::Restart { .. } => down = None,
                    ChaosEventKind::BitRot { replica, flips } => {
                        saw_rot = true;
                        assert_eq!(down, Some(*replica), "rot only while the replica is down");
                        assert_eq!(*flips, cfg.bitrot_flips);
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_rot, "bit rot scheduled in some windows");
    }

    #[test]
    fn skew_rates_bounded_by_config() {
        let cfg = ChaosConfig { skew_max: 0.05, ..ChaosConfig::default() };
        let plan = ChaosPlan::generate(9, &cfg, 4, horizon());
        assert!(plan.skew_active());
        for r in &plan.skew {
            assert!((*r - 1.0).abs() <= 0.05 + 1e-12, "rate {r} within ±5%");
        }
        let none = ChaosConfig { skew_max: 0.0, ..ChaosConfig::default() };
        let flat = ChaosPlan::generate(9, &none, 4, horizon());
        assert!(!flat.skew_active(), "skew_max 0 leaves every clock at 1.0 exactly");
    }

    #[test]
    fn new_axes_roundtrip_through_spec() {
        let cfg = ChaosConfig { crashes: 2, ..ChaosConfig::default() };
        let mut covered = false;
        for seed in 0..24 {
            let plan =
                ChaosPlan::generate(seed, &cfg, 4, SimTime::ZERO + SimDuration::from_secs(3));
            let back = ChaosPlan::from_spec(&plan.to_spec()).expect("spec parses");
            assert_eq!(plan, back, "seed {seed} roundtrips bit-exactly");
            covered |= !plan.adversaries.is_empty() && plan.has_bitrot();
        }
        assert!(covered, "some seed exercised adversaries + bitrot in the roundtrip");
    }

    #[test]
    fn spec_rejects_bad_new_fields() {
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;adv=9:eq").is_err(), "adversary range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;adv=1:zz").is_err(), "unknown strategy");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=b9x2@5").is_err(), "bitrot range");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;ev=b1@5").is_err(), "malformed bitrot");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;skew=0+0+0+0").is_err(), "implausible rate");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;skew=3ff0000000000000").is_err(), "arity");
        assert!(ChaosPlan::from_spec("v1;seed=1;n=4;adv=1:cs;ev=b1x3@5").is_ok());
    }

    #[test]
    fn shrink_helpers_drop_adversaries_and_skew() {
        let cfg = ChaosConfig { adversaries: 1, ..ChaosConfig::default() };
        let mut plan = ChaosPlan::generate(2, &cfg, 4, horizon());
        plan.adversaries = vec![(1, AdversaryStrategy::Equivocate)];
        let w = plan.weight();
        let no_adv = plan.without_adversary(0);
        assert!(no_adv.adversaries.is_empty());
        assert_eq!(no_adv.weight(), w - 1);
        if plan.skew_active() {
            let no_skew = no_adv.without_skew();
            assert!(!no_skew.skew_active());
            assert_eq!(no_skew.weight(), no_adv.weight() - 1);
        }
    }

    #[test]
    fn removable_units_keep_bitrot_with_its_crash() {
        let cfg =
            ChaosConfig { partitions: 1, crashes: 2, bitrot_flips: 3, ..ChaosConfig::default() };
        for seed in 0..16 {
            let plan =
                ChaosPlan::generate(seed, &cfg, 4, SimTime::ZERO + SimDuration::from_secs(4));
            if !plan.has_bitrot() {
                continue;
            }
            for unit in plan.removable_units() {
                let removed = plan.without_events(&unit);
                // No unit removal may strand a BitRot outside a window.
                let mut down: Option<u32> = None;
                for ev in &removed.events {
                    match &ev.kind {
                        ChaosEventKind::Crash { replica } => down = Some(*replica),
                        ChaosEventKind::Restart { .. } => down = None,
                        ChaosEventKind::BitRot { replica, .. } => {
                            assert_eq!(down, Some(*replica), "seed {seed}: stranded bitrot");
                        }
                        _ => {}
                    }
                }
            }
            let total: usize = plan.removable_units().iter().map(|u| u.len()).sum();
            assert_eq!(total, plan.events.len());
        }
    }
}
