//! Deterministic discrete-event cluster simulator.
//!
//! This crate replaces the paper's AWS c3.4xlarge testbed (DESIGN.md
//! substitution #1). The three resources that shape the paper's numbers
//! are modeled explicitly:
//!
//! * **link latency** — a per-pair one-way latency matrix derived from the
//!   replicas' region placement ([`regions`]), plus per-replica injected
//!   delays (Fig. 9 experiments);
//! * **NIC bandwidth** — every outbound message serializes through the
//!   sender's NIC at a configured rate, so a leader broadcasting a batch
//!   to `n − 1` peers pays O(n) transmission time (the O(n) throughput
//!   decay of Fig. 8a);
//! * **CPU** — signature verification, per-transaction hashing and
//!   execution occupy the receiving replica's CPU in FIFO order (the
//!   batch-size saturation of Fig. 8c).
//!
//! Clients are modeled in aggregate by a [`oracle::ClientOracle`]: replica
//! execution events (speculative or committed) are turned into response
//! arrival times at the clients, and finality is determined exactly per
//! the paper's quorum rules (`n − f` matching speculative responses for
//! HotStuff-1, `f + 1` committed responses for the baselines).
//!
//! The [`chaos`] module layers seeded fault schedules on top — per-link
//! message loss/duplication/reordering, partitions, and crash-restart
//! through the real `hs1-storage` recovery path — with every run
//! replayable byte-for-byte from its seed (see the `hs1-chaos` crate for
//! the sweep/shrink/replay tooling and the README "Chaos harness"
//! section for the workflow).

pub mod chaos;
pub mod cost;
pub mod net;
pub mod openloop;
pub mod oracle;
pub mod regions;
pub mod runner;
pub mod scenario;
pub mod statesync;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosEventKind, ChaosPlan, LinkAxis, LinkFault};
pub use cost::{CostModel, CpuModel, DiskModel};
pub use hs1_adversary::AdversaryStrategy;
pub use hs1_types::ProtocolKind;
pub use openloop::{ArrivalKind, OpenLoop};
pub use runner::ChaosStats;
pub use scenario::{Report, Scenario, WorkloadKind};
pub use statesync::CatchupModel;
