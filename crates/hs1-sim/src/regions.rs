//! Geographic regions and the one-way latency matrix used by the
//! geo-scale experiments (Fig. 8e–h, Fig. 9e/j).

use hs1_types::SimDuration;

/// The five AWS regions of the paper's geo-scale experiment (§7.1), in
//  the order the paper lists them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Region {
    NorthVirginia,
    HongKong,
    London,
    SaoPaulo,
    Zurich,
}

impl Region {
    pub const ALL: [Region; 5] =
        [Region::NorthVirginia, Region::HongKong, Region::London, Region::SaoPaulo, Region::Zurich];

    pub fn name(&self) -> &'static str {
        match self {
            Region::NorthVirginia => "N.Virginia",
            Region::HongKong => "HongKong",
            Region::London => "London",
            Region::SaoPaulo => "SaoPaulo",
            Region::Zurich => "Zurich",
        }
    }
}

/// One-way latency between two regions (approximate public RTT ÷ 2;
/// intra-region ≈ 250 µs).
pub fn one_way(a: Region, b: Region) -> SimDuration {
    use Region::*;
    if a == b {
        return SimDuration::from_micros(250);
    }
    let ms = match (a.min_key(), b.min_key(), a, b) {
        _ if pair(a, b, NorthVirginia, HongKong) => 100,
        _ if pair(a, b, NorthVirginia, London) => 38,
        _ if pair(a, b, NorthVirginia, SaoPaulo) => 60,
        _ if pair(a, b, NorthVirginia, Zurich) => 45,
        _ if pair(a, b, HongKong, London) => 90,
        _ if pair(a, b, HongKong, SaoPaulo) => 150,
        _ if pair(a, b, HongKong, Zurich) => 95,
        _ if pair(a, b, London, SaoPaulo) => 95,
        _ if pair(a, b, London, Zurich) => 8,
        _ if pair(a, b, SaoPaulo, Zurich) => 100,
        _ => 80,
    };
    SimDuration::from_millis(ms)
}

fn pair(a: Region, b: Region, x: Region, y: Region) -> bool {
    (a == x && b == y) || (a == y && b == x)
}

impl Region {
    fn min_key(&self) -> u8 {
        *self as u8
    }
}

/// Assign `n` replicas round-robin across the first `regions` regions
/// (the paper distributes replicas uniformly across regions).
pub fn spread(n: usize, regions: usize) -> Vec<Region> {
    assert!((1..=5).contains(&regions));
    (0..n).map(|i| Region::ALL[i % regions]).collect()
}

/// Place the first `k` replicas in `a` and the rest in `b` (the Fig. 9
/// two-region deployment; `k` = number of London replicas when `a` is
/// London).
pub fn split(n: usize, k: usize, a: Region, b: Region) -> Vec<Region> {
    (0..n).map(|i| if i < k { a } else { b }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_region_is_fast() {
        for r in Region::ALL {
            assert_eq!(one_way(r, r), SimDuration::from_micros(250));
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(one_way(a, b), one_way(b, a));
            }
        }
    }

    #[test]
    fn cross_region_is_slower() {
        assert!(one_way(Region::NorthVirginia, Region::London) > SimDuration::from_millis(10));
        assert!(
            one_way(Region::HongKong, Region::SaoPaulo)
                > one_way(Region::NorthVirginia, Region::London)
        );
    }

    #[test]
    fn spread_is_uniform() {
        let placement = spread(32, 4);
        for r in 0..4 {
            let count = placement.iter().filter(|&&p| p == Region::ALL[r]).count();
            assert_eq!(count, 8);
        }
    }

    #[test]
    fn split_counts() {
        let placement = split(31, 10, Region::London, Region::NorthVirginia);
        assert_eq!(placement.iter().filter(|&&p| p == Region::London).count(), 10);
        assert_eq!(placement.iter().filter(|&&p| p == Region::NorthVirginia).count(), 21);
    }
}
