//! Cost-modeled catch-up comparison: per-block replay vs snapshot state
//! transfer (the `hs1-statesync` subsystem), priced with the same
//! [`CostModel`] terms the simulator charges live traffic with.
//!
//! The model answers the design question behind the node runner's
//! gap-threshold heuristic: *at what lag does snapshot transfer beat
//! replay?* Replay pays one fetch round trip, one block transmission and
//! one batch re-execution **per missing block** — O(gap). Snapshot
//! transfer pays manifest agreement, the image transmission (bounded by
//! state size, not history), one pass of per-entry install work, and a
//! short residual replay — O(state). The crossover is where the
//! gap-proportional term overtakes the state-proportional one;
//! `fig_recovery` plots both columns (measured + modeled) as CSV.

use crate::cost::CostModel;
use hs1_types::SimDuration;

/// One catch-up scenario: a replica `gap` blocks behind a live cluster.
#[derive(Clone, Debug)]
pub struct CatchupModel {
    pub cost: CostModel,
    /// One request/response round trip to a serving peer.
    pub rtt: SimDuration,
    /// Transactions per fetched block (drives replay re-execution).
    pub txs_per_block: u64,
    /// Wire size of one `FetchResp` (block body).
    pub block_bytes: usize,
    /// Materialized KV entries in the snapshot image.
    pub state_entries: u64,
    /// Committed chain ids shipped inside the image (32 bytes each).
    pub chain_len: u64,
    /// Snapshot chunk size (each chunk costs one sequential round trip).
    pub chunk_bytes: u64,
    /// Manifest-collection round trips before the download starts
    /// (request fan-out + the f+1 agreement wait).
    pub manifest_rounds: u64,
    /// Blocks committed by the cluster while the snapshot transferred —
    /// replayed through the ordinary fetch path after install.
    pub residual_blocks: u64,
}

impl CatchupModel {
    /// Defaults matching the quickstart deployment: LAN RTT, 32-tx
    /// blocks, and a 256 KiB chunk size.
    pub fn lan(state_entries: u64, chain_len: u64) -> CatchupModel {
        CatchupModel {
            cost: CostModel::default(),
            rtt: SimDuration::from_micros(500),
            txs_per_block: 32,
            block_bytes: 96 + 64 + 32 * 8,
            state_entries,
            chain_len,
            chunk_bytes: 256 * 1024,
            manifest_rounds: 2,
            residual_blocks: 4,
        }
    }

    /// Encoded image size: record count + 16 bytes per materialized
    /// entry + 32 bytes per chain id (plus the two sequence headers).
    pub fn image_bytes(&self) -> u64 {
        24 + self.state_entries * 16 + self.chain_len * 32
    }

    /// Catch-up time for per-block replay of `gap` blocks: the fetch
    /// path walks the chain one body per round trip, and every body is
    /// re-executed into the ledger.
    pub fn replay_time(&self, gap: u64) -> SimDuration {
        let per_block = self.rtt
            + self.cost.tx_time(self.block_bytes)
            + self.cost.per_msg
            + self.cost.per_tx_exec * self.txs_per_block;
        per_block * gap
    }

    /// Catch-up time for snapshot transfer: manifest agreement, the
    /// sequential chunk pulls, per-entry install (hash + apply), and the
    /// residual suffix replayed through the fetch path. Independent of
    /// `gap` — that is the whole point.
    pub fn snapshot_time(&self) -> SimDuration {
        let bytes = self.image_bytes();
        let chunks = bytes.div_ceil(self.chunk_bytes).max(1);
        let transfer = (self.rtt + self.cost.per_msg) * (chunks + self.manifest_rounds)
            + self.cost.tx_time(bytes as usize);
        let install =
            (self.cost.per_tx_hash + self.cost.per_tx_exec) * (self.state_entries + self.chain_len);
        transfer + install + self.replay_time(self.residual_blocks)
    }

    /// Smallest gap (in blocks) at which snapshot transfer becomes
    /// cheaper than replay. Replay is linear in the gap with a nonzero
    /// per-block cost, so the crossover always exists.
    pub fn crossover_blocks(&self) -> u64 {
        let snapshot = self.snapshot_time().0 as u128;
        let per_block = self.replay_time(1).0.max(1) as u128;
        (snapshot / per_block + 1) as u64
    }

    /// CSV row fragment `(gap, replay_ms, snapshot_ms)` for figures.
    pub fn csv_row(&self, gap: u64) -> String {
        format!(
            "{gap},{:.3},{:.3}",
            self.replay_time(gap).as_millis_f64(),
            self.snapshot_time().as_millis_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_scales_linearly_with_gap() {
        let m = CatchupModel::lan(10_000, 1_000);
        let one = m.replay_time(1).0;
        assert!(one > 0);
        assert_eq!(m.replay_time(100).0, one * 100);
        assert_eq!(m.replay_time(0), SimDuration::ZERO);
    }

    #[test]
    fn snapshot_time_is_gap_independent_but_state_dependent() {
        let small = CatchupModel::lan(1_000, 100);
        let large = CatchupModel::lan(1_000_000, 100);
        // Same model, any gap: snapshot cost is a constant.
        assert_eq!(small.snapshot_time(), small.snapshot_time());
        // More state ⇒ more bytes ⇒ slower snapshot.
        assert!(large.snapshot_time() > small.snapshot_time());
        assert!(large.image_bytes() > small.image_bytes());
    }

    #[test]
    fn crossover_exists_and_snapshot_wins_past_it() {
        let m = CatchupModel::lan(50_000, 5_000);
        let x = m.crossover_blocks();
        assert!(x > 0);
        assert!(
            m.replay_time(x) > m.snapshot_time(),
            "replay must lose at the crossover gap ({x} blocks)"
        );
        if x > 1 {
            assert!(
                m.replay_time(x - 1) <= m.snapshot_time(),
                "crossover must be the smallest winning gap"
            );
        }
    }

    #[test]
    fn bigger_state_pushes_the_crossover_out() {
        let small = CatchupModel::lan(1_000, 500);
        let large = CatchupModel::lan(2_000_000, 500);
        assert!(large.crossover_blocks() > small.crossover_blocks());
    }

    #[test]
    fn csv_row_shape() {
        let m = CatchupModel::lan(1_000, 100);
        let row = m.csv_row(64);
        assert_eq!(row.split(',').count(), 3);
        assert!(row.starts_with("64,"));
    }
}
