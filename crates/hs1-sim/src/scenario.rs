//! Scenario builder + report: the public face of the simulator.
//!
//! ```
//! use hs1_sim::{Scenario, ProtocolKind};
//!
//! let report = Scenario::new(ProtocolKind::HotStuff1)
//!     .replicas(4)
//!     .batch_size(16)
//!     .clients(64)
//!     .sim_seconds(0.5)
//!     .run();
//! assert!(report.committed_txs > 0);
//! assert!(report.invariants_ok());
//! ```

use crate::cost::CostModel;
use crate::net::NetModel;
use crate::regions::{spread, Region};
use crate::runner::SimRunner;
use hs1_core::byzantine::Fault;
use hs1_core::common::SharedMempool;
use hs1_core::Replica;
use hs1_ledger::ExecConfig;
use hs1_types::{ProtocolKind, ReplicaId, SimDuration, SystemConfig};
use hs1_workloads::{TpccGen, Workload, YcsbGen};

/// Which workload drives the clients (§7 "Workloads").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// YCSB: 600k-record KV store, zipfian writes (the default).
    Ycsb,
    /// TPC-C: warehouse/order management, NewOrder + Payment mix.
    Tpcc,
}

/// A complete experiment description.
#[derive(Clone)]
pub struct Scenario {
    pub protocol: ProtocolKind,
    pub n: usize,
    pub batch_size: usize,
    pub clients: usize,
    pub sim_seconds: f64,
    pub warmup_seconds: f64,
    pub view_timer: SimDuration,
    pub delta: SimDuration,
    pub workload: WorkloadKind,
    pub seed: u64,
    pub placement: Option<Vec<Region>>,
    pub client_region: Region,
    pub injected: Vec<(usize, SimDuration)>,
    pub faults: Vec<(usize, Fault)>,
    pub cost: CostModel,
}

impl Scenario {
    pub fn new(protocol: ProtocolKind) -> Scenario {
        Scenario {
            protocol,
            n: 4,
            batch_size: 100,
            clients: 400,
            sim_seconds: 2.0,
            warmup_seconds: 0.5,
            view_timer: SimDuration::from_millis(10),
            delta: SimDuration::from_millis(1),
            workload: WorkloadKind::Ycsb,
            seed: 42,
            placement: None,
            client_region: Region::NorthVirginia,
            injected: Vec::new(),
            faults: Vec::new(),
            cost: CostModel::default(),
        }
    }

    pub fn replicas(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    pub fn sim_seconds(mut self, s: f64) -> Self {
        self.sim_seconds = s;
        self
    }

    pub fn warmup_seconds(mut self, s: f64) -> Self {
        self.warmup_seconds = s;
        self
    }

    pub fn view_timer(mut self, d: SimDuration) -> Self {
        self.view_timer = d;
        self
    }

    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.workload = w;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Model journal durability costs (fsync-on-commit vs
    /// fsync-on-speculate; zero/off by default).
    pub fn disk(mut self, d: crate::cost::DiskModel) -> Self {
        self.cost.disk = d;
        self
    }

    /// Spread replicas uniformly over the first `count` paper regions.
    pub fn geo_regions(mut self, count: usize) -> Self {
        self.placement = Some(spread(self.n, count));
        self
    }

    /// Explicit placement (e.g. a Virginia/London split).
    pub fn placement(mut self, p: Vec<Region>) -> Self {
        self.placement = Some(p);
        self
    }

    pub fn clients_in(mut self, r: Region) -> Self {
        self.client_region = r;
        self
    }

    /// Inject `delay` on the first `k` replicas' links (Fig. 9).
    pub fn inject_delay(mut self, k: usize, delay: SimDuration) -> Self {
        self.injected = (0..k).map(|i| (i, delay)).collect();
        self
    }

    /// Assign `fault` to `count` replicas, chosen as the replicas whose
    /// leader turns are spread round-robin (ids 1, 1+⌈n/count⌉, ...). The
    /// paper varies "the number of slow/faulty leaders".
    pub fn faulty_leaders(mut self, count: usize, fault: Fault) -> Self {
        if count == 0 {
            return self;
        }
        let stride = (self.n / count).max(1);
        self.faults = (0..count).map(|i| ((1 + i * stride) % self.n, fault.clone())).collect();
        self
    }

    pub fn with_fault(mut self, replica: usize, fault: Fault) -> Self {
        self.faults.push((replica, fault));
        self
    }

    /// Execute the scenario.
    pub fn run(self) -> Report {
        let mut cfg = SystemConfig::new(self.n);
        cfg.batch_size = self.batch_size;
        cfg.view_timer = self.view_timer;
        cfg.delta = self.delta;
        cfg.deployment_seed = self.seed;
        let f = cfg.f();

        let placement =
            self.placement.clone().unwrap_or_else(|| vec![Region::NorthVirginia; self.n]);
        let mut net = NetModel::from_regions(&placement, self.client_region);
        for (r, d) in &self.injected {
            net.inject(ReplicaId(*r as u32), *d);
        }

        let exec = match self.workload {
            WorkloadKind::Ycsb => {
                ExecConfig { ycsb_records: YcsbGen::PAPER_RECORDS, tpcc_warehouses: 4 }
            }
            WorkloadKind::Tpcc => ExecConfig { ycsb_records: 0, tpcc_warehouses: 4 },
        };
        let workload: Box<dyn Workload> = match self.workload {
            WorkloadKind::Ycsb => Box::new(YcsbGen::paper_default(self.seed)),
            WorkloadKind::Tpcc => Box::new(TpccGen::paper_default(self.seed)),
        };

        let pool = SharedMempool::new();
        let engines: Vec<Box<dyn Replica>> = (0..self.n)
            .map(|i| {
                let fault = self
                    .faults
                    .iter()
                    .find(|(r, _)| *r == i)
                    .map(|(_, fl)| fl.clone())
                    .unwrap_or(Fault::Honest);
                build_with_source(
                    self.protocol,
                    cfg.clone(),
                    ReplicaId(i as u32),
                    fault,
                    exec,
                    Box::new(pool.clone()),
                )
            })
            .collect();

        let mut runner = SimRunner::new(
            engines,
            pool,
            net,
            self.cost.clone(),
            self.protocol,
            f,
            workload,
            self.seed,
        );
        runner.spawn_clients(self.clients);
        runner.run(
            SimDuration::from_secs_f64(self.warmup_seconds),
            SimDuration::from_secs_f64(self.sim_seconds),
        );
        let honest: Vec<usize> =
            (0..self.n).filter(|i| !self.faults.iter().any(|(r, _)| r == i)).collect();
        runner.check_prefix_agreement(&honest);
        let stats = runner.stats().clone();

        Report {
            protocol: self.protocol,
            n: self.n,
            f,
            batch_size: self.batch_size,
            workload: self.workload,
            sim_seconds: self.sim_seconds,
            committed_txs: stats.finalized_txs,
            throughput_tps: stats.finalized_txs as f64 / self.sim_seconds,
            mean_latency_ms: stats.mean_latency_ms,
            p50_latency_ms: stats.p50_latency_ms,
            p99_latency_ms: stats.p99_latency_ms,
            committed_blocks: stats.committed_blocks,
            orphaned_blocks: stats.orphaned_blocks,
            rollbacks: stats.rollbacks,
            views_entered: stats.views_entered,
            invariant_violations: stats.invariant_violations,
        }
    }
}

fn build_with_source(
    kind: ProtocolKind,
    cfg: SystemConfig,
    id: ReplicaId,
    fault: Fault,
    exec: ExecConfig,
    source: Box<dyn hs1_core::common::TxSource>,
) -> Box<dyn Replica> {
    use hs1_core::basic::BasicEngine;
    use hs1_core::chained::{ChainDepth, ChainedEngine};
    use hs1_core::slotted::SlottedEngine;
    match kind {
        ProtocolKind::HotStuff => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Three,
            false,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff2 => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Two,
            false,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff1 => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Two,
            true,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff1Basic => {
            Box::new(BasicEngine::with_source(cfg, id, fault, exec, source))
        }
        ProtocolKind::HotStuff1Slotted => {
            Box::new(SlottedEngine::with_source(cfg, id, fault, exec, source))
        }
    }
}

/// Results of one scenario run.
#[derive(Clone, Debug)]
pub struct Report {
    pub protocol: ProtocolKind,
    pub n: usize,
    pub f: usize,
    pub batch_size: usize,
    pub workload: WorkloadKind,
    pub sim_seconds: f64,
    /// Transactions finalized by clients inside the measurement window.
    pub committed_txs: u64,
    pub throughput_tps: f64,
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub committed_blocks: u64,
    pub orphaned_blocks: u64,
    pub rollbacks: u64,
    pub views_entered: u64,
    pub invariant_violations: Vec<String>,
}

impl Report {
    pub fn invariants_ok(&self) -> bool {
        self.invariant_violations.is_empty()
    }

    /// One-line summary for bench output.
    pub fn row(&self) -> String {
        format!(
            "{:<22} n={:<3} batch={:<6} tput={:>10.0} tx/s  lat(mean/p50/p99)={:>8.2}/{:>8.2}/{:>8.2} ms  blocks={} orphaned={} rollbacks={}",
            self.protocol.name(),
            self.n,
            self.batch_size,
            self.throughput_tps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.committed_blocks,
            self.orphaned_blocks,
            self.rollbacks,
        )
    }

    /// CSV row (matches [`Report::csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:?},{:.0},{:.3},{:.3},{:.3},{},{},{}",
            self.protocol.name(),
            self.n,
            self.f,
            self.batch_size,
            self.workload,
            self.throughput_tps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.committed_blocks,
            self.orphaned_blocks,
            self.rollbacks,
        )
    }

    pub fn csv_header() -> &'static str {
        "protocol,n,f,batch,workload,throughput_tps,mean_ms,p50_ms,p99_ms,blocks,orphaned,rollbacks"
    }
}
