//! Scenario builder + report: the public face of the simulator.
//!
//! ```
//! use hs1_sim::{Scenario, ProtocolKind};
//!
//! let report = Scenario::new(ProtocolKind::HotStuff1)
//!     .replicas(4)
//!     .batch_size(16)
//!     .clients(64)
//!     .sim_seconds(0.5)
//!     .run();
//! assert!(report.committed_txs > 0);
//! assert!(report.invariants_ok());
//! ```

use crate::chaos::ChaosPlan;
use crate::cost::CostModel;
use crate::net::NetModel;
use crate::openloop::OpenLoop;
use crate::regions::{spread, Region};
use crate::runner::{ChaosRuntime, ChaosStats, SimRunner};
use crate::statesync::CatchupModel;
use hs1_adversary::{AdversaryEngine, AdversaryMutator, AdversaryStrategy};
use hs1_core::byzantine::Fault;
use hs1_core::common::SharedMempool;
use hs1_core::Replica;
use hs1_ledger::ExecConfig;
use hs1_obs::Obs;
use hs1_storage::journal::SyncPolicy;
use hs1_storage::testutil::TempDir;
use hs1_storage::{ReplicaStorage, StorageConfig};
use hs1_types::{ProtocolKind, ReplicaId, SimDuration, SimTime, SystemConfig};
use hs1_workloads::{TpccGen, Workload, YcsbGen};

/// Which workload drives the clients (§7 "Workloads").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// YCSB: 600k-record KV store, zipfian writes (the default).
    Ycsb,
    /// YCSB with hot-key churn: the zipfian hot set rotates every
    /// [`Scenario::CHURN_EVERY`] transactions (trending-key traffic, the
    /// conflict-partitioned executor's worst case).
    YcsbChurn,
    /// TPC-C: warehouse/order management, NewOrder + Payment mix.
    Tpcc,
}

/// A complete experiment description.
#[derive(Clone)]
pub struct Scenario {
    pub protocol: ProtocolKind,
    pub n: usize,
    pub batch_size: usize,
    pub clients: usize,
    pub sim_seconds: f64,
    pub warmup_seconds: f64,
    pub view_timer: SimDuration,
    pub delta: SimDuration,
    pub workload: WorkloadKind,
    pub seed: u64,
    pub placement: Option<Vec<Region>>,
    pub client_region: Region,
    pub injected: Vec<(usize, SimDuration)>,
    pub faults: Vec<(usize, Fault)>,
    /// Adversarial backups wrapped around the engines (see
    /// `hs1-adversary`): explicit entries here are merged with — and
    /// override — whatever the chaos plan derives.
    pub adversaries: Vec<(usize, AdversaryStrategy)>,
    pub cost: CostModel,
    /// Deterministic fault schedule (see [`crate::chaos`]).
    pub chaos: Option<ChaosPlan>,
    /// Gap (in blocks) past which a restarting replica snapshot-syncs
    /// instead of replaying; `None` asks [`CatchupModel`] for the
    /// crossover.
    pub catchup_threshold: Option<u64>,
    /// Observability sink threaded into every engine, the storage layer,
    /// and the runner (see `hs1-obs`). Pure observer: attaching one must
    /// not change the report's fingerprint. `None` runs with no-op hooks.
    pub observer: Option<Obs>,
    /// Open-loop client configuration. `Some` replaces the closed-loop
    /// clients entirely: `clients` is ignored, arrivals follow the
    /// configured process, and mempool admission control engages (see
    /// [`crate::openloop`]).
    pub open_loop: Option<OpenLoop>,
}

impl Scenario {
    pub fn new(protocol: ProtocolKind) -> Scenario {
        Scenario {
            protocol,
            n: 4,
            batch_size: 100,
            clients: 400,
            sim_seconds: 2.0,
            warmup_seconds: 0.5,
            view_timer: SimDuration::from_millis(10),
            delta: SimDuration::from_millis(1),
            workload: WorkloadKind::Ycsb,
            seed: 42,
            placement: None,
            client_region: Region::NorthVirginia,
            injected: Vec::new(),
            faults: Vec::new(),
            adversaries: Vec::new(),
            cost: CostModel::default(),
            chaos: None,
            catchup_threshold: None,
            observer: None,
            open_loop: None,
        }
    }

    /// Hot-set rotation period (transactions) for
    /// [`WorkloadKind::YcsbChurn`].
    pub const CHURN_EVERY: u64 = 4_096;

    /// Drive the run with open-loop clients (offered load in tx/s)
    /// instead of the closed-loop pool.
    pub fn open_loop(mut self, cfg: OpenLoop) -> Self {
        self.open_loop = Some(cfg);
        self
    }

    /// The horizon [`ChaosPlan::generate`] should use for this scenario:
    /// faults stay inside the first ~65% of the run so the post-GST
    /// liveness invariant has a fault-free tail to observe.
    pub fn chaos_horizon(&self) -> SimTime {
        let span = self.warmup_seconds + self.sim_seconds * 0.65;
        SimTime::ZERO + SimDuration::from_secs_f64(span)
    }

    /// Install a chaos plan (derive one with [`ChaosPlan::generate`],
    /// typically at [`Scenario::chaos_horizon`]).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Force the replay-vs-snapshot decision gap for chaos restarts.
    pub fn catchup_threshold(mut self, blocks: u64) -> Self {
        self.catchup_threshold = Some(blocks);
        self
    }

    /// Attach an observability sink (build one with
    /// [`Obs::recording`] over a manual clock). The runner drives the
    /// clock to sim-time, so recorded traces are byte-reproducible per
    /// seed.
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Attach a per-replica fan-out recorder sized to this scenario's
    /// cluster (call after [`Scenario::replicas`]): each replica records
    /// into its own lane, the harness/oracle into a shared lane, all
    /// stamped by one manual clock the runner drives to sim-time. After
    /// the run, `fan.lock().unwrap().merged()` joins the lanes back into
    /// one byte-reproducible cluster timeline — the input shape of the
    /// critical-path analyzer and the Perfetto exporter.
    pub fn record_cluster(
        mut self,
    ) -> (Self, std::sync::Arc<std::sync::Mutex<hs1_obs::FanoutObserver>>) {
        let (obs, fan) = hs1_obs::FanoutObserver::recording(self.n, hs1_obs::Clock::manual());
        self.observer = Some(obs);
        (self, fan)
    }

    pub fn replicas(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    pub fn batch_size(mut self, b: usize) -> Self {
        self.batch_size = b;
        self
    }

    pub fn clients(mut self, c: usize) -> Self {
        self.clients = c;
        self
    }

    pub fn sim_seconds(mut self, s: f64) -> Self {
        self.sim_seconds = s;
        self
    }

    pub fn warmup_seconds(mut self, s: f64) -> Self {
        self.warmup_seconds = s;
        self
    }

    pub fn view_timer(mut self, d: SimDuration) -> Self {
        self.view_timer = d;
        self
    }

    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.workload = w;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Model journal durability costs (fsync-on-commit vs
    /// fsync-on-speculate; zero/off by default).
    pub fn disk(mut self, d: crate::cost::DiskModel) -> Self {
        self.cost.disk = d;
        self
    }

    /// Model a `workers`-wide parallel executor on every replica (see
    /// [`crate::cost::CpuModel`]; 1 — the default — reproduces the
    /// historical sequential execution cost exactly).
    pub fn exec_workers(mut self, workers: usize) -> Self {
        self.cost.cpu = crate::cost::CpuModel::with_workers(workers);
        self
    }

    /// Spread replicas uniformly over the first `count` paper regions.
    pub fn geo_regions(mut self, count: usize) -> Self {
        self.placement = Some(spread(self.n, count));
        self
    }

    /// Explicit placement (e.g. a Virginia/London split).
    pub fn placement(mut self, p: Vec<Region>) -> Self {
        self.placement = Some(p);
        self
    }

    pub fn clients_in(mut self, r: Region) -> Self {
        self.client_region = r;
        self
    }

    /// Inject `delay` on the first `k` replicas' links (Fig. 9).
    pub fn inject_delay(mut self, k: usize, delay: SimDuration) -> Self {
        self.injected = (0..k).map(|i| (i, delay)).collect();
        self
    }

    /// Assign `fault` to `count` replicas, chosen as the replicas whose
    /// leader turns are spread round-robin (ids 1, 1+⌈n/count⌉, ...). The
    /// paper varies "the number of slow/faulty leaders".
    pub fn faulty_leaders(mut self, count: usize, fault: Fault) -> Self {
        if count == 0 {
            return self;
        }
        let stride = (self.n / count).max(1);
        self.faults = (0..count).map(|i| ((1 + i * stride) % self.n, fault.clone())).collect();
        self
    }

    pub fn with_fault(mut self, replica: usize, fault: Fault) -> Self {
        self.faults.push((replica, fault));
        self
    }

    /// Wrap `replica` in an adversary layer playing `strategy` (see
    /// `hs1-adversary`). The replica's engine stays honest internally;
    /// its outbound traffic lies.
    pub fn with_adversary(mut self, replica: usize, strategy: AdversaryStrategy) -> Self {
        self.adversaries.push((replica, strategy));
        self
    }

    /// Execute the scenario.
    pub fn run(self) -> Report {
        let mut cfg = SystemConfig::new(self.n);
        cfg.batch_size = self.batch_size;
        cfg.view_timer = self.view_timer;
        cfg.delta = self.delta;
        cfg.deployment_seed = self.seed;
        let f = cfg.f();

        let placement =
            self.placement.clone().unwrap_or_else(|| vec![Region::NorthVirginia; self.n]);
        let mut net = NetModel::from_regions(&placement, self.client_region);
        for (r, d) in &self.injected {
            net.inject(ReplicaId(*r as u32), *d);
        }

        let exec = match self.workload {
            WorkloadKind::Ycsb | WorkloadKind::YcsbChurn => ExecConfig {
                ycsb_records: YcsbGen::PAPER_RECORDS,
                tpcc_warehouses: 4,
                ..ExecConfig::default()
            },
            WorkloadKind::Tpcc => {
                ExecConfig { ycsb_records: 0, tpcc_warehouses: 4, ..ExecConfig::default() }
            }
        };
        let workload: Box<dyn Workload> = match self.workload {
            WorkloadKind::Ycsb => Box::new(YcsbGen::paper_default(self.seed)),
            WorkloadKind::YcsbChurn => {
                Box::new(YcsbGen::paper_default(self.seed).with_hot_churn(Self::CHURN_EVERY))
            }
            WorkloadKind::Tpcc => Box::new(TpccGen::paper_default(self.seed)),
        };

        // Effective adversary placement: the chaos plan's seed-derived
        // set, with explicit `with_adversary` entries overriding the
        // same replica.
        let mut adversaries: Vec<(usize, AdversaryStrategy)> = self
            .chaos
            .as_ref()
            .map(|p| p.adversaries.iter().map(|&(r, s)| (r as usize, s)).collect())
            .unwrap_or_default();
        for &(r, s) in &self.adversaries {
            adversaries.retain(|(pr, _)| *pr != r);
            adversaries.push((r, s));
        }
        let adversary_of = {
            let adversaries = adversaries.clone();
            move |i: usize| adversaries.iter().find(|(r, _)| *r == i).map(|&(_, s)| s)
        };
        let wrap = {
            let cfg = cfg.clone();
            let protocol = self.protocol;
            let seed = self.seed;
            move |engine: Box<dyn Replica>, strategy: AdversaryStrategy| -> Box<dyn Replica> {
                let me = engine.id();
                let mutator = AdversaryMutator::new(
                    strategy,
                    cfg.clone(),
                    protocol,
                    me,
                    seed ^ 0xad5e_ed00 ^ ((me.0 as u64) << 16),
                );
                Box::new(AdversaryEngine::new(engine, mutator))
            }
        };

        let pool = SharedMempool::new();
        let mut engines: Vec<Box<dyn Replica>> = (0..self.n)
            .map(|i| {
                let fault = self
                    .faults
                    .iter()
                    .find(|(r, _)| *r == i)
                    .map(|(_, fl)| fl.clone())
                    .unwrap_or(Fault::Honest);
                let engine = build_with_source(
                    self.protocol,
                    cfg.clone(),
                    ReplicaId(i as u32),
                    fault,
                    exec,
                    Box::new(pool.clone()),
                );
                match adversary_of(i) {
                    Some(strategy) => wrap(engine, strategy),
                    None => engine,
                }
            })
            .collect();

        // Chaos: durable journals (so crash-restart recovers through the
        // real hs1-storage path) + an engine factory for rebuilt replicas.
        // Dirs must outlive the run; they self-clean on drop.
        let mut chaos_dirs: Vec<TempDir> = Vec::new();
        let chaos_rt = match &self.chaos {
            Some(plan) if plan.has_crashes() => {
                assert_eq!(plan.n, self.n, "chaos plan sized for a different deployment");
                let storage_cfg = StorageConfig {
                    segment_bytes: 256 * 1024,
                    sync: SyncPolicy::EveryN(8),
                    checkpoint_every: 64,
                };
                let mut dirs = Vec::with_capacity(self.n);
                for (i, engine) in engines.iter_mut().enumerate() {
                    let dir = TempDir::new(&format!("chaos-s{}-r{i}", self.seed));
                    let (state, mut storage) = ReplicaStorage::open(dir.path(), storage_cfg)
                        .expect("open fresh chaos journal");
                    debug_assert!(state.is_empty(), "fresh dir has no history");
                    if let Some(obs) = &self.observer {
                        storage.set_observer(obs.with_actor(i as u32));
                    }
                    engine.set_persistence(Box::new(storage));
                    dirs.push(dir.path().to_path_buf());
                    chaos_dirs.push(dir);
                }
                let mut catchup = CatchupModel::lan(0, 0);
                catchup.cost = self.cost.clone();
                catchup.txs_per_block = self.batch_size.max(1) as u64;
                catchup.block_bytes = 96 + 64 + self.batch_size * 8;
                let rebuild = {
                    let protocol = self.protocol;
                    let cfg = cfg.clone();
                    let faults = self.faults.clone();
                    let pool = pool.clone();
                    let adversary_of = adversary_of.clone();
                    let wrap = wrap.clone();
                    move |i: usize| {
                        let fault = faults
                            .iter()
                            .find(|(r, _)| *r == i)
                            .map(|(_, fl)| fl.clone())
                            .unwrap_or(Fault::Honest);
                        let engine = build_with_source(
                            protocol,
                            cfg.clone(),
                            ReplicaId(i as u32),
                            fault,
                            exec,
                            Box::new(pool.clone()),
                        );
                        // A restarted adversary stays adversarial: the
                        // wrapper (with a fresh mutation stream) comes
                        // back with the rebuilt engine.
                        match adversary_of(i) {
                            Some(strategy) => wrap(engine, strategy),
                            None => engine,
                        }
                    }
                };
                Some(ChaosRuntime {
                    dirs,
                    storage: storage_cfg,
                    rebuild: Box::new(rebuild),
                    catchup,
                    catchup_threshold: self.catchup_threshold,
                })
            }
            Some(plan) => {
                assert_eq!(plan.n, self.n, "chaos plan sized for a different deployment");
                None
            }
            None => None,
        };

        let mut runner = SimRunner::new(
            engines,
            pool,
            net,
            self.cost.clone(),
            self.protocol,
            f,
            workload,
            self.seed,
        );
        if let Some(obs) = &self.observer {
            runner.set_observer(obs.clone());
        }
        if let Some(plan) = &self.chaos {
            runner.install_chaos(plan, chaos_rt);
        }
        runner.note_adversaries(&adversaries);
        match &self.open_loop {
            Some(cfg) => runner.spawn_open_loop(cfg.clone()),
            None => runner.spawn_clients(self.clients),
        }
        runner.run(
            SimDuration::from_secs_f64(self.warmup_seconds),
            SimDuration::from_secs_f64(self.sim_seconds),
        );
        // The honest set excludes leader-side faults *and* adversarial
        // backups: the strengthened oracles must hold across honest
        // replicas under any ≤ f adversary schedule.
        let honest: Vec<usize> = (0..self.n)
            .filter(|i| !self.faults.iter().any(|(r, _)| r == i))
            .filter(|i| !adversaries.iter().any(|(r, _)| r == i))
            .collect();
        runner.check_prefix_agreement(&honest);
        let fingerprint = runner.fingerprint();
        let replica_views = runner.current_views();
        let replica_chain_lens = runner.committed_lengths();
        let stats = runner.stats().clone();

        Report {
            protocol: self.protocol,
            n: self.n,
            f,
            batch_size: self.batch_size,
            workload: self.workload,
            sim_seconds: self.sim_seconds,
            committed_txs: stats.finalized_txs,
            throughput_tps: stats.finalized_txs as f64 / self.sim_seconds,
            offered_txs: stats.offered_txs,
            admission_drops: stats.admission_drops,
            requests_deduped: stats.requests_deduped,
            mean_latency_ms: stats.mean_latency_ms,
            p50_latency_ms: stats.p50_latency_ms,
            p99_latency_ms: stats.p99_latency_ms,
            committed_blocks: stats.committed_blocks,
            orphaned_blocks: stats.orphaned_blocks,
            rollbacks: stats.rollbacks,
            views_entered: stats.views_entered,
            invariant_violations: stats.invariant_violations,
            chaos: stats.chaos,
            fingerprint,
            replica_views,
            replica_chain_lens,
            observer: self.observer,
        }
    }
}

fn build_with_source(
    kind: ProtocolKind,
    cfg: SystemConfig,
    id: ReplicaId,
    fault: Fault,
    exec: ExecConfig,
    source: Box<dyn hs1_core::common::TxSource>,
) -> Box<dyn Replica> {
    use hs1_core::basic::BasicEngine;
    use hs1_core::chained::{ChainDepth, ChainedEngine};
    use hs1_core::slotted::SlottedEngine;
    match kind {
        ProtocolKind::HotStuff => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Three,
            false,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff2 => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Two,
            false,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff1 => Box::new(ChainedEngine::with_source(
            cfg,
            id,
            ChainDepth::Two,
            true,
            fault,
            exec,
            source,
        )),
        ProtocolKind::HotStuff1Basic => {
            Box::new(BasicEngine::with_source(cfg, id, fault, exec, source))
        }
        ProtocolKind::HotStuff1Slotted => {
            Box::new(SlottedEngine::with_source(cfg, id, fault, exec, source))
        }
    }
}

/// Results of one scenario run.
#[derive(Clone, Debug)]
pub struct Report {
    pub protocol: ProtocolKind,
    pub n: usize,
    pub f: usize,
    pub batch_size: usize,
    pub workload: WorkloadKind,
    pub sim_seconds: f64,
    /// Transactions finalized by clients inside the measurement window.
    pub committed_txs: u64,
    pub throughput_tps: f64,
    /// Open-loop transactions offered inside the measurement window
    /// (zero on closed-loop runs).
    pub offered_txs: u64,
    /// Submissions refused by mempool admission control in-window.
    pub admission_drops: u64,
    /// Duplicate submissions dropped by admission dedup (whole run).
    pub requests_deduped: u64,
    pub mean_latency_ms: f64,
    pub p50_latency_ms: f64,
    pub p99_latency_ms: f64,
    pub committed_blocks: u64,
    pub orphaned_blocks: u64,
    pub rollbacks: u64,
    pub views_entered: u64,
    pub invariant_violations: Vec<String>,
    /// Chaos-injection counters (all zero on fault-free runs).
    pub chaos: ChaosStats,
    /// Order-stable digest of the run's observable outcome (committed
    /// chains, state roots, violations). Two runs of the same scenario
    /// seed + chaos plan produce identical fingerprints — the replay
    /// guarantee the chaos sweep's shrinker depends on.
    pub fingerprint: u64,
    /// Per-replica view at end of run (chaos-failure diagnostics).
    pub replica_views: Vec<u64>,
    /// Per-replica committed-chain length at end of run.
    pub replica_chain_lens: Vec<usize>,
    /// The observability sink the run was traced into, if any (carried so
    /// [`Report::ensure_invariants`] can flush it before a hard exit).
    pub observer: Option<Obs>,
}

impl Report {
    pub fn invariants_ok(&self) -> bool {
        self.invariant_violations.is_empty()
    }

    /// Offered load measured in-window, tx/s (0 on closed-loop runs).
    pub fn offered_tps(&self) -> f64 {
        self.offered_txs as f64 / self.sim_seconds
    }

    /// Fraction of in-window submissions refused at admission.
    pub fn drop_rate(&self) -> f64 {
        if self.offered_txs == 0 {
            0.0
        } else {
            self.admission_drops as f64 / self.offered_txs as f64
        }
    }

    /// Hard gate: print any invariant violation to stderr and exit
    /// non-zero. Examples, benches and the chaos sweep all route through
    /// this so a safety regression can never scroll past as advisory
    /// output (CI runs them with `set -e` semantics).
    pub fn ensure_invariants(&self, label: &str) {
        if self.invariants_ok() {
            return;
        }
        eprintln!(
            "INVARIANT VIOLATION [{label}] ({} violations):",
            self.invariant_violations.len()
        );
        for v in &self.invariant_violations {
            eprintln!("  - {v}");
        }
        // A violating run is exactly the one whose trace matters: flush
        // the observer (writing any configured JSONL dump) before dying.
        if let Some(obs) = &self.observer {
            obs.flush();
        }
        std::process::exit(1);
    }

    /// One-line summary for bench output.
    pub fn row(&self) -> String {
        format!(
            "{:<22} n={:<3} batch={:<6} tput={:>10.0} tx/s  lat(mean/p50/p99)={:>8.2}/{:>8.2}/{:>8.2} ms  blocks={} orphaned={} rollbacks={}",
            self.protocol.name(),
            self.n,
            self.batch_size,
            self.throughput_tps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.committed_blocks,
            self.orphaned_blocks,
            self.rollbacks,
        )
    }

    /// CSV row (matches [`Report::csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:?},{:.0},{:.3},{:.3},{:.3},{},{},{}",
            self.protocol.name(),
            self.n,
            self.f,
            self.batch_size,
            self.workload,
            self.throughput_tps,
            self.mean_latency_ms,
            self.p50_latency_ms,
            self.p99_latency_ms,
            self.committed_blocks,
            self.orphaned_blocks,
            self.rollbacks,
        )
    }

    pub fn csv_header() -> &'static str {
        "protocol,n,f,batch,workload,throughput_tps,mean_ms,p50_ms,p99_ms,blocks,orphaned,rollbacks"
    }
}
