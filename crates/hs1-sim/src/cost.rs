//! The resource cost model, calibrated so that a 31-replica, batch-100
//! deployment lands near the paper's reported single-region operating
//! point (≈5 ms HotStuff-1 client latency, ≈30k tx/s; §7.2).

use hs1_types::message::Message;
use hs1_types::SimDuration;

/// Durability cost term: what an `hs1-storage` journal `fsync` costs and
/// on which path it sits. Defaults to zero/off, which keeps the
/// calibrated figures (and determinism) of the no-disk model.
///
/// The two flags model the design choice the storage subsystem exposes;
/// either one blocks the corresponding *client response* until the
/// journal record is durable, and occupies the replica's CPU lane for the
/// fsync:
///
/// * **fsync-on-commit** — the journal's `Decided` record is made durable
///   before a committed-kind response leaves. Off the client's
///   early-finality path in HotStuff-1 (the speculative response already
///   left), but squarely on HotStuff/HotStuff-2's commit-response path.
/// * **fsync-on-speculate** — the `SpecMark` record is made durable
///   before the speculative response leaves (what
///   `ReplicaStorage::on_speculate` does). This sits on HotStuff-1's
///   early-finality path and is the honest price of durable speculation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskModel {
    /// Latency of one journal fsync (NVMe ≈ 20–100 µs, SATA SSD ≈ 1 ms).
    pub fsync: SimDuration,
    /// Fsync the decided record on the commit path.
    pub fsync_on_commit: bool,
    /// Fsync the speculation mark before the speculative response.
    pub fsync_on_speculate: bool,
}

impl DiskModel {
    /// An NVMe-class disk (30 µs fsync) journaling on both paths.
    pub fn nvme() -> DiskModel {
        DiskModel {
            fsync: SimDuration::from_micros(30),
            fsync_on_commit: true,
            fsync_on_speculate: true,
        }
    }
}

/// Execution-parallelism cost term: how the replica's CPU model prices
/// batch execution when the conflict-partitioned executor
/// (`hs1_ledger::par`) runs a block on a worker pool. Defaults to one
/// worker — exactly the historical sequential cost, so calibrated figures
/// are untouched unless a scenario opts in.
///
/// The model is deterministic: it derives the wave schedule of the
/// *actual batch* (a pure function of the transactions) and charges the
/// critical path — `sum over waves of ceil(|wave| / workers)` transaction
/// slots — plus a per-wave dispatch overhead. No randomness, no wall
/// clock, so replays and seed sweeps stay byte-identical.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Modeled executor worker threads (1 = sequential, the default).
    pub exec_workers: usize,
    /// Per-wave dispatch/barrier overhead when `exec_workers > 1`
    /// (channel round-trip + wake-up; ~5 µs on commodity hardware).
    pub wave_overhead: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel { exec_workers: 1, wave_overhead: SimDuration::from_micros(5) }
    }
}

impl CpuModel {
    /// A `workers`-wide executor with the default dispatch overhead.
    pub fn with_workers(workers: usize) -> CpuModel {
        CpuModel { exec_workers: workers.max(1), ..CpuModel::default() }
    }

    /// Modeled execution time of one batch at `per_tx` cost per
    /// transaction. With one worker this is exactly `per_tx * len`
    /// (bit-identical to the historical model).
    pub fn batch_exec_time(
        &self,
        per_tx: SimDuration,
        txs: &[hs1_types::Transaction],
    ) -> SimDuration {
        if self.exec_workers <= 1 || txs.len() < hs1_ledger::par::PAR_MIN_BATCH {
            return per_tx * txs.len() as u64;
        }
        let plan = hs1_ledger::par::schedule(txs);
        per_tx * plan.critical_slots(self.exec_workers)
            + self.wave_overhead * plan.waves.len() as u64
    }
}

/// Per-node resource costs.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// NIC serialization rate in bytes/second (c3.4xlarge ≈ 1 Gbit/s).
    pub nic_bytes_per_sec: f64,
    /// CPU cost to verify one signature (ECDSA-scale on Ivy Bridge).
    pub verify: SimDuration,
    /// CPU cost to produce one signature.
    pub sign: SimDuration,
    /// Fixed CPU cost to parse/dispatch any message.
    pub per_msg: SimDuration,
    /// CPU cost to execute one transaction.
    pub per_tx_exec: SimDuration,
    /// CPU cost to hash/admit one transaction into a block.
    pub per_tx_hash: SimDuration,
    /// Journal durability costs (zero by default).
    pub disk: DiskModel,
    /// Execution-parallelism term (sequential by default).
    pub cpu: CpuModel,
}

/// CI-canary slowdown multiplier for every CPU cost term, read once from
/// `HS1_COST_SLOWDOWN` (≥ 1.0; unset or invalid = 1.0, the calibrated
/// model). The bench-gate canary leg sets it to prove the perf-regression
/// gate actually fails on a slower build — it must never be set on honest
/// runs, where the calibrated figures (and every pinned fingerprint)
/// assume the 1.0 model.
fn cost_slowdown() -> f64 {
    use std::sync::OnceLock;
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("HS1_COST_SLOWDOWN")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s >= 1.0)
            .unwrap_or(1.0)
    })
}

fn scaled(d: SimDuration, by: f64) -> SimDuration {
    if by == 1.0 {
        d
    } else {
        SimDuration((d.0 as f64 * by) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        // Per-operation costs are *effective* costs on a 16-core machine:
        // raw single-core crypto costs divided by the pipeline parallelism
        // the paper's implementation gets from verifying signature lists
        // on a thread pool (c3.4xlarge has 16 vCPUs).
        let s = cost_slowdown();
        CostModel {
            nic_bytes_per_sec: 125_000_000.0, // 1 Gbit/s
            verify: scaled(SimDuration::from_micros(12), s),
            sign: scaled(SimDuration::from_micros(8), s),
            per_msg: scaled(SimDuration::from_micros(3), s),
            per_tx_exec: scaled(SimDuration::from_nanos(500), s),
            per_tx_hash: scaled(SimDuration::from_nanos(100), s),
            disk: DiskModel::default(),
            cpu: CpuModel::default(),
        }
    }
}

impl CostModel {
    /// NIC transmission time for `bytes`.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.nic_bytes_per_sec)
    }

    /// CPU time the receiver spends handling `msg` before the engine acts
    /// on it: dispatch, signature checks, batch hashing and (for
    /// proposals) execution of the certified batch.
    pub fn recv_cost(&self, msg: &Message, quorum: usize) -> SimDuration {
        match msg {
            Message::Propose(p) => {
                // Verify the justify certificate (quorum signatures) and
                // hash + (eventually) execute the batch; execution is
                // priced by the CPU model's parallel-executor term.
                let txs = p.block.txs.len() as u64;
                self.per_msg
                    + self.verify * quorum as u64
                    + self.per_tx_hash * txs
                    + self.cpu.batch_exec_time(self.per_tx_exec, &p.block.txs)
            }
            Message::Vote(_) | Message::NewSlot(_) | Message::NewView(_) => {
                // One share verification (+ sign amortized on send side).
                self.per_msg + self.verify
            }
            Message::Prepare(_) | Message::Tc(_) => self.per_msg + self.verify * quorum as u64,
            Message::Wish(_) => self.per_msg + self.verify,
            _ => self.per_msg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_types::message::{ProposeMsg, WishMsg};
    use hs1_types::{Block, Certificate, ReplicaId, Slot, Transaction, View};
    use std::sync::Arc;

    #[test]
    fn tx_time_scales_with_bytes() {
        let c = CostModel::default();
        let t1 = c.tx_time(125_000); // 1ms at 1 Gbit/s
        assert!((t1.as_millis_f64() - 1.0).abs() < 1e-9);
        assert_eq!(c.tx_time(0), SimDuration::ZERO);
    }

    #[test]
    fn propose_cost_dominates_votes() {
        let c = CostModel::default();
        let txs: Vec<_> = (0..100).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        let block =
            Arc::new(Block::new(ReplicaId(0), View(1), Slot(1), Certificate::genesis(), txs));
        let propose = Message::Propose(ProposeMsg { block, commit_cert: None });
        let wish = Message::Wish(WishMsg { view: View(1), share: hs1_crypto::Signature::ZERO });
        assert!(c.recv_cost(&propose, 21) > c.recv_cost(&wish, 21) * 10);
    }

    #[test]
    fn cpu_model_default_matches_sequential_cost() {
        let c = CostModel::default();
        let txs: Vec<_> = (0..500).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        assert_eq!(
            c.cpu.batch_exec_time(c.per_tx_exec, &txs),
            c.per_tx_exec * txs.len() as u64,
            "one worker is bit-identical to the historical model"
        );
    }

    #[test]
    fn cpu_model_parallel_speedup_bounded_by_conflicts() {
        let per_tx = SimDuration::from_nanos(500);
        let cpu = CpuModel::with_workers(4);
        // Conflict-free: one wave, ~4x.
        let free: Vec<_> = (0..512).map(|i| Transaction::kv_write(1, i, i, i)).collect();
        let t_free = cpu.batch_exec_time(per_tx, &free);
        assert!(t_free < per_tx * 512 / 2, "conflict-free batch gains > 2x: {t_free:?}");
        // Total conflict (one hot key): no speedup, plus wave overhead.
        let hot: Vec<_> = (0..512).map(|i| Transaction::kv_write(1, i, 7, i)).collect();
        let t_hot = cpu.batch_exec_time(per_tx, &hot);
        assert!(t_hot >= per_tx * 512, "conflicting batch cannot beat sequential: {t_hot:?}");
    }

    #[test]
    fn propose_cost_scales_with_quorum() {
        let c = CostModel::default();
        let block =
            Arc::new(Block::new(ReplicaId(0), View(1), Slot(1), Certificate::genesis(), vec![]));
        let m = Message::Propose(ProposeMsg { block, commit_cert: None });
        assert!(c.recv_cost(&m, 43) > c.recv_cost(&m, 3));
    }
}
