//! The client oracle: turns replica-side execution events into client
//! finality times without simulating per-transaction response messages.
//!
//! For every block, the oracle records when each replica's response (of
//! either kind) *arrives at the client* — execution completion plus the
//! replica's response NIC time plus the replica→client link delay — and
//! applies the paper's quorum rules:
//!
//! * HotStuff-1 family: finality at the `(n−f)`-th matching response, or
//!   at the `(f+1)`-th committed-kind response, whichever is earlier (§3).
//! * Baselines: finality at the `(f+1)`-th committed response.
//!
//! Responses are grouped by block id; deterministic execution makes the
//! result digest a function of the block, so block-id grouping is exactly
//! the paper's "matching responses" rule.

use std::collections::HashMap;

use hs1_types::{BlockId, ProtocolKind, ReplicaId, ReplyKind, SimTime, TxId};

/// Log-bucketed latency histogram (1 µs … ~100 s).
#[derive(Clone, Debug)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
}

const BUCKETS_PER_DECADE: usize = 20;

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist { buckets: vec![0; 8 * BUCKETS_PER_DECADE], count: 0, sum_ns: 0 }
    }
}

impl LatencyHist {
    fn bucket_of(ns: u64) -> usize {
        if ns < 1_000 {
            return 0;
        }
        let log = (ns as f64 / 1_000.0).log10();
        ((log * BUCKETS_PER_DECADE as f64) as usize).min(8 * BUCKETS_PER_DECADE - 1)
    }

    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1e6
    }

    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Bucket midpoint in ms.
                let lo = 1_000.0 * 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64);
                let hi = 1_000.0 * 10f64.powf((i + 1) as f64 / BUCKETS_PER_DECADE as f64);
                return (lo + hi) / 2.0 / 1e6;
            }
        }
        0.0
    }
}

struct BlockTally {
    /// Response arrival times at the client, any kind.
    arrivals: Vec<SimTime>,
    /// Committed-kind arrivals.
    committed_arrivals: Vec<SimTime>,
    responders: Vec<ReplicaId>,
    finalized_at: Option<SimTime>,
}

impl BlockTally {
    fn new() -> BlockTally {
        BlockTally {
            arrivals: Vec::new(),
            committed_arrivals: Vec::new(),
            responders: Vec::new(),
            finalized_at: None,
        }
    }
}

/// Aggregate client model.
pub struct ClientOracle {
    n: usize,
    f: usize,
    protocol: ProtocolKind,
    tallies: HashMap<BlockId, BlockTally>,
    /// Blocks that reached finality (persists across [`ClientOracle::gc`]
    /// so trailing responses can never re-finalize a block).
    finalized_set: std::collections::HashSet<BlockId>,
    /// Pending transactions: submit time by id.
    submit_times: HashMap<TxId, SimTime>,
    /// Newly finalized (block, finality time) pairs to drain.
    newly_final: Vec<(BlockId, SimTime)>,
}

impl ClientOracle {
    pub fn new(n: usize, f: usize, protocol: ProtocolKind) -> ClientOracle {
        ClientOracle {
            n,
            f,
            protocol,
            tallies: HashMap::new(),
            finalized_set: std::collections::HashSet::new(),
            submit_times: HashMap::new(),
            newly_final: Vec::new(),
        }
    }

    pub fn note_submit(&mut self, tx: TxId, at: SimTime) {
        self.submit_times.entry(tx).or_insert(at);
    }

    pub fn submit_time(&self, tx: TxId) -> Option<SimTime> {
        self.submit_times.get(&tx).copied()
    }

    pub fn take_submit(&mut self, tx: TxId) -> Option<SimTime> {
        self.submit_times.remove(&tx)
    }

    /// Transactions submitted but not yet finalized (the in-flight gauge).
    pub fn pending(&self) -> usize {
        self.submit_times.len()
    }

    /// A replica's response for `block` arrives at the client at
    /// `arrival`. Returns the finality time if this response completes a
    /// quorum.
    pub fn on_response(
        &mut self,
        from: ReplicaId,
        block: BlockId,
        kind: ReplyKind,
        arrival: SimTime,
    ) -> Option<SimTime> {
        if self.finalized_set.contains(&block) {
            return None;
        }
        let nf = self.n - self.f;
        let f1 = self.f + 1;
        let needs_nf = self.protocol.client_needs_nf_quorum();
        let t = self.tallies.entry(block).or_insert_with(BlockTally::new);
        if t.finalized_at.is_some() || t.responders.contains(&from) {
            return None;
        }
        t.responders.push(from);
        t.arrivals.push(arrival);
        if kind == ReplyKind::Committed {
            t.committed_arrivals.push(arrival);
        }
        let spec_ok = needs_nf && t.arrivals.len() >= nf;
        let commit_ok = t.committed_arrivals.len() >= f1;
        if spec_ok || commit_ok {
            // Finality is reached at the arrival completing the quorum —
            // the max over the quorum's arrival times (arrivals may be
            // recorded out of order across replicas).
            let at = if commit_ok && (!spec_ok || !needs_nf) {
                let mut c = t.committed_arrivals.clone();
                c.sort_unstable();
                c[f1 - 1]
            } else {
                let mut a = t.arrivals.clone();
                a.sort_unstable();
                a[nf - 1]
            };
            t.finalized_at = Some(at);
            self.finalized_set.insert(block);
            self.newly_final.push((block, at));
            return Some(at);
        }
        None
    }

    pub fn is_final(&self, block: BlockId) -> bool {
        self.finalized_set.contains(&block)
    }

    pub fn finality_of(&self, block: BlockId) -> Option<SimTime> {
        self.tallies.get(&block).and_then(|t| t.finalized_at)
    }

    /// Drain blocks finalized since the last call.
    pub fn drain_finalized(&mut self) -> Vec<(BlockId, SimTime)> {
        std::mem::take(&mut self.newly_final)
    }

    /// Drop tallies for finalized blocks (bounded memory on long runs).
    pub fn gc(&mut self) {
        self.tallies.retain(|_, t| t.finalized_at.is_none());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn hist_mean_and_quantiles() {
        let mut h = LatencyHist::default();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            h.record(ms * 1_000_000);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean_ms() - 14.5).abs() < 0.01);
        let p50 = h.quantile_ms(0.5);
        assert!(p50 > 3.0 && p50 < 8.0, "p50 {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!(p99 > 80.0 && p99 < 130.0, "p99 {p99}");
    }

    #[test]
    fn nf_quorum_for_hotstuff1() {
        // n=4, f=1: three matching speculative responses finalize.
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff1);
        let b = BlockId::test(1);
        assert!(o.on_response(ReplicaId(0), b, ReplyKind::Speculative, t(1)).is_none());
        assert!(o.on_response(ReplicaId(1), b, ReplyKind::Speculative, t(2)).is_none());
        let fin = o.on_response(ReplicaId(2), b, ReplyKind::Speculative, t(3));
        assert_eq!(fin, Some(t(3)));
        assert!(o.is_final(b));
    }

    #[test]
    fn quorum_time_is_kth_smallest() {
        // Out-of-order arrivals: finality = 3rd smallest arrival.
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff1);
        let b = BlockId::test(1);
        o.on_response(ReplicaId(0), b, ReplyKind::Speculative, t(9));
        o.on_response(ReplicaId(1), b, ReplyKind::Speculative, t(1));
        let fin = o.on_response(ReplicaId(2), b, ReplyKind::Speculative, t(2));
        assert_eq!(fin, Some(t(9)));
    }

    #[test]
    fn committed_fast_path() {
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff1);
        let b = BlockId::test(2);
        o.on_response(ReplicaId(0), b, ReplyKind::Committed, t(1));
        let fin = o.on_response(ReplicaId(1), b, ReplyKind::Committed, t(4));
        assert_eq!(fin, Some(t(4)), "f+1 committed responses finalize");
    }

    #[test]
    fn baseline_needs_committed() {
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff2);
        let b = BlockId::test(3);
        for i in 0..4 {
            assert!(o.on_response(ReplicaId(i), b, ReplyKind::Speculative, t(i as u64)).is_none());
        }
        // Speculative responses never finalize baselines (and they never
        // occur in practice).
        assert!(!o.is_final(b));
    }

    #[test]
    fn duplicate_responders_ignored() {
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff1);
        let b = BlockId::test(4);
        o.on_response(ReplicaId(0), b, ReplyKind::Speculative, t(1));
        o.on_response(ReplicaId(0), b, ReplyKind::Speculative, t(2));
        o.on_response(ReplicaId(0), b, ReplyKind::Speculative, t(3));
        assert!(!o.is_final(b));
    }

    #[test]
    fn submit_times_tracked() {
        let mut o = ClientOracle::new(4, 1, ProtocolKind::HotStuff1);
        let tx = TxId::new(hs1_types::ClientId(1), 5);
        o.note_submit(tx, t(7));
        assert_eq!(o.submit_time(tx), Some(t(7)));
        assert_eq!(o.take_submit(tx), Some(t(7)));
        assert_eq!(o.take_submit(tx), None);
    }
}
