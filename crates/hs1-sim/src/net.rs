//! Network model: per-pair latency (from region placement), per-replica
//! injected delays, deterministic jitter — and, when a chaos plan is
//! installed, seeded per-link loss/duplication/reordering plus
//! partitions (see [`crate::chaos`]).

use crate::chaos::{ChaosPlan, LinkFault};
use crate::regions::{one_way, Region};
use hs1_types::{ReplicaId, SimDuration, SplitMix64};

/// What the network does with one replica→replica message: deliver
/// `copies` copies (0 = lost), each with an extra chaos-induced delay on
/// top of the modeled latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDelivery {
    pub copies: u8,
    pub extra: [SimDuration; 2],
}

impl LinkDelivery {
    const CLEAN: LinkDelivery = LinkDelivery { copies: 1, extra: [SimDuration::ZERO; 2] };
    const DROPPED: LinkDelivery = LinkDelivery { copies: 0, extra: [SimDuration::ZERO; 2] };
}

/// Latency and delay-injection model for a deployment.
#[derive(Clone, Debug)]
pub struct NetModel {
    /// One-way base latency between replicas i and j.
    latency: Vec<Vec<SimDuration>>,
    /// One-way latency replica ↔ client population.
    client_latency: Vec<SimDuration>,
    /// Extra delay injected on messages to *and* from each replica
    /// (Fig. 9 delay-injection experiments).
    injected: Vec<SimDuration>,
    jitter_frac: f64,
    /// Per-link fault probabilities (installed by a chaos plan; `None`
    /// keeps the rng stream of fault-free runs untouched).
    link_faults: Option<Vec<Vec<LinkFault>>>,
    /// Max extra delay a reordered copy picks up.
    reorder_delay: SimDuration,
    /// Active partition: membership of the isolated side, if any.
    partition_side: Option<Vec<bool>>,
}

impl NetModel {
    /// Build from a region placement; clients live in `client_region`.
    pub fn from_regions(placement: &[Region], client_region: Region) -> NetModel {
        let n = placement.len();
        let mut latency = vec![vec![SimDuration::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                latency[i][j] = one_way(placement[i], placement[j]);
            }
        }
        let client_latency = placement.iter().map(|&r| one_way(r, client_region)).collect();
        NetModel {
            latency,
            client_latency,
            injected: vec![SimDuration::ZERO; n],
            jitter_frac: 0.05,
            link_faults: None,
            reorder_delay: SimDuration::ZERO,
            partition_side: None,
        }
    }

    /// Single-region deployment of `n` replicas.
    pub fn single_region(n: usize) -> NetModel {
        Self::from_regions(&vec![Region::NorthVirginia; n], Region::NorthVirginia)
    }

    /// Inject `delay` on replica `r`'s links (both directions).
    pub fn inject(&mut self, r: ReplicaId, delay: SimDuration) {
        self.injected[r.0 as usize] = delay;
    }

    pub fn injected_of(&self, r: ReplicaId) -> SimDuration {
        self.injected[r.0 as usize]
    }

    /// One-way delay for a replica→replica message, with deterministic
    /// jitter drawn from `rng`.
    pub fn replica_delay(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        rng: &mut SplitMix64,
    ) -> SimDuration {
        let base = self.latency[from.0 as usize][to.0 as usize];
        let extra = self.injected[from.0 as usize] + self.injected[to.0 as usize];
        self.jittered(base, rng) + extra
    }

    /// One-way delay replica → client (responses) or client → replica
    /// (requests); injected delay on the replica side applies.
    pub fn client_delay(&self, replica: ReplicaId, rng: &mut SplitMix64) -> SimDuration {
        let base = self.client_latency[replica.0 as usize];
        self.jittered(base, rng) + self.injected[replica.0 as usize]
    }

    /// Install a chaos plan's per-link fault matrix.
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        assert_eq!(plan.n, self.n(), "chaos plan derived for a different deployment size");
        self.link_faults = Some(plan.links.clone());
        self.reorder_delay = plan.reorder_delay;
    }

    /// Cut every link between `side` and its complement.
    pub fn set_partition(&mut self, side: &[u32]) {
        let mut members = vec![false; self.n()];
        for &r in side {
            if let Some(m) = members.get_mut(r as usize) {
                *m = true;
            }
        }
        self.partition_side = Some(members);
    }

    /// Remove the active partition.
    pub fn heal_partition(&mut self) {
        self.partition_side = None;
    }

    pub fn partition_active(&self) -> bool {
        self.partition_side.is_some()
    }

    /// Chaos verdict for one replica→replica message. Draws from `rng`
    /// only when link faults are installed, so fault-free runs keep their
    /// historical rng stream (and their calibrated figures) bit-for-bit.
    /// Partition checks are deterministic (no draw); loopback is never
    /// faulted.
    pub fn link_delivery(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        rng: &mut SplitMix64,
    ) -> LinkDelivery {
        if from == to {
            return LinkDelivery::CLEAN;
        }
        if let Some(side) = &self.partition_side {
            if side[from.0 as usize] != side[to.0 as usize] {
                return LinkDelivery::DROPPED;
            }
        }
        let Some(faults) = &self.link_faults else {
            return LinkDelivery::CLEAN;
        };
        let l = faults[from.0 as usize][to.0 as usize];
        // Fixed draw order (drop, dup, then reorder per copy) keeps the
        // stream replayable: the same plan always consumes the same draws.
        if l.drop > 0.0 && rng.chance(l.drop) {
            return LinkDelivery::DROPPED;
        }
        let mut out = LinkDelivery::CLEAN;
        if l.dup > 0.0 && rng.chance(l.dup) {
            out.copies = 2;
        }
        if l.reorder > 0.0 && self.reorder_delay > SimDuration::ZERO {
            for i in 0..out.copies as usize {
                if rng.chance(l.reorder) {
                    out.extra[i] = SimDuration::from_nanos(rng.next_range(self.reorder_delay.0));
                }
            }
        }
        out
    }

    fn jittered(&self, base: SimDuration, rng: &mut SplitMix64) -> SimDuration {
        if base == SimDuration::ZERO {
            return base;
        }
        let f = 1.0 + self.jitter_frac * (2.0 * rng.next_f64() - 1.0);
        SimDuration::from_secs_f64(base.as_secs_f64() * f)
    }

    pub fn n(&self) -> usize {
        self.latency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::spread;

    #[test]
    fn injection_applies_both_directions() {
        let mut m = NetModel::single_region(4);
        m.inject(ReplicaId(1), SimDuration::from_millis(50));
        let mut rng = SplitMix64::new(1);
        let to_injected = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut rng);
        let from_injected = m.replica_delay(ReplicaId(1), ReplicaId(0), &mut rng);
        let clean = m.replica_delay(ReplicaId(0), ReplicaId(2), &mut rng);
        assert!(to_injected > SimDuration::from_millis(49));
        assert!(from_injected > SimDuration::from_millis(49));
        assert!(clean < SimDuration::from_millis(1));
    }

    #[test]
    fn geo_placement_separates_regions() {
        let placement = spread(4, 2); // alternating Virginia / HongKong
        let m = NetModel::from_regions(&placement, Region::NorthVirginia);
        let mut rng = SplitMix64::new(2);
        let same = m.replica_delay(ReplicaId(0), ReplicaId(2), &mut rng);
        let cross = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut rng);
        assert!(cross > same * 10);
        // Clients in Virginia: responses from HK replicas are slow.
        assert!(
            m.client_delay(ReplicaId(1), &mut rng) > m.client_delay(ReplicaId(0), &mut rng) * 10
        );
    }

    #[test]
    fn partition_cuts_cross_links_only() {
        let mut m = NetModel::single_region(4);
        let mut rng = SplitMix64::new(3);
        m.set_partition(&[0, 2]);
        assert!(m.partition_active());
        let cross = m.link_delivery(ReplicaId(0), ReplicaId(1), &mut rng);
        assert_eq!(cross.copies, 0, "cross-partition messages are lost");
        let same_side = m.link_delivery(ReplicaId(0), ReplicaId(2), &mut rng);
        assert_eq!(same_side.copies, 1);
        let other_side = m.link_delivery(ReplicaId(1), ReplicaId(3), &mut rng);
        assert_eq!(other_side.copies, 1);
        m.heal_partition();
        let healed = m.link_delivery(ReplicaId(0), ReplicaId(1), &mut rng);
        assert_eq!(healed.copies, 1);
    }

    #[test]
    fn link_faults_drop_dup_and_reorder() {
        use crate::chaos::{ChaosConfig, ChaosPlan};
        let mut m = NetModel::single_region(4);
        let cfg = ChaosConfig { drop_p: 0.5, dup_p: 0.5, reorder_p: 0.5, ..ChaosConfig::default() };
        let plan = ChaosPlan::generate(9, &cfg, 4, hs1_types::SimTime(1_000_000_000));
        m.install_chaos(&plan);
        let mut rng = SplitMix64::new(5);
        let (mut drops, mut dups, mut reorders) = (0, 0, 0);
        for _ in 0..4000 {
            let d = m.link_delivery(ReplicaId(0), ReplicaId(1), &mut rng);
            match d.copies {
                0 => drops += 1,
                2 => dups += 1,
                _ => {}
            }
            if d.extra.iter().take(d.copies as usize).any(|&e| e > SimDuration::ZERO) {
                reorders += 1;
                assert!(d.extra.iter().all(|&e| e < plan.reorder_delay));
            }
        }
        assert!(drops > 0, "drops occur");
        assert!(dups > 0, "duplicates occur");
        assert!(reorders > 0, "reordering occurs");
        // Loopback is never faulted.
        for _ in 0..100 {
            assert_eq!(m.link_delivery(ReplicaId(2), ReplicaId(2), &mut rng).copies, 1);
        }
    }

    #[test]
    fn no_chaos_consumes_no_draws() {
        let m = NetModel::single_region(4);
        let mut rng = SplitMix64::new(6);
        let before = rng.clone().next_u64();
        let d = m.link_delivery(ReplicaId(0), ReplicaId(1), &mut rng);
        assert_eq!(d.copies, 1);
        assert_eq!(rng.next_u64(), before, "fault-free delivery leaves the rng stream alone");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = NetModel::single_region(4);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            let da = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut a);
            let db = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut b);
            assert_eq!(da, db);
            let base = SimDuration::from_micros(250).as_secs_f64();
            assert!(da.as_secs_f64() > base * 0.94 && da.as_secs_f64() < base * 1.06);
        }
    }
}
