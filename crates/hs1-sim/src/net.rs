//! Network model: per-pair latency (from region placement), per-replica
//! injected delays, and deterministic jitter.

use crate::regions::{one_way, Region};
use hs1_types::{ReplicaId, SimDuration, SplitMix64};

/// Latency and delay-injection model for a deployment.
#[derive(Clone, Debug)]
pub struct NetModel {
    /// One-way base latency between replicas i and j.
    latency: Vec<Vec<SimDuration>>,
    /// One-way latency replica ↔ client population.
    client_latency: Vec<SimDuration>,
    /// Extra delay injected on messages to *and* from each replica
    /// (Fig. 9 delay-injection experiments).
    injected: Vec<SimDuration>,
    jitter_frac: f64,
}

impl NetModel {
    /// Build from a region placement; clients live in `client_region`.
    pub fn from_regions(placement: &[Region], client_region: Region) -> NetModel {
        let n = placement.len();
        let mut latency = vec![vec![SimDuration::ZERO; n]; n];
        for i in 0..n {
            for j in 0..n {
                latency[i][j] = one_way(placement[i], placement[j]);
            }
        }
        let client_latency = placement.iter().map(|&r| one_way(r, client_region)).collect();
        NetModel {
            latency,
            client_latency,
            injected: vec![SimDuration::ZERO; n],
            jitter_frac: 0.05,
        }
    }

    /// Single-region deployment of `n` replicas.
    pub fn single_region(n: usize) -> NetModel {
        Self::from_regions(&vec![Region::NorthVirginia; n], Region::NorthVirginia)
    }

    /// Inject `delay` on replica `r`'s links (both directions).
    pub fn inject(&mut self, r: ReplicaId, delay: SimDuration) {
        self.injected[r.0 as usize] = delay;
    }

    pub fn injected_of(&self, r: ReplicaId) -> SimDuration {
        self.injected[r.0 as usize]
    }

    /// One-way delay for a replica→replica message, with deterministic
    /// jitter drawn from `rng`.
    pub fn replica_delay(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        rng: &mut SplitMix64,
    ) -> SimDuration {
        let base = self.latency[from.0 as usize][to.0 as usize];
        let extra = self.injected[from.0 as usize] + self.injected[to.0 as usize];
        self.jittered(base, rng) + extra
    }

    /// One-way delay replica → client (responses) or client → replica
    /// (requests); injected delay on the replica side applies.
    pub fn client_delay(&self, replica: ReplicaId, rng: &mut SplitMix64) -> SimDuration {
        let base = self.client_latency[replica.0 as usize];
        self.jittered(base, rng) + self.injected[replica.0 as usize]
    }

    fn jittered(&self, base: SimDuration, rng: &mut SplitMix64) -> SimDuration {
        if base == SimDuration::ZERO {
            return base;
        }
        let f = 1.0 + self.jitter_frac * (2.0 * rng.next_f64() - 1.0);
        SimDuration::from_secs_f64(base.as_secs_f64() * f)
    }

    pub fn n(&self) -> usize {
        self.latency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::spread;

    #[test]
    fn injection_applies_both_directions() {
        let mut m = NetModel::single_region(4);
        m.inject(ReplicaId(1), SimDuration::from_millis(50));
        let mut rng = SplitMix64::new(1);
        let to_injected = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut rng);
        let from_injected = m.replica_delay(ReplicaId(1), ReplicaId(0), &mut rng);
        let clean = m.replica_delay(ReplicaId(0), ReplicaId(2), &mut rng);
        assert!(to_injected > SimDuration::from_millis(49));
        assert!(from_injected > SimDuration::from_millis(49));
        assert!(clean < SimDuration::from_millis(1));
    }

    #[test]
    fn geo_placement_separates_regions() {
        let placement = spread(4, 2); // alternating Virginia / HongKong
        let m = NetModel::from_regions(&placement, Region::NorthVirginia);
        let mut rng = SplitMix64::new(2);
        let same = m.replica_delay(ReplicaId(0), ReplicaId(2), &mut rng);
        let cross = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut rng);
        assert!(cross > same * 10);
        // Clients in Virginia: responses from HK replicas are slow.
        assert!(
            m.client_delay(ReplicaId(1), &mut rng) > m.client_delay(ReplicaId(0), &mut rng) * 10
        );
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let m = NetModel::single_region(4);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            let da = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut a);
            let db = m.replica_delay(ReplicaId(0), ReplicaId(1), &mut b);
            assert_eq!(da, db);
            let base = SimDuration::from_micros(250).as_secs_f64();
            assert!(da.as_secs_f64() > base * 0.94 && da.as_secs_f64() < base * 1.06);
        }
    }
}
