//! Zipfian distribution sampler — the YCSB reference algorithm
//! (Gray et al., "Quickly Generating Billion-Record Synthetic Databases",
//! SIGMOD '94), as used by YCSB's `ZipfianGenerator`.
//!
//! Constant-time sampling after an O(n)-free closed-form setup using the
//! incomplete zeta approximation.

use hs1_types::SplitMix64;

/// Zipfian sampler over `[0, n)` with exponent `theta` (YCSB default
/// 0.99).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta in [0,1) required");
        let zetan = Self::zeta_approx(n, theta);
        let zeta2theta = Self::zeta_exact(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2theta }
    }

    /// YCSB default skew.
    pub fn ycsb_default(n: u64) -> Zipfian {
        Zipfian::new(n, 0.99)
    }

    fn zeta_exact(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Incomplete zeta: exact for small n, Euler–Maclaurin approximation
    /// beyond (error < 1e-9 for n ≥ 10^4, far below sampling noise).
    fn zeta_approx(n: u64, theta: f64) -> f64 {
        const EXACT_LIMIT: u64 = 10_000;
        if n <= EXACT_LIMIT {
            return Self::zeta_exact(n, theta);
        }
        let head = Self::zeta_exact(EXACT_LIMIT, theta);
        // ∫_{L}^{n} x^-θ dx + ½(n^-θ − L^-θ)
        let l = EXACT_LIMIT as f64;
        let nf = n as f64;
        let tail = (nf.powf(1.0 - theta) - l.powf(1.0 - theta)) / (1.0 - theta)
            + 0.5 * (nf.powf(-theta) - l.powf(-theta));
        head + tail
    }

    /// Sample a rank in `[0, n)`; rank 0 is the hottest key.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u) - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * v) as u64 % self.n
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Reference zeta(2, θ) (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let z = Zipfian::ycsb_default(600_000);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 600_000);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipfian::ycsb_default(600_000);
        let mut rng = SplitMix64::new(2);
        let samples = 100_000;
        let hot = (0..samples)
            .filter(|_| z.sample(&mut rng) < 600) // hottest 0.1% of keys
            .count();
        let frac = hot as f64 / samples as f64;
        // Under θ=0.99 the top 0.1% of ranks draw roughly a third of the
        // mass; uniform would give 0.001.
        assert!(frac > 0.2, "hot fraction {frac}");
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipfian::ycsb_default(10_000);
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..200_000 {
            let s = z.sample(&mut rng);
            if s < 10 {
                counts[s as usize] += 1;
            }
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[5], "{counts:?}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipfian::new(100, 0.0);
        let mut rng = SplitMix64::new(4);
        let mut counts = vec![0u32; 100];
        let samples = 200_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expected = samples as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.7 && (c as f64) < expected * 1.3,
                "bucket {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn zeta_approx_matches_exact() {
        for n in [10_000u64, 20_000, 50_000] {
            let exact = Zipfian::zeta_exact(n, 0.99);
            let approx = Zipfian::zeta_approx(n, 0.99);
            assert!((exact - approx).abs() / exact < 1e-6, "n={n}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipfian::ycsb_default(1000);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
