//! TPC-C workload generator: NewOrder/Payment mix.
//!
//! The standard TPC-C mix is 45% NewOrder / 43% Payment / 12% read-only
//! transactions; normalized to the two read-write transactions the
//! executor implements, that is ~51% NewOrder / 49% Payment.

use crate::Workload;
use hs1_ledger::tpcc::{CUSTOMERS_PER_DISTRICT, DISTRICTS_PER_WAREHOUSE};
use hs1_types::{ClientId, SplitMix64, Transaction, TxId, TxOp};

#[derive(Clone, Debug)]
pub struct TpccGen {
    warehouses: u16,
    rng: SplitMix64,
    neworder_fraction: f64,
}

impl TpccGen {
    /// 4 warehouses ≈ the paper's 260k-record database.
    pub fn paper_default(seed: u64) -> TpccGen {
        TpccGen::new(4, seed)
    }

    pub fn new(warehouses: u16, seed: u64) -> TpccGen {
        assert!(warehouses > 0);
        TpccGen {
            warehouses,
            rng: SplitMix64::new(seed ^ 0x5450_4343), // "TPCC"
            neworder_fraction: 0.51,
        }
    }
}

impl Workload for TpccGen {
    fn next_tx(&mut self, client: ClientId, seq: u64) -> Transaction {
        let warehouse = self.rng.next_range(self.warehouses as u64) as u16;
        let district = self.rng.next_range(DISTRICTS_PER_WAREHOUSE as u64) as u8;
        let customer = self.rng.next_range(CUSTOMERS_PER_DISTRICT as u64) as u16;
        let op = if self.rng.chance(self.neworder_fraction) {
            // ol_cnt uniform in 5..=15 per the TPC-C spec.
            let lines = 5 + self.rng.next_range(11) as u8;
            TxOp::TpccNewOrder { warehouse, district, customer, lines, seed: self.rng.next_u64() }
        } else {
            // Payment amount uniform in $1.00..$5000.00 per the spec.
            let amount_cents = 100 + self.rng.next_range(499_901) as u32;
            TxOp::TpccPayment { warehouse, district, customer, amount_cents }
        };
        Transaction::new(TxId::new(client, seq), op)
    }

    fn name(&self) -> &'static str {
        "TPC-C"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratio() {
        let mut g = TpccGen::paper_default(5);
        let mut neworders = 0;
        let mut payments = 0;
        for seq in 0..10_000 {
            match g.next_tx(ClientId(0), seq).op {
                TxOp::TpccNewOrder { .. } => neworders += 1,
                TxOp::TpccPayment { .. } => payments += 1,
                other => panic!("unexpected op {other:?}"),
            }
        }
        let frac = neworders as f64 / (neworders + payments) as f64;
        assert!((0.46..0.56).contains(&frac), "neworder fraction {frac}");
    }

    #[test]
    fn coordinates_in_range() {
        let mut g = TpccGen::new(8, 2);
        for seq in 0..5000 {
            match g.next_tx(ClientId(1), seq).op {
                TxOp::TpccNewOrder { warehouse, district, customer, lines, .. } => {
                    assert!(warehouse < 8);
                    assert!(district < DISTRICTS_PER_WAREHOUSE as u8);
                    assert!(customer < CUSTOMERS_PER_DISTRICT);
                    assert!((5..=15).contains(&lines));
                }
                TxOp::TpccPayment { warehouse, district, customer, amount_cents } => {
                    assert!(warehouse < 8);
                    assert!(district < DISTRICTS_PER_WAREHOUSE as u8);
                    assert!(customer < CUSTOMERS_PER_DISTRICT);
                    assert!((100..=500_000).contains(&amount_cents));
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TpccGen::paper_default(9);
        let mut b = TpccGen::paper_default(9);
        for seq in 0..50 {
            assert_eq!(a.next_tx(ClientId(3), seq), b.next_tx(ClientId(3), seq));
        }
    }
}
