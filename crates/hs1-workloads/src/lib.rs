//! Workload generators for the HotStuff-1 evaluation (§7 "Workloads"):
//!
//! * [`ycsb::YcsbGen`] — YCSB-style key-value writes over 600k records with
//!   a Zipfian key chooser ([`zipf::Zipfian`], the YCSB reference
//!   algorithm).
//! * [`tpcc_gen::TpccGen`] — TPC-C NewOrder/Payment mix at the standard
//!   45/43 ratio (normalized to the two transactions the executor
//!   implements).
//!
//! Generators are deterministic functions of their seed, so a simulation
//! seed pins the entire workload.

pub mod tpcc_gen;
pub mod ycsb;
pub mod zipf;

pub use tpcc_gen::TpccGen;
pub use ycsb::YcsbGen;
pub use zipf::Zipfian;

use hs1_types::{ClientId, Transaction};

/// A source of client transactions. `next_tx` issues the `seq`-th
/// transaction of `client`.
pub trait Workload {
    fn next_tx(&mut self, client: ClientId, seq: u64) -> Transaction;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}
