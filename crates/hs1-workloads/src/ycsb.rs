//! YCSB workload: "key-value store write operations that access a database
//! of 600k records" (§7, Workloads), with the standard Zipfian key chooser.

use crate::zipf::Zipfian;
use crate::Workload;
use hs1_types::{ClientId, SplitMix64, Transaction, TxId, TxOp};

/// YCSB write-only generator (the paper's configuration).
#[derive(Clone, Debug)]
pub struct YcsbGen {
    records: u64,
    zipf: Zipfian,
    rng: SplitMix64,
    /// Fraction of reads (0.0 = paper's write-only configuration).
    read_fraction: f64,
}

impl YcsbGen {
    pub const PAPER_RECORDS: u64 = 600_000;

    /// The paper's configuration: 600k records, zipfian writes.
    pub fn paper_default(seed: u64) -> YcsbGen {
        YcsbGen::new(Self::PAPER_RECORDS, 0.99, 0.0, seed)
    }

    pub fn new(records: u64, theta: f64, read_fraction: f64, seed: u64) -> YcsbGen {
        YcsbGen {
            records,
            zipf: Zipfian::new(records, theta),
            rng: SplitMix64::new(seed ^ 0x5943_5342), // "YCSB"
            read_fraction,
        }
    }

    /// Scatter a zipfian rank across the key space so hot keys are not
    /// clustered at the low end (YCSB's fnv-hash scramble, simplified).
    fn scramble(&self, rank: u64) -> u64 {
        let mut z = rank.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        z % self.records
    }
}

impl Workload for YcsbGen {
    fn next_tx(&mut self, client: ClientId, seq: u64) -> Transaction {
        let rank = self.zipf.sample(&mut self.rng);
        let key = self.scramble(rank);
        let op = if self.read_fraction > 0.0 && self.rng.chance(self.read_fraction) {
            TxOp::KvRead { key }
        } else {
            TxOp::KvWrite { key, seed: self.rng.next_u64() }
        };
        Transaction::new(TxId::new(client, seq), op)
    }

    fn name(&self) -> &'static str {
        "YCSB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_write_only() {
        let mut g = YcsbGen::paper_default(7);
        for seq in 0..1000 {
            let tx = g.next_tx(ClientId(1), seq);
            assert!(matches!(tx.op, TxOp::KvWrite { .. }));
            assert_eq!(tx.id.seq, seq);
            match tx.op {
                TxOp::KvWrite { key, .. } => assert!(key < YcsbGen::PAPER_RECORDS),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn read_fraction_respected() {
        let mut g = YcsbGen::new(1000, 0.5, 0.5, 3);
        let reads = (0..2000)
            .filter(|&s| matches!(g.next_tx(ClientId(0), s).op, TxOp::KvRead { .. }))
            .count();
        assert!((800..1200).contains(&reads), "reads {reads}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = YcsbGen::paper_default(11);
        let mut b = YcsbGen::paper_default(11);
        for seq in 0..100 {
            assert_eq!(a.next_tx(ClientId(2), seq), b.next_tx(ClientId(2), seq));
        }
    }

    #[test]
    fn scramble_spreads_hot_keys() {
        let g = YcsbGen::paper_default(1);
        let k0 = g.scramble(0);
        let k1 = g.scramble(1);
        assert_ne!(k0, k1);
        assert!(k0.abs_diff(k1) > 1_000, "adjacent ranks land far apart");
    }
}
