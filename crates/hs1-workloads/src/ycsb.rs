//! YCSB workload: "key-value store write operations that access a database
//! of 600k records" (§7, Workloads), with the standard Zipfian key chooser.

use crate::zipf::Zipfian;
use crate::Workload;
use hs1_types::{ClientId, SplitMix64, Transaction, TxId, TxOp};

/// YCSB write-only generator (the paper's configuration).
#[derive(Clone, Debug)]
pub struct YcsbGen {
    records: u64,
    zipf: Zipfian,
    rng: SplitMix64,
    /// Fraction of reads (0.0 = paper's write-only configuration).
    read_fraction: f64,
    /// Hot-set rotation period in transactions (0 = static hot set).
    churn_every: u64,
    /// Transactions issued so far (drives the churn epoch).
    issued: u64,
}

impl YcsbGen {
    pub const PAPER_RECORDS: u64 = 600_000;

    /// The paper's configuration: 600k records, zipfian writes.
    pub fn paper_default(seed: u64) -> YcsbGen {
        YcsbGen::new(Self::PAPER_RECORDS, 0.99, 0.0, seed)
    }

    pub fn new(records: u64, theta: f64, read_fraction: f64, seed: u64) -> YcsbGen {
        YcsbGen {
            records,
            zipf: Zipfian::new(records, theta),
            rng: SplitMix64::new(seed ^ 0x5943_5342), // "YCSB"
            read_fraction,
            churn_every: 0,
            issued: 0,
        }
    }

    /// Rotate the hot set every `every` transactions: the zipfian rank
    /// distribution is unchanged, but the key each rank maps to shifts by
    /// a large odd stride once per epoch. Deterministic — the epoch is a
    /// pure function of how many transactions this generator has issued —
    /// so same-seed runs stay byte-identical. `0` disables churn.
    ///
    /// This models "trending key" traffic (flash sales, viral posts): the
    /// conflict-partitioned executor's worst case, since no static
    /// partitioning ever stays aligned with the hot keys.
    pub fn with_hot_churn(mut self, every: u64) -> YcsbGen {
        self.churn_every = every;
        self
    }

    /// Scatter a zipfian rank across the key space so hot keys are not
    /// clustered at the low end (YCSB's fnv-hash scramble, simplified).
    /// Under churn the mapping is further shifted by the current epoch,
    /// relocating the entire hot set.
    fn scramble(&self, rank: u64) -> u64 {
        let epoch = match self.churn_every {
            0 => 0,
            k => self.issued / k,
        };
        let mut z = rank.wrapping_mul(0xff51_afd7_ed55_8ccd);
        z ^= z >> 33;
        z = z.wrapping_add(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z % self.records
    }
}

impl Workload for YcsbGen {
    fn next_tx(&mut self, client: ClientId, seq: u64) -> Transaction {
        let rank = self.zipf.sample(&mut self.rng);
        let key = self.scramble(rank);
        self.issued += 1;
        let op = if self.read_fraction > 0.0 && self.rng.chance(self.read_fraction) {
            TxOp::KvRead { key }
        } else {
            TxOp::KvWrite { key, seed: self.rng.next_u64() }
        };
        Transaction::new(TxId::new(client, seq), op)
    }

    fn name(&self) -> &'static str {
        "YCSB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_write_only() {
        let mut g = YcsbGen::paper_default(7);
        for seq in 0..1000 {
            let tx = g.next_tx(ClientId(1), seq);
            assert!(matches!(tx.op, TxOp::KvWrite { .. }));
            assert_eq!(tx.id.seq, seq);
            match tx.op {
                TxOp::KvWrite { key, .. } => assert!(key < YcsbGen::PAPER_RECORDS),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn read_fraction_respected() {
        let mut g = YcsbGen::new(1000, 0.5, 0.5, 3);
        let reads = (0..2000)
            .filter(|&s| matches!(g.next_tx(ClientId(0), s).op, TxOp::KvRead { .. }))
            .count();
        assert!((800..1200).contains(&reads), "reads {reads}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = YcsbGen::paper_default(11);
        let mut b = YcsbGen::paper_default(11);
        for seq in 0..100 {
            assert_eq!(a.next_tx(ClientId(2), seq), b.next_tx(ClientId(2), seq));
        }
    }

    #[test]
    fn scramble_spreads_hot_keys() {
        let g = YcsbGen::paper_default(1);
        let k0 = g.scramble(0);
        let k1 = g.scramble(1);
        assert_ne!(k0, k1);
        assert!(k0.abs_diff(k1) > 1_000, "adjacent ranks land far apart");
    }

    /// Advance the generator by `n` transactions (moves the churn epoch).
    fn advance(g: &mut YcsbGen, n: u64) {
        for seq in 0..n {
            g.next_tx(ClientId(0), seq);
        }
    }

    #[test]
    fn hot_churn_rotates_the_hot_set_every_epoch() {
        let mut g = YcsbGen::paper_default(5).with_hot_churn(100);
        // The key the hottest zipfian rank maps to, across three epochs.
        let e0 = g.scramble(0);
        advance(&mut g, 100);
        let e1 = g.scramble(0);
        advance(&mut g, 100);
        let e2 = g.scramble(0);
        assert_ne!(e0, e1, "hot key moved at the epoch boundary");
        assert_ne!(e1, e2, "and again the next epoch");
        // The rotation relocates, it does not re-cluster: two hot ranks
        // stay apart after the shift.
        assert!(g.scramble(0).abs_diff(g.scramble(1)) > 1_000);
    }

    #[test]
    fn hot_churn_is_stable_within_an_epoch() {
        let mut g = YcsbGen::paper_default(5).with_hot_churn(10_000);
        let fresh = g.scramble(0);
        advance(&mut g, 9_999);
        assert_eq!(g.scramble(0), fresh, "hot key holds until the epoch rolls");
        advance(&mut g, 1);
        assert_ne!(g.scramble(0), fresh, "and rolls exactly at the boundary");
    }

    #[test]
    fn hot_churn_is_deterministic_per_seed() {
        let mut a = YcsbGen::paper_default(11).with_hot_churn(64);
        let mut b = YcsbGen::paper_default(11).with_hot_churn(64);
        for seq in 0..300 {
            assert_eq!(a.next_tx(ClientId(2), seq), b.next_tx(ClientId(2), seq));
        }
    }

    #[test]
    fn churn_disabled_matches_static_mapping() {
        let mut plain = YcsbGen::paper_default(3);
        let mut zero = YcsbGen::paper_default(3).with_hot_churn(0);
        for seq in 0..200 {
            assert_eq!(plain.next_tx(ClientId(0), seq), zero.next_tx(ClientId(0), seq));
        }
    }
}
