//! Cryptographic primitives for the HotStuff-1 reproduction.
//!
//! Everything in this crate is implemented from scratch on top of `std`:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, validated against the NIST test
//!   vectors in this crate's unit tests.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), validated against RFC 4231 vectors.
//! * [`keys`] — a keyed-MAC *signature* scheme with a shared public key
//!   registry.
//!
//! # Security note (documented substitution)
//!
//! The paper's implementation signs messages with conventional digital
//! signatures and aggregates certificates as *lists of `n − f` signatures*
//! (HotStuff-1 §7, "Implementation"). No asymmetric-crypto crate is
//! available in this offline environment, so signatures here are
//! HMAC-SHA-256 tags under per-replica secret keys held in a registry that
//! every verifier can consult. This preserves the protocol-visible API
//! (sign / verify / aggregate / quorum-check), message sizes and a
//! calibratable compute cost, but is **not** unforgeable against an
//! adversary that controls a verifier. The simulator separately charges
//! realistic ECDSA-scale CPU costs for sign/verify so that performance
//! shapes match the paper's testbed.

pub mod hmac;
pub mod keys;
pub mod sha256;

pub use hmac::hmac_sha256;
pub use keys::{KeyPair, PublicKeyRegistry, SecretKey, Signature};
pub use sha256::{sha256, Digest, Sha256};
