//! HMAC-SHA-256 (RFC 2104), validated against RFC 4231 test vectors.

use crate::sha256::{sha256, Digest, Sha256};

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Compute HMAC-SHA-256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key).0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

/// Streaming HMAC for multi-part messages (avoids concatenating parts).
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK],
}

impl HmacSha256 {
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&sha256(key).0);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: Vec<u8> = k.iter().map(|b| b ^ IPAD).collect();
        inner.update(&ipad);
        let mut outer_key = [0u8; BLOCK];
        for (o, b) in outer_key.iter_mut().zip(k.iter()) {
            *o = b ^ OPAD;
        }
        HmacSha256 { inner, outer_key }
    }

    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(&inner_digest.0);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let d = hmac_sha256(&key, b"Hi There");
        assert_eq!(d.to_hex(), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let d = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(d.to_hex(), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let d = hmac_sha256(&key, &msg);
        assert_eq!(d.to_hex(), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let d = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(d.to_hex(), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn rfc4231_case4_composite_key() {
        let key: Vec<u8> = (0x01..=0x19).collect();
        let msg = [0xcd; 50];
        let d = hmac_sha256(&key, &msg);
        assert_eq!(d.to_hex(), "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
    }

    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than \
                    block-size data. The key needs to be hashed before being used by the \
                    HMAC algorithm.";
        let d = hmac_sha256(&key, msg.as_ref());
        assert_eq!(d.to_hex(), "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"some key material";
        let msg = b"part one | part two | part three";
        let mut h = HmacSha256::new(key);
        h.update(b"part one | ");
        h.update(b"part two | ");
        h.update(b"part three");
        assert_eq!(h.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
