//! Keyed signature scheme with a shared registry.
//!
//! Mirrors the API of a conventional signature scheme (keygen / sign /
//! verify). A [`Signature`] is an HMAC-SHA-256 tag under the signer's
//! secret key; the [`PublicKeyRegistry`] holds every participant's key so
//! any party can verify (see the crate-level security note: this is a
//! documented substitution for ECDSA in an offline environment).
//!
//! Domain separation: every signature binds a `domain` byte so that votes
//! in different protocol contexts (propose-vote, new-slot, new-view, wish)
//! can never be replayed across contexts — the slotted protocol's dual
//! certificates (HotStuff-1 §6.1) depend on this.

use crate::hmac::HmacSha256;
use crate::sha256::Digest;

/// A signature: 32-byte MAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 32]);

impl Signature {
    pub const ZERO: Signature = Signature([0u8; 32]);
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sig({:02x}{:02x}{:02x}{:02x}..)", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// A secret signing key.
#[derive(Clone)]
pub struct SecretKey(pub [u8; 32]);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// A signing identity: index into the registry plus the secret key.
#[derive(Clone, Debug)]
pub struct KeyPair {
    pub index: u32,
    pub secret: SecretKey,
}

impl KeyPair {
    /// Deterministically derive the keypair for participant `index` of a
    /// deployment identified by `deployment_seed`. All replicas of a test
    /// deployment derive the same registry this way.
    pub fn derive(deployment_seed: u64, index: u32) -> KeyPair {
        let mut h = HmacSha256::new(b"hs1/keygen");
        h.update(&deployment_seed.to_be_bytes());
        h.update(&index.to_be_bytes());
        KeyPair { index, secret: SecretKey(h.finalize().0) }
    }

    /// Sign `msg` under `domain`.
    pub fn sign(&self, domain: u8, msg: &[u8]) -> Signature {
        sign_with(&self.secret, domain, msg)
    }
}

fn sign_with(secret: &SecretKey, domain: u8, msg: &[u8]) -> Signature {
    let mut h = HmacSha256::new(&secret.0);
    h.update(&[domain]);
    h.update(msg);
    Signature(h.finalize().0)
}

/// Registry of all participants' keys; verifiers consult it to check tags.
#[derive(Clone, Debug)]
pub struct PublicKeyRegistry {
    keys: Vec<SecretKey>,
}

impl PublicKeyRegistry {
    /// Build the registry for `count` participants of a deployment.
    pub fn derive(deployment_seed: u64, count: u32) -> PublicKeyRegistry {
        let keys = (0..count).map(|i| KeyPair::derive(deployment_seed, i).secret).collect();
        PublicKeyRegistry { keys }
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Verify that `sig` is participant `index`'s signature on `msg` in
    /// `domain`.
    pub fn verify(&self, index: u32, domain: u8, msg: &[u8], sig: &Signature) -> bool {
        match self.keys.get(index as usize) {
            Some(secret) => sign_with(secret, domain, msg) == *sig,
            None => false,
        }
    }
}

/// Derive a per-message digest commitment used when signing structured
/// payloads: callers hash their fields into a [`Digest`] and sign that.
pub fn signed_payload(parts: &[&[u8]]) -> Digest {
    let mut h = crate::sha256::Sha256::new();
    for p in parts {
        h.update_u64(p.len() as u64);
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = PublicKeyRegistry::derive(42, 4);
        let kp = KeyPair::derive(42, 2);
        let sig = kp.sign(1, b"hello");
        assert!(reg.verify(2, 1, b"hello", &sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        let reg = PublicKeyRegistry::derive(42, 4);
        let kp = KeyPair::derive(42, 2);
        let sig = kp.sign(1, b"hello");
        assert!(!reg.verify(3, 1, b"hello", &sig));
    }

    #[test]
    fn wrong_domain_rejected() {
        let reg = PublicKeyRegistry::derive(42, 4);
        let kp = KeyPair::derive(42, 0);
        let sig = kp.sign(1, b"hello");
        assert!(!reg.verify(0, 2, b"hello", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let reg = PublicKeyRegistry::derive(42, 4);
        let kp = KeyPair::derive(42, 0);
        let sig = kp.sign(1, b"hello");
        assert!(!reg.verify(0, 1, b"hellp", &sig));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let reg = PublicKeyRegistry::derive(42, 4);
        let kp = KeyPair::derive(42, 0);
        let sig = kp.sign(1, b"hello");
        assert!(!reg.verify(99, 1, b"hello", &sig));
    }

    #[test]
    fn different_deployments_differ() {
        let a = KeyPair::derive(1, 0).sign(0, b"m");
        let b = KeyPair::derive(2, 0).sign(0, b"m");
        assert_ne!(a, b);
    }

    #[test]
    fn signed_payload_is_length_prefixed() {
        // ("ab","c") must differ from ("a","bc") — length framing matters.
        let x = signed_payload(&[b"ab", b"c"]);
        let y = signed_payload(&[b"a", b"bc"]);
        assert_ne!(x, y);
    }

    #[test]
    fn registry_len() {
        let reg = PublicKeyRegistry::derive(7, 31);
        assert_eq!(reg.len(), 31);
        assert!(!reg.is_empty());
    }
}
