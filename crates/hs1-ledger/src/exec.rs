//! Deterministic transaction execution over the speculative store.
//!
//! The engine owns the replica's [`SpeculativeStore`] and exposes the
//! three operations the consensus engines need (paper Fig. 2/4/7 backup
//! roles):
//!
//! * [`ExecutionEngine::execute_speculative`] — run a block into a fresh
//!   local-ledger overlay and return the result digest sent to clients.
//! * [`ExecutionEngine::execute_committed`] — run (or promote) a block
//!   into the global-ledger on commit.
//! * [`ExecutionEngine::rollback_conflicting`] — Definition 4.7: discard
//!   speculated blocks that conflict with a new branch.
//!
//! Execution is integer-only (paper §4.1 "Note on execution model") and
//! runs through the conflict-partitioned batch executor in [`crate::par`],
//! whose wave schedule guarantees that any two correct replicas — at any
//! worker count — produce bit-identical digests and state roots.

use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

use crate::kv::KvStore;
use crate::par;
use crate::spec::SpeculativeStore;
use hs1_crypto::{Digest, Sha256};
use hs1_obs::Obs;
use hs1_types::{BlockId, Transaction};

/// Default executor worker count: `HS1_EXEC_WORKERS` when set (the CI
/// thread-count matrix pins 1 and N), else the machine's available
/// parallelism capped at 8. Any value yields bit-identical results; this
/// only tunes wall-clock speed.
pub fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Some(w) = std::env::var("HS1_EXEC_WORKERS").ok().and_then(|s| s.parse().ok()) {
            return usize::max(w, 1);
        }
        std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
    })
}

/// Which logical database the deployment serves, and how wide the
/// executor's worker pool is.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// YCSB logical record count (the paper uses 600k).
    pub ycsb_records: u64,
    /// TPC-C warehouse count (4 ≈ the paper's 260k records).
    pub tpcc_warehouses: u16,
    /// Executor worker threads (see [`default_workers`]); results are
    /// bit-identical at every value, including 1.
    pub workers: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { ycsb_records: 600_000, tpcc_warehouses: 4, workers: default_workers() }
    }
}

/// Per-replica execution engine: speculative store + digest bookkeeping.
#[derive(Clone, Debug)]
pub struct ExecutionEngine {
    store: SpeculativeStore,
    /// Result digest of every *live* executed block: speculated (not yet
    /// rolled back) or committed. Rollback prunes the rolled-back blocks'
    /// entries — a discarded block's digest must not be served again until
    /// the block is actually re-executed.
    digests: HashMap<BlockId, Digest>,
    /// Worker threads for the conflict-partitioned batch executor.
    workers: usize,
    /// Count of transactions executed (including re-executions after
    /// rollback; metric).
    executed_txs: u64,
    /// Observability sink (no-op by default). Wave counts and critical-
    /// path slots are deterministic counters; batch execute time is
    /// wall-measured and therefore confined to a histogram.
    obs: Obs,
}

impl ExecutionEngine {
    pub fn new(config: ExecConfig) -> ExecutionEngine {
        // YCSB records occupy low keys; TPC-C rows live under table tags
        // (tpcc::pack), so one store serves both workloads.
        let base = KvStore::with_records(config.ycsb_records);
        ExecutionEngine {
            store: SpeculativeStore::new(base),
            digests: HashMap::new(),
            workers: config.workers.max(1),
            executed_txs: 0,
            obs: Obs::noop(),
        }
    }

    /// Install an observability sink (pure observer; see `hs1-obs`).
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Speculatively execute `txs` as block `block` (into a fresh
    /// local-ledger overlay). Returns the result digest for client
    /// responses.
    pub fn execute_speculative(&mut self, block: BlockId, txs: &[Transaction]) -> Digest {
        self.store.begin_speculation(block);
        let digest = self.run_block(block, txs, true);
        self.digests.insert(block, digest);
        digest
    }

    /// Execute `txs` as block `block` directly into the global-ledger
    /// (commit path). If the block is currently the oldest speculated
    /// overlay its effects are *promoted* instead of re-executed.
    pub fn execute_committed(&mut self, block: BlockId, txs: &[Transaction]) -> Digest {
        if self.store.speculated().first() == Some(&block) {
            self.store.promote_oldest(block);
            return self.digests[&block];
        }
        // Any remaining speculation conflicts with this commit (a
        // speculated block at the same height on another branch): its
        // digests die with its overlays.
        for b in self.store.speculated() {
            self.digests.remove(&b);
        }
        self.store.rollback_all();
        let digest = self.run_block(block, txs, false);
        self.digests.insert(block, digest);
        digest
    }

    /// Roll back every speculated block that is not in `keep` (the new
    /// branch's already-speculated prefix). Returns how many blocks were
    /// rolled back (Definition 4.7). Rolled-back blocks' digests are
    /// pruned: a digest must never outlive the effects it attests to.
    ///
    /// Linear in the speculation depth (`keep` is hashed once), so a deep
    /// pipeline pays O(depth), not O(depth²), on the hot rollback path.
    pub fn rollback_conflicting(&mut self, keep: &[BlockId]) -> usize {
        let speculated = self.store.speculated();
        let keep: HashSet<BlockId> = keep.iter().copied().collect();
        // The deepest speculated prefix entirely within `keep` survives.
        let mut retain = 0;
        for b in &speculated {
            if keep.contains(b) {
                retain += 1;
            } else {
                break;
            }
        }
        if retain == speculated.len() {
            return 0;
        }
        for b in &speculated[retain..] {
            self.digests.remove(b);
        }
        if retain == 0 {
            self.store.rollback_all()
        } else {
            self.store.rollback_above(speculated[retain - 1])
        }
    }

    /// Digest of a previously executed block, if any.
    pub fn digest_of(&self, block: BlockId) -> Option<Digest> {
        self.digests.get(&block).copied()
    }

    /// Replace the committed base store with a recovered checkpoint image
    /// (§4.2 recovery). The engine must not be mid-speculation: recovery
    /// installs the checkpoint first and re-derives overlays afterwards.
    /// All digest bookkeeping is dropped — it described the pre-restore
    /// history, and recovery re-executes whatever is still live.
    pub fn restore_committed(&mut self, store: KvStore) {
        assert_eq!(self.store.depth(), 0, "restore_committed under active speculation");
        self.digests.clear();
        self.store = SpeculativeStore::new(store);
    }

    pub fn store(&self) -> &SpeculativeStore {
        &self.store
    }

    pub fn rollback_count(&self) -> u64 {
        self.store.rollback_count()
    }

    pub fn executed_txs(&self) -> u64 {
        self.executed_txs
    }

    /// Is `block` speculated but not yet committed?
    pub fn is_speculating(&self, block: BlockId) -> bool {
        self.store.is_speculating(block)
    }

    // -- internals ---------------------------------------------------------

    /// Execute one block through the conflict-partitioned batch executor
    /// ([`crate::par`]) and fold the result digest. The digest is a pure
    /// function of (block id, batch, pre-state): per-transaction result
    /// values are hashed in batch order regardless of how many workers
    /// computed them.
    fn run_block(&mut self, block: BlockId, txs: &[Transaction], speculative: bool) -> Digest {
        let started = self.obs.enabled().then(std::time::Instant::now);
        let outcome = par::execute_batch(&self.store, txs, self.workers);
        if let Some(t0) = started {
            // Wall time goes to the histogram only — never the trace.
            self.obs.observe_nanos("exec_batch_ns", t0.elapsed().as_nanos() as u64);
            self.obs.counter("exec_batches", 0, 1);
            self.obs.counter("exec_waves", 0, outcome.waves as u64);
            self.obs.counter("exec_critical_slots", 0, outcome.critical_slots);
            self.obs.counter("exec_txs", 0, txs.len() as u64);
        }
        if speculative {
            self.store.apply_speculative(outcome.writes);
        } else {
            self.store.apply_committed(outcome.writes);
        }
        let mut h = Sha256::new();
        h.update(b"hs1-exec");
        h.update(&block.0 .0);
        for (tx, r) in txs.iter().zip(&outcome.results) {
            h.update_u64(tx.id.client.0 as u64);
            h.update_u64(tx.id.seq);
            h.update_u64(*r);
        }
        self.executed_txs += txs.len() as u64;
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc;
    use hs1_types::tx::TxId;
    use hs1_types::{ClientId, TxOp};

    fn txs(n: u64) -> Vec<Transaction> {
        (0..n).map(|i| Transaction::kv_write(1, i, i * 7, i)).collect()
    }

    #[test]
    fn speculative_and_committed_digests_agree() {
        let batch = txs(20);
        let mut a = ExecutionEngine::new(ExecConfig::default());
        let mut b = ExecutionEngine::new(ExecConfig::default());
        let da = a.execute_speculative(BlockId::test(1), &batch);
        let db = b.execute_committed(BlockId::test(1), &batch);
        assert_eq!(da, db, "speculation must not change results");
    }

    #[test]
    fn promote_skips_reexecution() {
        let batch = txs(5);
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let d1 = e.execute_speculative(BlockId::test(1), &batch);
        let executed_before = e.executed_txs();
        let d2 = e.execute_committed(BlockId::test(1), &batch);
        assert_eq!(d1, d2);
        assert_eq!(e.executed_txs(), executed_before, "promotion re-executes nothing");
        assert_eq!(e.store().depth(), 0);
    }

    #[test]
    fn conflicting_commit_rolls_back_speculation() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        e.execute_speculative(BlockId::test(1), &txs(3));
        // A different block commits at this height: speculation discarded.
        let batch2: Vec<_> = (0..3).map(|i| Transaction::kv_write(2, i, i, i + 9)).collect();
        e.execute_committed(BlockId::test(2), &batch2);
        assert_eq!(e.rollback_count(), 1);
        assert!(!e.is_speculating(BlockId::test(1)));
    }

    #[test]
    fn rollback_conflicting_keeps_matching_prefix() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        e.execute_speculative(BlockId::test(1), &txs(1));
        assert_eq!(e.rollback_conflicting(&[BlockId::test(1)]), 0, "no conflict");
        assert_eq!(e.rollback_conflicting(&[BlockId::test(9)]), 1, "conflict rolls back");
        assert_eq!(e.store().depth(), 0);
    }

    #[test]
    fn rollback_then_reexecute_same_state() {
        let batch_a = txs(10);
        let batch_b: Vec<_> = (0..10).map(|i| Transaction::kv_write(3, i, i * 7, i + 1)).collect();

        // Replica X speculates A, rolls back, then commits B.
        let mut x = ExecutionEngine::new(ExecConfig::default());
        x.execute_speculative(BlockId::test(10), &batch_a);
        x.rollback_conflicting(&[]);
        let dx = x.execute_committed(BlockId::test(11), &batch_b);

        // Replica Y never saw A.
        let mut y = ExecutionEngine::new(ExecConfig::default());
        let dy = y.execute_committed(BlockId::test(11), &batch_b);

        assert_eq!(dx, dy, "rollback erased every speculative effect");
        for key in 0..100 {
            assert_eq!(x.store().get(key), y.store().get(key));
        }
    }

    #[test]
    fn tpcc_neworder_allocates_sequential_oids() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let no = |seq| Transaction {
            id: TxId::new(ClientId(1), seq),
            op: TxOp::TpccNewOrder { warehouse: 1, district: 2, customer: 7, lines: 5, seed: seq },
        };
        e.execute_committed(BlockId::test(1), &[no(0), no(1)]);
        let oid_key = tpcc::district_next_oid(1, 2);
        assert_eq!(e.store().get(oid_key), Some(2), "two orders allocated");
        // Order lines materialized for both orders.
        assert!(e.store().get(tpcc::order_line(1, 2, 0, 0)).is_some());
        assert!(e.store().get(tpcc::order_line(1, 2, 1, 0)).is_some());
    }

    #[test]
    fn tpcc_payment_moves_money() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let pay = Transaction {
            id: TxId::new(ClientId(1), 0),
            op: TxOp::TpccPayment { warehouse: 1, district: 1, customer: 42, amount_cents: 500 },
        };
        e.execute_committed(BlockId::test(1), &[pay]);
        assert_eq!(e.store().get(tpcc::warehouse_ytd(1)), Some(500));
        assert_eq!(e.store().get(tpcc::district_ytd(1, 1)), Some(500));
        assert_eq!(e.store().get(tpcc::customer_payments(1, 1, 42)), Some(1));
        assert_eq!(e.store().get(tpcc::customer_balance(1, 1, 42)), Some(0u64.wrapping_sub(500)));
    }

    #[test]
    fn digest_depends_on_block_and_order() {
        let batch = txs(4);
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let d1 = e.execute_speculative(BlockId::test(1), &batch);
        e.rollback_conflicting(&[]);
        let d2 = e.execute_speculative(BlockId::test(2), &batch);
        assert_ne!(d1, d2, "digest binds the block id");

        let mut rev = batch.clone();
        rev.reverse();
        let mut e2 = ExecutionEngine::new(ExecConfig::default());
        let d3 = e2.execute_committed(BlockId::test(1), &rev);
        assert_ne!(d1, d3, "digest binds execution order");
    }

    #[test]
    fn digest_of_lookup() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        assert_eq!(e.digest_of(BlockId::test(1)), None);
        let d = e.execute_committed(BlockId::test(1), &txs(2));
        assert_eq!(e.digest_of(BlockId::test(1)), Some(d));
    }

    /// Regression (ISSUE 6): a rolled-back block's digest must be gone
    /// until the block is re-executed — `digest_of` serving a digest for
    /// discarded effects let a replica answer for state it no longer had.
    #[test]
    fn rollback_prunes_digests_until_reexecution() {
        let batch = txs(6);
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let d1 = e.execute_speculative(BlockId::test(1), &batch);
        assert_eq!(e.digest_of(BlockId::test(1)), Some(d1));
        assert_eq!(e.rollback_conflicting(&[]), 1);
        assert_eq!(
            e.digest_of(BlockId::test(1)),
            None,
            "digest must not survive the rollback of its effects"
        );
        // Re-execution restores both the digest and the lookup.
        let d2 = e.execute_speculative(BlockId::test(1), &batch);
        assert_eq!(d1, d2);
        assert_eq!(e.digest_of(BlockId::test(1)), Some(d2));
    }

    /// Same pruning on the conflicting-commit path: the implicit
    /// `rollback_all` inside `execute_committed` discards digests of the
    /// speculation it destroys (but keeps the committed block's own).
    #[test]
    fn conflicting_commit_prunes_speculative_digests() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        e.execute_speculative(BlockId::test(1), &txs(3));
        let batch2: Vec<_> = (0..3).map(|i| Transaction::kv_write(2, i, i, i + 9)).collect();
        let d2 = e.execute_committed(BlockId::test(2), &batch2);
        assert_eq!(e.digest_of(BlockId::test(1)), None, "rolled-back digest pruned");
        assert_eq!(e.digest_of(BlockId::test(2)), Some(d2), "committed digest kept");
    }

    /// And on restore: a recovered checkpoint invalidates every digest of
    /// the pre-restore history.
    #[test]
    fn restore_committed_drops_stale_digests() {
        let mut e = ExecutionEngine::new(ExecConfig::default());
        e.execute_committed(BlockId::test(1), &txs(3));
        e.restore_committed(KvStore::with_records(10));
        assert_eq!(e.digest_of(BlockId::test(1)), None);
    }

    /// Depth-64 pipeline: a partial-prefix rollback keeps exactly the
    /// matching prefix (and its digests) and prunes the rest. Exercises
    /// the linear prefix scan at depth far beyond protocol use.
    #[test]
    fn deep_pipeline_partial_rollback() {
        const DEPTH: u64 = 64;
        const KEEP: usize = 40;
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let mut digests = Vec::new();
        for i in 0..DEPTH {
            let batch = vec![Transaction::kv_write(1, i, i, i * 3)];
            digests.push(e.execute_speculative(BlockId::test(i + 1), &batch));
        }
        assert_eq!(e.store().depth(), DEPTH as usize);
        let keep: Vec<BlockId> = (0..KEEP as u64).map(|i| BlockId::test(i + 1)).collect();
        assert_eq!(e.rollback_conflicting(&keep), DEPTH as usize - KEEP);
        assert_eq!(e.store().depth(), KEEP);
        for (i, digest) in digests.iter().enumerate() {
            let id = BlockId::test(i as u64 + 1);
            if i < KEEP {
                assert_eq!(e.digest_of(id), Some(*digest), "kept prefix digest survives");
                assert!(e.is_speculating(id));
            } else {
                assert_eq!(e.digest_of(id), None, "rolled-back digest pruned");
                assert!(!e.is_speculating(id));
            }
        }
        // A keep-list that skips the bottom of the stack keeps nothing.
        let mut e2 = ExecutionEngine::new(ExecConfig::default());
        for i in 0..4u64 {
            e2.execute_speculative(BlockId::test(i + 1), &[Transaction::kv_write(1, i, i, i)]);
        }
        assert_eq!(e2.rollback_conflicting(&[BlockId::test(2)]), 4, "non-prefix keep rolls all");
        assert_eq!(e2.store().depth(), 0);
    }

    #[test]
    fn restore_committed_reproduces_state_root() {
        let batch = txs(10);
        let mut live = ExecutionEngine::new(ExecConfig::default());
        live.execute_committed(BlockId::test(1), &batch);
        let snapshot = KvStore::from_parts(
            live.store().committed_store().record_count(),
            live.store().committed_store().materialized(),
        );

        let mut recovered = ExecutionEngine::new(ExecConfig::default());
        recovered.restore_committed(snapshot);
        assert_eq!(
            recovered.store().committed_store().state_root(),
            live.store().committed_store().state_root()
        );
        // Execution continues identically on top of the restored base.
        let batch2: Vec<_> = (0..5).map(|i| Transaction::kv_write(2, i, i + 3, i)).collect();
        let d1 = live.execute_committed(BlockId::test(2), &batch2);
        let d2 = recovered.execute_committed(BlockId::test(2), &batch2);
        assert_eq!(d1, d2);
    }

    /// A batch exercising every write path: YCSB writes, reads, TPC-C
    /// NewOrder and Payment.
    fn mixed_batch() -> Vec<Transaction> {
        let mut out = txs(5);
        out.push(Transaction { id: TxId::new(ClientId(9), 100), op: TxOp::KvRead { key: 7 } });
        out.push(Transaction {
            id: TxId::new(ClientId(9), 101),
            op: TxOp::TpccNewOrder { warehouse: 1, district: 3, customer: 11, lines: 4, seed: 77 },
        });
        out.push(Transaction {
            id: TxId::new(ClientId(9), 102),
            op: TxOp::TpccPayment { warehouse: 1, district: 3, customer: 11, amount_cents: 250 },
        });
        out
    }

    #[test]
    fn execute_rollback_reexecute_yields_identical_state_root() {
        let batch = mixed_batch();
        let mut e = ExecutionEngine::new(ExecConfig::default());
        let pristine_root = e.store().committed_store().state_root();

        // Execute speculatively, then roll the block back.
        let d1 = e.execute_speculative(BlockId::test(1), &batch);
        assert_eq!(
            e.store().committed_store().state_root(),
            pristine_root,
            "speculation must not touch committed state"
        );
        assert_eq!(e.rollback_conflicting(&[]), 1);
        assert_eq!(
            e.store().committed_store().state_root(),
            pristine_root,
            "rollback restores the pre-speculation state root"
        );

        // Re-execute the same block: identical result digest, and after
        // promotion the committed root matches a replica that committed
        // the block directly without ever speculating.
        let d2 = e.execute_speculative(BlockId::test(1), &batch);
        assert_eq!(d1, d2, "re-execution after rollback reproduces the digest");
        let d3 = e.execute_committed(BlockId::test(1), &batch);
        assert_eq!(d1, d3);

        let mut direct = ExecutionEngine::new(ExecConfig::default());
        direct.execute_committed(BlockId::test(1), &batch);
        assert_eq!(
            e.store().committed_store().state_root(),
            direct.store().committed_store().state_root(),
            "rollback + re-execute converges to the directly-committed state root"
        );
    }
}
