//! Conflict-partitioned parallel block execution.
//!
//! The hot path of HotStuff-1's one-phase speculation is block execution:
//! every block is executed speculatively, possibly rolled back, and
//! re-executed on the commit branch (§4.1/§4.2). This module executes a
//! batch on a std-only worker pool while preserving the contract the
//! convergence tests pin: **bit-identical result digests and state roots
//! at any worker count, including 1**.
//!
//! # How determinism survives parallelism
//!
//! 1. **Static key sets.** Every [`TxOp`] declares the keys it reads and
//!    writes *before* execution ([`access_set`]). Where a key depends on
//!    runtime state (a TPC-C order line's key embeds the order id read
//!    from the district counter), the key is *coarsened* to a lock that
//!    covers every key the transaction could touch ([`lock_key`] maps any
//!    order-line key to a whole-district lock), so the declared set is a
//!    conservative superset of the dynamic one.
//! 2. **Wave scheduling.** [`schedule`] partitions a batch, in block
//!    order, into *waves*: a transaction is placed in the first wave
//!    after the last wave that wrote a key it reads (RAW), or read or
//!    wrote a key it writes (WAR/WAW). Within a wave, write sets are
//!    mutually disjoint and no transaction reads another's writes, so any
//!    execution order — and therefore any thread interleaving — produces
//!    the same values as sequential block order.
//! 3. **Buffered writes.** Workers never touch the store. Each chunk of a
//!    wave executes against an immutable view (the [`SpeculativeStore`]
//!    plus the guarded buffer of writes from *completed* waves) and
//!    returns its writes; the coordinator merges them between waves.
//!    Merge order within a wave is irrelevant because the write sets are
//!    disjoint. The per-transaction result values are placed by batch
//!    index, and the block digest is folded in batch order afterwards —
//!    so the digest is a pure function of the batch, not of scheduling.
//!
//! Worker count 1 (or a batch below [`PAR_MIN_BATCH`]) takes a purely
//! sequential path with no scheduling overhead and, by the argument
//! above, the identical result.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};

use crate::kv::{Key, Value};
use crate::spec::SpeculativeStore;
use crate::tpcc;
use hs1_types::{Transaction, TxOp};

/// Batches smaller than this always execute sequentially: thread dispatch
/// costs more than it saves on small blocks (the simulator's default
/// batch of 100 stays on the sequential path).
pub const PAR_MIN_BATCH: usize = 256;

/// Waves narrower than this are executed inline by the coordinator:
/// channel round-trips per sub-chunk dominate below it.
const PAR_MIN_WAVE: usize = 64;

/// Map a storage key to its scheduling lock. Identity for every table
/// whose keys are statically derivable from the transaction; TPC-C
/// order-line keys embed the dynamically allocated order id, so the whole
/// per-district order-line range shares one lock (two NewOrders in the
/// same district already conflict on the district's order-id counter, so
/// this coarsening costs no parallelism).
pub fn lock_key(key: Key) -> Key {
    if key >> 56 == tpcc::Table::OrderLine as u64 {
        // Clear the (entity, line) coordinates, keeping (table, warehouse,
        // district): one lock per district's order-line range.
        key & !0xFFFF_FFFF
    } else {
        key
    }
}

/// Append the lock-coarsened read and write sets of `tx` to `reads` /
/// `writes`. A read-modify-write key appears only in `writes` (the write
/// constraint subsumes the read constraint for the same transaction).
pub fn access_set(tx: &Transaction, reads: &mut Vec<Key>, writes: &mut Vec<Key>) {
    match tx.op {
        TxOp::KvWrite { key, .. } => writes.push(lock_key(key)),
        TxOp::KvRead { key } => reads.push(lock_key(key)),
        TxOp::TpccNewOrder { warehouse, district, lines, seed, .. } => {
            // RMW on the district's order-id counter.
            writes.push(tpcc::district_next_oid(warehouse, district));
            // RMW on each line's stock row (item ids are a static function
            // of the seed).
            for line in 0..lines {
                writes.push(tpcc::stock_qty(warehouse, tpcc::item_for(seed, line)));
            }
            // Order-line inserts: keys depend on the allocated order id,
            // covered by the district-range lock.
            writes.push(lock_key(tpcc::order_line(warehouse, district, 0, 0)));
        }
        TxOp::TpccPayment { warehouse, district, customer, .. } => {
            writes.push(tpcc::warehouse_ytd(warehouse));
            writes.push(tpcc::district_ytd(warehouse, district));
            writes.push(tpcc::customer_balance(warehouse, district, customer));
            writes.push(tpcc::customer_payments(warehouse, district, customer));
        }
        TxOp::Noop => {}
    }
}

/// The conflict partition of one batch: `waves[w]` holds the batch
/// indices executable concurrently once waves `0..w` have completed.
#[derive(Clone, Debug)]
pub struct WavePlan {
    pub waves: Vec<Vec<usize>>,
}

impl WavePlan {
    /// Total transactions scheduled.
    pub fn len(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// The scheduler's ideal speedup at `workers` threads: sequential
    /// transaction-slots divided by the critical-path slots when each
    /// wave is split into `workers` chunks. An upper bound on measured
    /// speedup (it ignores dispatch overhead), and a deterministic
    /// figure-of-merit for the cost model.
    pub fn ideal_speedup(&self, workers: usize) -> f64 {
        let total = self.len();
        if total == 0 {
            return 1.0;
        }
        let critical = self.critical_slots(workers);
        total as f64 / critical as f64
    }

    /// Critical-path length in transaction slots at `workers` threads:
    /// `sum over waves of ceil(|wave| / workers)`.
    pub fn critical_slots(&self, workers: usize) -> u64 {
        let w = workers.max(1) as u64;
        self.waves.iter().map(|wave| (wave.len() as u64).div_ceil(w)).sum()
    }
}

/// Partition `txs` (in block order) into conflict-free waves.
///
/// Placement rule, per transaction: the first wave strictly after the
/// last wave that *wrote* any key it reads, and strictly after the last
/// wave that *read or wrote* any key it writes. Transactions with no
/// conflicts land in wave 0.
pub fn schedule(txs: &[Transaction]) -> WavePlan {
    let mut last_read: HashMap<Key, usize> = HashMap::new();
    let mut last_write: HashMap<Key, usize> = HashMap::new();
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for (i, tx) in txs.iter().enumerate() {
        reads.clear();
        writes.clear();
        access_set(tx, &mut reads, &mut writes);
        let mut wave = 0usize;
        for k in &reads {
            if let Some(&lw) = last_write.get(k) {
                wave = wave.max(lw + 1);
            }
        }
        for k in &writes {
            if let Some(&lw) = last_write.get(k) {
                wave = wave.max(lw + 1);
            }
            if let Some(&lr) = last_read.get(k) {
                wave = wave.max(lr + 1);
            }
        }
        if wave == waves.len() {
            waves.push(Vec::new());
        }
        waves[wave].push(i);
        for k in &reads {
            let e = last_read.entry(*k).or_insert(wave);
            *e = (*e).max(wave);
        }
        for k in &writes {
            last_write.insert(*k, wave);
        }
    }
    WavePlan { waves }
}

/// Outcome of executing one batch: per-transaction result values (batch
/// order) and the block's write set, plus scheduling metrics.
pub struct BatchOutcome {
    pub results: Vec<u64>,
    pub writes: HashMap<Key, Value>,
    pub waves: usize,
    /// Critical-path length in transaction slots at the worker count the
    /// batch ran with ([`WavePlan::critical_slots`]; equals the batch
    /// length on the sequential path).
    pub critical_slots: u64,
}

/// Execute `txs` against `store` without mutating it, on up to `workers`
/// threads. The caller applies [`BatchOutcome::writes`] to the store
/// (speculative overlay or committed base) afterwards.
pub fn execute_batch(
    store: &SpeculativeStore,
    txs: &[Transaction],
    workers: usize,
) -> BatchOutcome {
    if workers <= 1 || txs.len() < PAR_MIN_BATCH {
        return execute_sequential(store, txs);
    }
    let plan = schedule(txs);
    execute_waves(store, txs, &plan, workers)
}

/// The sequential reference path: one pass in block order, writes
/// accumulated in a single buffer that doubles as the read-your-writes
/// view. No scheduling, no threads.
fn execute_sequential(store: &SpeculativeStore, txs: &[Transaction]) -> BatchOutcome {
    let mut buf: HashMap<Key, Value> = HashMap::new();
    let empty = HashMap::new();
    let mut results = Vec::with_capacity(txs.len());
    for tx in txs {
        // `buf` carries every earlier transaction's writes, so reads see
        // exactly the sequential prefix state.
        results.push(apply_tx(store, &empty, &mut buf, tx));
    }
    let waves = if txs.is_empty() { 0 } else { 1 };
    BatchOutcome { results, writes: buf, waves, critical_slots: txs.len() as u64 }
}

/// A chunk of one wave, dispatched to the pool.
struct Job {
    indices: std::ops::Range<usize>,
    wave: usize,
}

/// A finished chunk: results by batch index plus the chunk's writes.
struct ChunkOut {
    results: Vec<(usize, u64)>,
    writes: HashMap<Key, Value>,
}

fn execute_waves(
    store: &SpeculativeStore,
    txs: &[Transaction],
    plan: &WavePlan,
    workers: usize,
) -> BatchOutcome {
    let mut results = vec![0u64; txs.len()];
    // The guarded write buffer: writes of *completed* waves. Workers hold
    // the read side for the duration of one chunk; the coordinator takes
    // the write side only to merge finished chunks.
    let completed: RwLock<HashMap<Key, Value>> = RwLock::new(HashMap::new());
    std::thread::scope(|s| {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (out_tx, out_rx) = mpsc::channel::<ChunkOut>();
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let out_tx = out_tx.clone();
            let completed = &completed;
            s.spawn(move || {
                loop {
                    let job = match job_rx.lock().expect("job queue lock").recv() {
                        Ok(j) => j,
                        Err(_) => return, // coordinator hung up: batch done
                    };
                    let prior = completed.read().expect("write-buffer read lock");
                    let out = run_chunk(store, &prior, txs, &plan.waves[job.wave], job.indices);
                    drop(prior);
                    if out_tx.send(out).is_err() {
                        return;
                    }
                }
            });
        }
        for (w, wave) in plan.waves.iter().enumerate() {
            if wave.len() < PAR_MIN_WAVE {
                // Narrow wave: dispatch overhead exceeds the win, run it
                // on the coordinator against the same view the workers
                // would see.
                let prior = completed.read().expect("write-buffer read lock");
                let out = run_chunk(store, &prior, txs, wave, 0..wave.len());
                drop(prior);
                merge(&mut results, &completed, out);
                continue;
            }
            // One contiguous chunk per worker, balanced sizes.
            let chunk = wave.len().div_ceil(workers);
            let mut sent = 0usize;
            let mut start = 0usize;
            while start < wave.len() {
                let end = (start + chunk).min(wave.len());
                job_tx.send(Job { indices: start..end, wave: w }).expect("pool alive");
                sent += 1;
                start = end;
            }
            // Wave barrier: every chunk must land before the next wave may
            // observe the buffer. (Merging as chunks arrive is safe:
            // same-wave chunks can never read each other's writes.)
            for _ in 0..sent {
                let out = out_rx.recv().expect("worker panicked mid-wave");
                merge(&mut results, &completed, out);
            }
        }
        drop(job_tx);
    });
    let writes = completed.into_inner().expect("write-buffer poisoned");
    let critical_slots = plan.critical_slots(workers);
    BatchOutcome { results, writes, waves: plan.waves.len(), critical_slots }
}

fn merge(results: &mut [u64], completed: &RwLock<HashMap<Key, Value>>, out: ChunkOut) {
    for (i, r) in out.results {
        results[i] = r;
    }
    completed.write().expect("write-buffer write lock").extend(out.writes);
}

/// Execute `wave[indices]` against the immutable pair (store, prior).
/// The chunk's own writes accumulate in one local map: transactions in
/// the same wave cannot read each other's writes (scheduling invariant),
/// so sharing the map across the chunk only serves within-transaction
/// read-your-writes.
fn run_chunk(
    store: &SpeculativeStore,
    prior: &HashMap<Key, Value>,
    txs: &[Transaction],
    wave: &[usize],
    indices: std::ops::Range<usize>,
) -> ChunkOut {
    let mut writes = HashMap::new();
    let mut results = Vec::with_capacity(indices.len());
    for &i in &wave[indices] {
        results.push((i, apply_tx(store, prior, &mut writes, &txs[i])));
    }
    ChunkOut { results, writes }
}

/// Read `key` as the sequential execution would: own/chunk writes, then
/// completed-wave writes, then the store (overlays above committed base).
/// Missing keys read as 0, matching the engine's historical semantics.
fn read(
    store: &SpeculativeStore,
    prior: &HashMap<Key, Value>,
    local: &HashMap<Key, Value>,
    key: Key,
) -> u64 {
    if let Some(v) = local.get(&key) {
        return *v;
    }
    if let Some(v) = prior.get(&key) {
        return *v;
    }
    store.get(key).unwrap_or(0)
}

/// Apply one transaction, writing into `local` and returning the result
/// value that feeds the block digest. This is the single definition of
/// transaction semantics — the sequential and parallel paths both run it.
fn apply_tx(
    store: &SpeculativeStore,
    prior: &HashMap<Key, Value>,
    local: &mut HashMap<Key, Value>,
    tx: &Transaction,
) -> u64 {
    let rd = |local: &HashMap<Key, Value>, k: Key| read(store, prior, local, k);
    match tx.op {
        TxOp::KvWrite { key, seed } => {
            let new = crate::kv::initial_value(seed ^ tx.id.seq);
            local.insert(key, new);
            new
        }
        TxOp::KvRead { key } => rd(local, key),
        TxOp::TpccNewOrder { warehouse, district, customer, lines, seed } => {
            // Allocate the next order id for the district.
            let oid_key = tpcc::district_next_oid(warehouse, district);
            let oid = rd(local, oid_key) as u32;
            local.insert(oid_key, oid as u64 + 1);
            let mut total = 0u64;
            for line in 0..lines {
                let item = tpcc::item_for(seed, line);
                let stock_key = tpcc::stock_qty(warehouse, item);
                let qty = rd(local, stock_key);
                // Restock when depleted, matching the TPC-C rule
                // (s_quantity += 91 when below threshold).
                let new_qty = if qty < 10 { qty + 91 } else { qty - 1 };
                local.insert(stock_key, new_qty);
                let ol_key = tpcc::order_line(warehouse, district, oid, line);
                let amount = (item as u64 % 9_999) + 1;
                local.insert(ol_key, amount);
                total += amount;
            }
            // Record the total against the customer's order history via
            // the digest return value.
            total ^ ((customer as u64) << 32) ^ oid as u64
        }
        TxOp::TpccPayment { warehouse, district, customer, amount_cents } => {
            let w_key = tpcc::warehouse_ytd(warehouse);
            let w_ytd = rd(local, w_key) + amount_cents as u64;
            local.insert(w_key, w_ytd);
            let d_key = tpcc::district_ytd(warehouse, district);
            let d_ytd = rd(local, d_key) + amount_cents as u64;
            local.insert(d_key, d_ytd);
            let bal_key = tpcc::customer_balance(warehouse, district, customer);
            let bal = rd(local, bal_key).wrapping_sub(amount_cents as u64);
            local.insert(bal_key, bal);
            let cnt_key = tpcc::customer_payments(warehouse, district, customer);
            let cnt = rd(local, cnt_key) + 1;
            local.insert(cnt_key, cnt);
            bal
        }
        TxOp::Noop => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvStore;
    use hs1_types::tx::TxId;
    use hs1_types::ClientId;

    fn kv_write(seq: u64, key: u64) -> Transaction {
        Transaction::kv_write(1, seq, key, seq)
    }

    fn kv_read(seq: u64, key: u64) -> Transaction {
        Transaction { id: TxId::new(ClientId(1), seq), op: TxOp::KvRead { key } }
    }

    #[test]
    fn disjoint_writes_share_a_wave() {
        let txs: Vec<_> = (0..8).map(|i| kv_write(i, i * 10)).collect();
        let plan = schedule(&txs);
        assert_eq!(plan.waves.len(), 1);
        assert_eq!(plan.waves[0].len(), 8);
        assert!((plan.ideal_speedup(4) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn write_write_conflicts_serialize_in_block_order() {
        let txs = vec![kv_write(0, 5), kv_write(1, 5), kv_write(2, 5)];
        let plan = schedule(&txs);
        assert_eq!(plan.waves, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn read_after_write_lands_in_a_later_wave() {
        let txs = vec![kv_write(0, 5), kv_read(1, 5), kv_read(2, 5)];
        let plan = schedule(&txs);
        // Both reads may share wave 1: reads don't conflict.
        assert_eq!(plan.waves, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn write_after_read_lands_in_a_later_wave() {
        let txs = vec![kv_read(0, 5), kv_read(1, 5), kv_write(2, 5)];
        let plan = schedule(&txs);
        assert_eq!(plan.waves, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn neworders_same_district_serialize() {
        let no = |seq, district| Transaction {
            id: TxId::new(ClientId(1), seq),
            op: TxOp::TpccNewOrder { warehouse: 1, district, customer: 1, lines: 1, seed: seq },
        };
        // Same district: conflict on the order-id counter. Different
        // districts with distinct items: parallel.
        let plan = schedule(&[no(0, 1), no(1, 1)]);
        assert_eq!(plan.waves.len(), 2);
        let plan = schedule(&[no(0, 1), no(1, 2)]);
        // Could still collide on a stock item; with these seeds they don't.
        assert_eq!(plan.waves.len(), 1);
    }

    #[test]
    fn orderline_keys_coarsen_to_district_locks() {
        let a = tpcc::order_line(3, 4, 100, 2);
        let b = tpcc::order_line(3, 4, 999, 7);
        let c = tpcc::order_line(3, 5, 100, 2);
        assert_eq!(lock_key(a), lock_key(b), "same district shares a lock");
        assert_ne!(lock_key(a), lock_key(c), "districts are independent");
        assert_eq!(lock_key(7), 7, "YCSB keys are their own lock");
    }

    /// A direct KvWrite into the order-line key range must conflict with a
    /// NewOrder in that district — the coarsening applies to both sides.
    #[test]
    fn raw_write_into_orderline_range_conflicts_with_neworder() {
        let raw = kv_write(0, tpcc::order_line(1, 2, 50, 0));
        let no = Transaction {
            id: TxId::new(ClientId(1), 1),
            op: TxOp::TpccNewOrder { warehouse: 1, district: 2, customer: 1, lines: 1, seed: 9 },
        };
        let plan = schedule(&[raw, no]);
        assert_eq!(plan.waves.len(), 2, "coarsened locks collide");
    }

    #[test]
    fn parallel_equals_sequential_on_conflicting_batch() {
        // Heavy deliberate conflicts over a tiny key range.
        let txs: Vec<_> = (0..600)
            .map(|i| if i % 3 == 0 { kv_read(i, i % 7) } else { kv_write(i, i % 7) })
            .collect();
        let store = SpeculativeStore::new(KvStore::with_records(100));
        let seq = execute_batch(&store, &txs, 1);
        let par = execute_batch(&store, &txs, 4);
        assert_eq!(seq.results, par.results);
        assert_eq!(seq.writes, par.writes);
    }

    #[test]
    fn ideal_speedup_collapses_under_total_conflict() {
        let txs: Vec<_> = (0..16).map(|i| kv_write(i, 1)).collect();
        let plan = schedule(&txs);
        assert_eq!(plan.waves.len(), 16);
        assert!((plan.ideal_speedup(8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch() {
        let store = SpeculativeStore::new(KvStore::with_records(10));
        let out = execute_batch(&store, &[], 4);
        assert!(out.results.is_empty());
        assert!(out.writes.is_empty());
        assert_eq!(out.waves, 0);
    }
}
