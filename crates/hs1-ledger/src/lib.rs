//! Execution substrate: the global-ledger / local-ledger pair of
//! HotStuff-1 (§3 "Rollback", §4.2 "Conflict Resolution").
//!
//! * [`kv`] — a sparse deterministic key-value store. The paper's YCSB
//!   table (600k records) and TPC-C database (260k records) are
//!   represented *logically*: a read of a never-written key returns a
//!   value derived deterministically from the key, which is
//!   indistinguishable from pre-loading while costing no memory.
//! * [`spec`] — [`spec::SpeculativeStore`]: a committed base store plus an
//!   ordered stack of per-block write overlays (the local-ledger).
//!   Rollback pops overlays down to the common ancestor (Definition 4.7).
//! * [`exec`] — [`exec::ExecutionEngine`]: deterministic transaction
//!   execution (YCSB + TPC-C ops) producing per-block result digests that
//!   clients match quorums on.
//! * [`par`] — conflict-partitioned parallel batch execution: static
//!   read/write key sets, a lock-set wave scheduler, and a std-only
//!   worker pool. See the module docs for the determinism contract
//!   (bit-identical digests and state roots at every worker count).
//! * [`tpcc`] — TPC-C table encoding and operation semantics.

pub mod exec;
pub mod kv;
pub mod par;
pub mod spec;
pub mod tpcc;

pub use exec::{ExecConfig, ExecutionEngine};
pub use kv::KvStore;
pub use spec::SpeculativeStore;
