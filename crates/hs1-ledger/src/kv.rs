//! Sparse deterministic key-value store.

use std::collections::HashMap;

pub type Key = u64;
pub type Value = u64;

/// Derive the "pre-loaded" value of a record that has never been written.
/// splitmix64-style finalizer: deterministic across replicas.
pub fn initial_value(key: Key) -> Value {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A key-value store over a logical keyspace of `record_count` pre-loaded
/// records. Only written keys are materialized.
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: HashMap<Key, Value>,
    record_count: u64,
}

impl KvStore {
    /// A store whose keys `0..record_count` read as pre-loaded records.
    pub fn with_records(record_count: u64) -> KvStore {
        KvStore { map: HashMap::new(), record_count }
    }

    /// Read a key: written value, else the deterministic initial value for
    /// in-range keys, else `None`.
    pub fn get(&self, key: Key) -> Option<Value> {
        if let Some(v) = self.map.get(&key) {
            return Some(*v);
        }
        if key < self.record_count {
            return Some(initial_value(key));
        }
        None
    }

    pub fn put(&mut self, key: Key, value: Value) {
        self.map.insert(key, value);
    }

    /// Iterate the materialized (actually written) entries, in no
    /// particular order. Checkpointing serializes exactly this set plus
    /// `record_count` — everything else is derivable from
    /// [`initial_value`].
    pub fn materialized(&self) -> impl Iterator<Item = (Key, Value)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Rebuild a store from its logical record count and materialized
    /// writes (the inverse of [`KvStore::materialized`]; checkpoint
    /// restore).
    pub fn from_parts(
        record_count: u64,
        entries: impl IntoIterator<Item = (Key, Value)>,
    ) -> KvStore {
        KvStore { map: entries.into_iter().collect(), record_count }
    }

    /// Number of materialized (actually written) keys.
    pub fn materialized_len(&self) -> usize {
        self.map.len()
    }

    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Bulk-apply a write set (used when promoting a speculative overlay).
    pub fn apply(&mut self, writes: impl IntoIterator<Item = (Key, Value)>) {
        for (k, v) in writes {
            self.map.insert(k, v);
        }
    }

    /// State root: SHA-256 over the sorted materialized writes plus the
    /// logical record count. Two stores *with the same `record_count`* are
    /// observably identical (every `get` agrees) iff their roots match,
    /// because unwritten in-range keys read deterministically from
    /// [`initial_value`]. Across different record counts the root is only
    /// a fingerprint: e.g. a 10-record store with `initial_value(10)`
    /// explicitly written at key 10 answers every `get` like a fresh
    /// 11-record store, yet their roots differ.
    ///
    /// Writes that merely restate a key's initial value are excluded, so a
    /// store that was written and rolled back to pre-state hashes the same
    /// as one never touched.
    pub fn state_root(&self) -> hs1_crypto::Digest {
        let mut entries: Vec<(Key, Value)> = self
            .map
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|&(k, v)| k >= self.record_count || v != initial_value(k))
            .collect();
        entries.sort_unstable();
        let mut h = hs1_crypto::Sha256::new();
        h.update(b"hs1-state-root");
        h.update_u64(self.record_count);
        for (k, v) in entries {
            h.update_u64(k);
            h.update_u64(v);
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_preload_semantics() {
        let s = KvStore::with_records(600_000);
        assert_eq!(s.materialized_len(), 0);
        assert_eq!(s.get(0), Some(initial_value(0)));
        assert_eq!(s.get(599_999), Some(initial_value(599_999)));
        assert_eq!(s.get(600_000), None);
    }

    #[test]
    fn writes_shadow_initial_values() {
        let mut s = KvStore::with_records(10);
        assert_ne!(s.get(3), Some(42));
        s.put(3, 42);
        assert_eq!(s.get(3), Some(42));
        assert_eq!(s.materialized_len(), 1);
    }

    #[test]
    fn out_of_range_write_then_read() {
        let mut s = KvStore::with_records(10);
        s.put(1_000_000, 7);
        assert_eq!(s.get(1_000_000), Some(7));
    }

    #[test]
    fn initial_values_are_deterministic_and_spread() {
        assert_eq!(initial_value(5), initial_value(5));
        let distinct: std::collections::HashSet<u64> = (0..1000).map(initial_value).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn bulk_apply() {
        let mut s = KvStore::with_records(0);
        s.apply(vec![(1, 10), (2, 20)]);
        assert_eq!(s.get(1), Some(10));
        assert_eq!(s.get(2), Some(20));
    }

    #[test]
    fn state_root_tracks_observable_state() {
        let mut a = KvStore::with_records(100);
        let b = KvStore::with_records(100);
        assert_eq!(a.state_root(), b.state_root(), "fresh stores agree");

        a.put(5, 999);
        assert_ne!(a.state_root(), b.state_root(), "write changes the root");

        // Restating the initial value is observably a no-op.
        a.put(5, initial_value(5));
        assert_eq!(a.state_root(), b.state_root(), "restored store agrees");
    }

    #[test]
    fn state_root_independent_of_write_order() {
        let mut a = KvStore::with_records(10);
        let mut b = KvStore::with_records(10);
        a.put(1, 11);
        a.put(2, 22);
        b.put(2, 22);
        b.put(1, 11);
        assert_eq!(a.state_root(), b.state_root());
    }

    #[test]
    fn from_parts_roundtrips_materialized_state() {
        let mut a = KvStore::with_records(50);
        a.put(3, 33);
        a.put(99, 999);
        let b = KvStore::from_parts(a.record_count(), a.materialized());
        assert_eq!(a.state_root(), b.state_root());
        assert_eq!(b.get(3), Some(33));
        assert_eq!(b.get(99), Some(999));
        assert_eq!(b.get(7), a.get(7), "unwritten keys still read initial values");
    }

    #[test]
    fn state_root_binds_record_count() {
        assert_ne!(
            KvStore::with_records(10).state_root(),
            KvStore::with_records(11).state_root(),
            "keyspace size is part of observable state"
        );
    }
}
