//! TPC-C table substrate.
//!
//! The paper evaluates TPC-C as "OLTP operations that access a database of
//! 260k records, simulating a complex warehouse and order management
//! environment" (§7, Workloads). This module maps the TPC-C tables used by
//! the NewOrder and Payment transactions onto the shared `u64 → u64` store
//! by packing (table, warehouse, district, customer/item) coordinates into
//! key space. All arithmetic is integer (cents), so execution is exactly
//! deterministic across replicas.

use crate::kv::Key;

/// Table tags occupy the top byte of the key space, keeping TPC-C rows
/// disjoint from YCSB records (which live at small keys).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Table {
    /// Warehouse YTD balance, keyed by warehouse.
    WarehouseYtd = 1,
    /// District YTD balance, keyed by (warehouse, district).
    DistrictYtd = 2,
    /// District next-order-id counter, keyed by (warehouse, district).
    DistrictNextOid = 3,
    /// Customer balance in cents, keyed by (warehouse, district, customer).
    CustomerBalance = 4,
    /// Customer payment count, keyed by (warehouse, district, customer).
    CustomerPayments = 5,
    /// Stock quantity, keyed by (warehouse, item).
    StockQty = 6,
    /// Order line record, keyed by (warehouse, district, order, line).
    OrderLine = 7,
}

/// Standard TPC-C cardinalities (scaled by warehouse count).
pub const DISTRICTS_PER_WAREHOUSE: u16 = 10;
pub const CUSTOMERS_PER_DISTRICT: u16 = 3000;
pub const ITEMS: u32 = 100_000;

/// Pack a table coordinate into the shared key space.
pub fn pack(table: Table, warehouse: u16, district: u8, entity: u32, line: u8) -> Key {
    ((table as u64) << 56)
        | ((warehouse as u64) << 40)
        | ((district as u64) << 32)
        | ((entity as u64) << 8)
        | line as u64
}

pub fn warehouse_ytd(w: u16) -> Key {
    pack(Table::WarehouseYtd, w, 0, 0, 0)
}

pub fn district_ytd(w: u16, d: u8) -> Key {
    pack(Table::DistrictYtd, w, d, 0, 0)
}

pub fn district_next_oid(w: u16, d: u8) -> Key {
    pack(Table::DistrictNextOid, w, d, 0, 0)
}

pub fn customer_balance(w: u16, d: u8, c: u16) -> Key {
    pack(Table::CustomerBalance, w, d, c as u32, 0)
}

pub fn customer_payments(w: u16, d: u8, c: u16) -> Key {
    pack(Table::CustomerPayments, w, d, c as u32, 0)
}

pub fn stock_qty(w: u16, item: u32) -> Key {
    pack(Table::StockQty, w, 0, item, 0)
}

pub fn order_line(w: u16, d: u8, oid: u32, line: u8) -> Key {
    pack(Table::OrderLine, w, d, oid, line)
}

/// Logical record count of a TPC-C deployment with `warehouses`
/// warehouses, mirroring the paper's "260k records" scale at the default.
pub fn record_count(warehouses: u16) -> u64 {
    let w = warehouses as u64;
    let per_warehouse = 1 // warehouse row
        + DISTRICTS_PER_WAREHOUSE as u64 * 2 // district ytd + oid counter
        + DISTRICTS_PER_WAREHOUSE as u64 * CUSTOMERS_PER_DISTRICT as u64 * 2 // balance + payments
        + ITEMS as u64; // stock rows
    w * per_warehouse
}

/// Deterministically pick an item id from a seed and line number (uniform
/// over the item table; the workload generator imposes its own skew).
pub fn item_for(seed: u64, line: u8) -> u32 {
    let mut z = seed.wrapping_add(line as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 29)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (z % ITEMS as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_disjoint_across_tables() {
        let keys = [
            warehouse_ytd(1),
            district_ytd(1, 1),
            district_next_oid(1, 1),
            customer_balance(1, 1, 1),
            customer_payments(1, 1, 1),
            stock_qty(1, 1),
            order_line(1, 1, 1, 1),
        ];
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), keys.len());
    }

    #[test]
    fn keys_are_disjoint_across_coordinates() {
        assert_ne!(customer_balance(1, 2, 3), customer_balance(1, 3, 2));
        assert_ne!(stock_qty(1, 5), stock_qty(2, 5));
        assert_ne!(order_line(1, 1, 10, 1), order_line(1, 1, 10, 2));
    }

    #[test]
    fn tpcc_keys_clear_of_ycsb_range() {
        // YCSB keys are < 600_000; every TPC-C key has a table tag in the
        // top byte.
        assert!(warehouse_ytd(0) > 10_000_000);
        assert!(order_line(0, 0, 0, 0) > 10_000_000);
    }

    #[test]
    fn record_count_matches_paper_scale() {
        // 4 warehouses ≈ the paper's 260k-record database.
        let c = record_count(4);
        assert!((200_000..1_000_000).contains(&c), "got {c}");
    }

    #[test]
    fn item_picker_in_range_and_deterministic() {
        for seed in 0..100u64 {
            for line in 0..10u8 {
                let i = item_for(seed, line);
                assert!(i < ITEMS);
                assert_eq!(i, item_for(seed, line));
            }
        }
    }
}
