//! The speculative store: committed global-ledger state plus an ordered
//! stack of per-block write overlays (the local-ledger of §3/§4.2).
//!
//! Invariants maintained here and checked by tests:
//!
//! * Reads see the newest overlay write, falling through to committed
//!   state (read-your-speculation).
//! * [`SpeculativeStore::rollback_all`] restores exactly the committed
//!   state — speculation is side-effect free until promotion.
//! * [`SpeculativeStore::promote_oldest`] merges the *oldest* overlay into
//!   committed state (speculated blocks commit in chain order).
//!
//! In HotStuff-1 the Prefix Speculation rule means a replica only ever
//! speculates a block whose parent is committed, so the overlay stack has
//! depth ≤ 1 in protocol use; the store supports arbitrary depth so that
//! tests (and any future deep-speculation extension) can exercise longer
//! chains.

use std::collections::HashMap;

use crate::kv::{Key, KvStore, Value};
use hs1_types::BlockId;

/// One speculated block's write set.
#[derive(Clone, Debug)]
struct Overlay {
    tag: BlockId,
    writes: HashMap<Key, Value>,
}

/// Committed store + speculative overlay stack.
#[derive(Clone, Debug)]
pub struct SpeculativeStore {
    committed: KvStore,
    overlays: Vec<Overlay>,
    /// Cumulative number of overlays discarded by rollbacks (metric).
    rollbacks: u64,
}

impl SpeculativeStore {
    pub fn new(committed: KvStore) -> SpeculativeStore {
        SpeculativeStore { committed, overlays: Vec::new(), rollbacks: 0 }
    }

    /// Read through overlays (newest first), then committed state.
    pub fn get(&self, key: Key) -> Option<Value> {
        for ov in self.overlays.iter().rev() {
            if let Some(v) = ov.writes.get(&key) {
                return Some(*v);
            }
        }
        self.committed.get(key)
    }

    /// Begin speculating block `tag`: push a fresh overlay.
    ///
    /// Panics if `tag` is already being speculated (engines must not
    /// speculate the same block twice without rolling back).
    pub fn begin_speculation(&mut self, tag: BlockId) {
        assert!(!self.overlays.iter().any(|o| o.tag == tag), "block {tag:?} already speculated");
        self.overlays.push(Overlay { tag, writes: HashMap::new() });
    }

    /// Write into the top (current) speculative overlay.
    ///
    /// Panics if no speculation is active.
    pub fn put_speculative(&mut self, key: Key, value: Value) {
        self.overlays
            .last_mut()
            .expect("put_speculative requires an active overlay")
            .writes
            .insert(key, value);
    }

    /// Write directly into committed state (non-speculative execution).
    ///
    /// Panics if overlays exist: committed execution below live
    /// speculation would make reads incoherent; engines roll back or
    /// promote first.
    pub fn put_committed(&mut self, key: Key, value: Value) {
        assert!(
            self.overlays.is_empty(),
            "put_committed with active speculation; promote or roll back first"
        );
        self.committed.put(key, value);
    }

    /// Merge a batch executor write set into the top (current)
    /// speculative overlay (see [`crate::par`]).
    ///
    /// Panics if no speculation is active.
    pub fn apply_speculative(&mut self, writes: impl IntoIterator<Item = (Key, Value)>) {
        self.overlays
            .last_mut()
            .expect("apply_speculative requires an active overlay")
            .writes
            .extend(writes);
    }

    /// Merge a batch executor write set directly into committed state.
    ///
    /// Panics if overlays exist (same invariant as
    /// [`SpeculativeStore::put_committed`]).
    pub fn apply_committed(&mut self, writes: impl IntoIterator<Item = (Key, Value)>) {
        assert!(
            self.overlays.is_empty(),
            "apply_committed with active speculation; promote or roll back first"
        );
        self.committed.apply(writes);
    }

    /// Tags of currently speculated blocks, oldest first.
    pub fn speculated(&self) -> Vec<BlockId> {
        self.overlays.iter().map(|o| o.tag).collect()
    }

    pub fn is_speculating(&self, tag: BlockId) -> bool {
        self.overlays.iter().any(|o| o.tag == tag)
    }

    pub fn depth(&self) -> usize {
        self.overlays.len()
    }

    /// Discard every speculative overlay (rollback to the committed
    /// common ancestor). Returns the number of blocks rolled back.
    pub fn rollback_all(&mut self) -> usize {
        let n = self.overlays.len();
        self.rollbacks += n as u64;
        self.overlays.clear();
        n
    }

    /// Discard overlays from the top down until `keep` is the top overlay
    /// (rolling back to a common ancestor that is itself speculated).
    /// Returns the number discarded; `keep` must be speculated.
    pub fn rollback_above(&mut self, keep: BlockId) -> usize {
        assert!(self.is_speculating(keep), "rollback_above target not speculated");
        let mut n = 0;
        while self.overlays.last().map(|o| o.tag) != Some(keep) {
            self.overlays.pop();
            n += 1;
        }
        self.rollbacks += n as u64;
        n
    }

    /// Merge the oldest overlay — which must be tagged `tag` — into the
    /// committed store (the speculated block reached a commit decision).
    pub fn promote_oldest(&mut self, tag: BlockId) {
        assert!(
            self.overlays.first().map(|o| o.tag) == Some(tag),
            "promote_oldest: {tag:?} is not the oldest speculated block"
        );
        let ov = self.overlays.remove(0);
        self.committed.apply(ov.writes);
    }

    /// Total overlays ever discarded by rollbacks.
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks
    }

    pub fn committed_store(&self) -> &KvStore {
        &self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpeculativeStore {
        SpeculativeStore::new(KvStore::with_records(100))
    }

    #[test]
    fn read_through_overlay() {
        let mut s = store();
        let before = s.get(5);
        s.begin_speculation(BlockId::test(1));
        assert_eq!(s.get(5), before, "unwritten keys read through");
        s.put_speculative(5, 999);
        assert_eq!(s.get(5), Some(999));
        assert_eq!(s.committed_store().get(5), before, "committed untouched");
    }

    #[test]
    fn newest_overlay_wins() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.put_speculative(7, 1);
        s.begin_speculation(BlockId::test(2));
        s.put_speculative(7, 2);
        assert_eq!(s.get(7), Some(2));
        s.rollback_above(BlockId::test(1));
        assert_eq!(s.get(7), Some(1));
    }

    #[test]
    fn rollback_restores_committed_state() {
        let mut s = store();
        let snapshot: Vec<_> = (0..10).map(|k| s.get(k)).collect();
        s.begin_speculation(BlockId::test(1));
        for k in 0..10 {
            s.put_speculative(k, k + 1000);
        }
        assert_eq!(s.rollback_all(), 1);
        let after: Vec<_> = (0..10).map(|k| s.get(k)).collect();
        assert_eq!(snapshot, after);
        assert_eq!(s.rollback_count(), 1);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn promote_merges_into_committed() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.put_speculative(3, 33);
        s.promote_oldest(BlockId::test(1));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.committed_store().get(3), Some(33));
        // Promotion is not a rollback.
        assert_eq!(s.rollback_count(), 0);
    }

    #[test]
    fn promote_then_speculate_again() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.put_speculative(1, 11);
        s.promote_oldest(BlockId::test(1));
        s.begin_speculation(BlockId::test(2));
        s.put_speculative(1, 22);
        assert_eq!(s.get(1), Some(22));
        s.rollback_all();
        assert_eq!(s.get(1), Some(11));
    }

    #[test]
    fn speculated_tags_in_order() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.begin_speculation(BlockId::test(2));
        assert_eq!(s.speculated(), vec![BlockId::test(1), BlockId::test(2)]);
        assert!(s.is_speculating(BlockId::test(2)));
        assert!(!s.is_speculating(BlockId::test(3)));
    }

    #[test]
    #[should_panic(expected = "already speculated")]
    fn double_speculation_panics() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.begin_speculation(BlockId::test(1));
    }

    #[test]
    #[should_panic(expected = "active overlay")]
    fn speculative_write_without_overlay_panics() {
        let mut s = store();
        s.put_speculative(0, 0);
    }

    #[test]
    #[should_panic(expected = "not the oldest")]
    fn promote_wrong_block_panics() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.begin_speculation(BlockId::test(2));
        s.promote_oldest(BlockId::test(2));
    }

    #[test]
    #[should_panic(expected = "active speculation")]
    fn committed_write_under_speculation_panics() {
        let mut s = store();
        s.begin_speculation(BlockId::test(1));
        s.put_committed(0, 0);
    }
}
