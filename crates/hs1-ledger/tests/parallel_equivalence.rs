//! Property test: the conflict-partitioned parallel executor is
//! observationally identical to sequential execution.
//!
//! Random YCSB+TPC-C batches — with key ranges squeezed so conflicts are
//! *dense*, plus deliberately crafted conflict chains — must produce
//! bit-identical block digests and committed state roots at 1, 2, and 8
//! worker threads, through both the speculative and the committed path,
//! and across rollback/re-execute cycles. Uses the in-repo SplitMix64
//! (no external property-testing dependency).

use hs1_ledger::{ExecConfig, ExecutionEngine};
use hs1_types::tx::TxId;
use hs1_types::{BlockId, ClientId, SplitMix64, Transaction, TxOp};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Batch size comfortably above `par::PAR_MIN_BATCH` so worker counts > 1
/// actually exercise the thread pool, not the sequential fallback.
const BATCH: usize = 600;

fn engine(workers: usize) -> ExecutionEngine {
    ExecutionEngine::new(ExecConfig { workers, ..ExecConfig::default() })
}

/// A random transaction biased toward conflicts: YCSB keys drawn from a
/// tiny range, TPC-C coordinates from 2 warehouses × 3 districts.
fn random_tx(rng: &mut SplitMix64, seq: u64) -> Transaction {
    let client = ClientId(1 + rng.next_range(4) as u32);
    let id = TxId::new(client, seq);
    let op = match rng.next_range(10) {
        0..=3 => TxOp::KvWrite { key: rng.next_range(48), seed: rng.next_u64() },
        4..=5 => TxOp::KvRead { key: rng.next_range(48) },
        6..=7 => TxOp::TpccNewOrder {
            warehouse: 1 + rng.next_range(2) as u16,
            district: rng.next_range(3) as u8,
            customer: rng.next_range(20) as u16,
            lines: 1 + rng.next_range(6) as u8,
            seed: rng.next_u64(),
        },
        8 => TxOp::TpccPayment {
            warehouse: 1 + rng.next_range(2) as u16,
            district: rng.next_range(3) as u8,
            customer: rng.next_range(20) as u16,
            amount_cents: 1 + rng.next_range(10_000) as u32,
        },
        _ => TxOp::Noop,
    };
    Transaction::new(id, op)
}

fn random_batch(rng: &mut SplitMix64, len: usize) -> Vec<Transaction> {
    (0..len as u64).map(|seq| random_tx(rng, seq)).collect()
}

/// Run `blocks` through the committed path at every worker count; digests
/// and state roots must match bit-for-bit.
fn assert_committed_equivalence(blocks: &[Vec<Transaction>], label: &str) {
    let mut reference: Option<(Vec<_>, _)> = None;
    for &w in &WORKER_COUNTS {
        let mut e = engine(w);
        let digests: Vec<_> = blocks
            .iter()
            .enumerate()
            .map(|(i, txs)| e.execute_committed(BlockId::test(i as u64 + 1), txs))
            .collect();
        let root = e.store().committed_store().state_root();
        match &reference {
            None => reference = Some((digests, root)),
            Some((d0, r0)) => {
                assert_eq!(d0, &digests, "{label}: digest mismatch at {w} workers");
                assert_eq!(r0, &root, "{label}: state root mismatch at {w} workers");
            }
        }
    }
}

/// Same, through the speculative path: speculate, roll back, re-speculate,
/// then promote by committing — the full one-phase speculation lifecycle.
fn assert_speculative_equivalence(blocks: &[Vec<Transaction>], label: &str) {
    let mut reference: Option<(Vec<_>, _)> = None;
    for &w in &WORKER_COUNTS {
        let mut e = engine(w);
        let mut digests = Vec::new();
        for (i, txs) in blocks.iter().enumerate() {
            let id = BlockId::test(i as u64 + 1);
            let d1 = e.execute_speculative(id, txs);
            // Roll the speculation back and re-derive it: the rollback
            // path must erase every effect at any worker count.
            assert_eq!(e.rollback_conflicting(&[]), 1, "{label}: rollback at {w} workers");
            assert_eq!(e.digest_of(id), None, "{label}: stale digest at {w} workers");
            let d2 = e.execute_speculative(id, txs);
            assert_eq!(d1, d2, "{label}: re-execution diverged at {w} workers");
            // Promote into the committed base.
            let d3 = e.execute_committed(id, txs);
            assert_eq!(d1, d3, "{label}: promotion digest at {w} workers");
            digests.push(d3);
        }
        let root = e.store().committed_store().state_root();
        match &reference {
            None => reference = Some((digests, root)),
            Some((d0, r0)) => {
                assert_eq!(d0, &digests, "{label}: digest mismatch at {w} workers");
                assert_eq!(r0, &root, "{label}: state root mismatch at {w} workers");
            }
        }
    }
}

#[test]
fn random_mixed_batches_committed_path() {
    let mut rng = SplitMix64::new(0x009a_11e7);
    for case in 0..8 {
        let blocks: Vec<_> = (0..3).map(|_| random_batch(&mut rng, BATCH)).collect();
        assert_committed_equivalence(&blocks, &format!("mixed case {case}"));
    }
}

#[test]
fn random_mixed_batches_speculative_path() {
    let mut rng = SplitMix64::new(0x00de_ad51);
    for case in 0..4 {
        let blocks: Vec<_> = (0..2).map(|_| random_batch(&mut rng, BATCH)).collect();
        assert_speculative_equivalence(&blocks, &format!("speculative case {case}"));
    }
}

/// Every transaction hits one of three keys: maximal write-write
/// conflicts, so the wave schedule degenerates to near-sequential and the
/// barrier logic is what's under test.
#[test]
fn pathological_conflict_chain() {
    let mut rng = SplitMix64::new(7);
    let batch: Vec<_> = (0..BATCH as u64)
        .map(|seq| {
            let key = rng.next_range(3);
            if rng.chance(0.3) {
                Transaction { id: TxId::new(ClientId(1), seq), op: TxOp::KvRead { key } }
            } else {
                Transaction::kv_write(1, seq, key, rng.next_u64())
            }
        })
        .collect();
    assert_committed_equivalence(std::slice::from_ref(&batch), "conflict chain");
    assert_speculative_equivalence(&[batch], "conflict chain");
}

/// Conflict-free distinct-key batch: the all-parallel extreme (one wave).
#[test]
fn conflict_free_batch() {
    let batch: Vec<_> =
        (0..BATCH as u64).map(|seq| Transaction::kv_write(1, seq, seq * 13, seq)).collect();
    assert_committed_equivalence(std::slice::from_ref(&batch), "conflict-free");
    assert_speculative_equivalence(&[batch], "conflict-free");
}

/// TPC-C only: RMW chains through warehouse/district YTD counters plus
/// dynamically keyed order-line inserts under the coarsened district
/// locks.
#[test]
fn tpcc_only_batches() {
    let mut rng = SplitMix64::new(0x7bcc);
    for case in 0..4 {
        let batch: Vec<_> = (0..BATCH as u64)
            .map(|seq| {
                let warehouse = 1 + rng.next_range(2) as u16;
                let district = rng.next_range(4) as u8;
                let customer = rng.next_range(30) as u16;
                let op = if rng.chance(0.5) {
                    TxOp::TpccNewOrder {
                        warehouse,
                        district,
                        customer,
                        lines: 1 + rng.next_range(10) as u8,
                        seed: rng.next_u64(),
                    }
                } else {
                    TxOp::TpccPayment {
                        warehouse,
                        district,
                        customer,
                        amount_cents: 1 + rng.next_range(50_000) as u32,
                    }
                };
                Transaction::new(TxId::new(ClientId(2), seq), op)
            })
            .collect();
        assert_committed_equivalence(std::slice::from_ref(&batch), &format!("tpcc case {case}"));
        assert_speculative_equivalence(&[batch], &format!("tpcc case {case}"));
    }
}
