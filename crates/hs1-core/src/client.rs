//! Client-side finality determination (§3 "Sending early finality
//! confirmations", §4.1 "Client Response").
//!
//! A HotStuff-1 client accepts a transaction as final when it holds
//! `n − f` *matching* responses — same transaction, same block, same
//! execution result. Responses for different blocks are never combined
//! (the prefix speculation dilemma, §3): `f + 1` speculative responses
//! only prove one correct replica prepared the transaction.
//!
//! Committed-kind responses are individually stronger: `f + 1` matching
//! committed responses prove at least one correct replica committed, so a
//! mixed tally finalizes at `n − f` total matching responses *or* `f + 1`
//! matching committed responses, whichever happens first. Baseline
//! (HotStuff / HotStuff-2) clients only ever receive committed responses
//! and use the `f + 1` rule.

use std::collections::HashMap;

use hs1_crypto::Digest;
use hs1_types::message::ResponseMsg;
use hs1_types::{BlockId, ProtocolKind, ReplicaId, ReplyKind, TxId};

/// Tally for one transaction: responses keyed by (block, result digest).
#[derive(Default, Debug)]
struct TxTally {
    /// (block, digest) → (responders, committed-kind responders).
    groups: HashMap<(BlockId, Digest), (Vec<ReplicaId>, usize)>,
    decided: bool,
}

/// Client-side response matcher.
pub struct FinalityTracker {
    n: usize,
    f: usize,
    protocol: ProtocolKind,
    pending: HashMap<TxId, TxTally>,
    finalized: Vec<(TxId, BlockId)>,
}

impl FinalityTracker {
    pub fn new(n: usize, f: usize, protocol: ProtocolKind) -> FinalityTracker {
        FinalityTracker { n, f, protocol, pending: HashMap::new(), finalized: Vec::new() }
    }

    /// The quorum of matching responses that yields finality for a purely
    /// speculative tally.
    pub fn speculative_quorum(&self) -> usize {
        // n − f for HotStuff-1 variants; baselines never see speculative
        // responses, so the value is moot but kept consistent.
        self.n - self.f
    }

    /// The quorum of matching committed responses that yields finality.
    pub fn committed_quorum(&self) -> usize {
        self.f + 1
    }

    /// Feed one response; returns `Some((tx, block))` when this response
    /// completes a finality quorum.
    pub fn on_response(&mut self, from: ReplicaId, r: &ResponseMsg) -> Option<(TxId, BlockId)> {
        let spec_quorum = self.speculative_quorum();
        let commit_quorum = self.committed_quorum();
        let needs_nf = self.protocol.client_needs_nf_quorum();
        let tally = self.pending.entry(r.tx).or_default();
        if tally.decided {
            return None;
        }
        let entry = tally.groups.entry((r.block, r.result)).or_default();
        if entry.0.contains(&from) {
            return None;
        }
        entry.0.push(from);
        if r.kind == ReplyKind::Committed {
            entry.1 += 1;
        }
        let total = entry.0.len();
        let committed = entry.1;
        let spec_ok = needs_nf && total >= spec_quorum;
        let commit_ok = committed >= commit_quorum;
        if spec_ok || commit_ok {
            tally.decided = true;
            self.finalized.push((r.tx, r.block));
            return Some((r.tx, r.block));
        }
        None
    }

    pub fn is_final(&self, tx: TxId) -> bool {
        self.pending.get(&tx).map(|t| t.decided).unwrap_or(false)
    }

    pub fn finalized(&self) -> &[(TxId, BlockId)] {
        &self.finalized
    }

    /// Drop tallies for decided transactions (bounded memory).
    pub fn gc(&mut self) {
        self.pending.retain(|_, t| !t.decided);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_types::{ClientId, View};

    fn resp(tx_seq: u64, block: u64, result: u8, kind: ReplyKind) -> ResponseMsg {
        ResponseMsg {
            tx: TxId::new(ClientId(1), tx_seq),
            block: BlockId::test(block),
            result: Digest([result; 32]),
            kind,
            view: View(1),
        }
    }

    #[test]
    fn hs1_client_needs_nf_speculative() {
        // n = 4, f = 1: n − f = 3 speculative responses required.
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let r = resp(0, 1, 7, ReplyKind::Speculative);
        assert!(t.on_response(ReplicaId(0), &r).is_none());
        assert!(t.on_response(ReplicaId(1), &r).is_none());
        assert!(!t.is_final(r.tx));
        assert!(t.on_response(ReplicaId(2), &r).is_some());
        assert!(t.is_final(r.tx));
    }

    #[test]
    fn f_plus_one_speculative_is_not_final() {
        // The prefix speculation dilemma: f + 1 = 2 speculative responses
        // must NOT finalize (only proves one correct replica prepared).
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let r = resp(0, 1, 7, ReplyKind::Speculative);
        t.on_response(ReplicaId(0), &r);
        t.on_response(ReplicaId(1), &r);
        assert!(!t.is_final(r.tx));
    }

    #[test]
    fn committed_responses_finalize_at_f_plus_one() {
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let r = resp(0, 1, 7, ReplyKind::Committed);
        assert!(t.on_response(ReplicaId(0), &r).is_none());
        assert!(t.on_response(ReplicaId(1), &r).is_some());
    }

    #[test]
    fn mixed_tally_counts_toward_nf() {
        // 2 speculative + 1 committed (n=4): total 3 = n − f finalizes.
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let s = resp(0, 1, 7, ReplyKind::Speculative);
        let c = resp(0, 1, 7, ReplyKind::Committed);
        t.on_response(ReplicaId(0), &s);
        t.on_response(ReplicaId(1), &s);
        assert!(t.on_response(ReplicaId(2), &c).is_some());
    }

    #[test]
    fn responses_for_different_blocks_never_combine() {
        // The core of the prefix speculation dilemma: same tx, same
        // result, different block → separate groups.
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let a = resp(0, 1, 7, ReplyKind::Speculative);
        let b = resp(0, 2, 7, ReplyKind::Speculative);
        t.on_response(ReplicaId(0), &a);
        t.on_response(ReplicaId(1), &b);
        t.on_response(ReplicaId(2), &b);
        assert!(!t.is_final(a.tx), "2+1 split across blocks is not a quorum");
        assert!(t.on_response(ReplicaId(3), &b).is_some(), "3 matching on block b");
    }

    #[test]
    fn differing_results_never_combine() {
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let a = resp(0, 1, 7, ReplyKind::Speculative);
        let b = resp(0, 1, 8, ReplyKind::Speculative);
        t.on_response(ReplicaId(0), &a);
        t.on_response(ReplicaId(1), &b);
        t.on_response(ReplicaId(2), &a);
        assert!(!t.is_final(a.tx));
    }

    #[test]
    fn duplicate_responders_ignored() {
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let r = resp(0, 1, 7, ReplyKind::Speculative);
        t.on_response(ReplicaId(0), &r);
        t.on_response(ReplicaId(0), &r);
        t.on_response(ReplicaId(0), &r);
        assert!(!t.is_final(r.tx));
    }

    #[test]
    fn baseline_clients_use_f_plus_one_committed() {
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff2);
        let c = resp(0, 1, 7, ReplyKind::Committed);
        assert!(t.on_response(ReplicaId(0), &c).is_none());
        assert!(t.on_response(ReplicaId(1), &c).is_some());
        // Speculative responses alone never finalize a baseline client —
        // and 3 matching spec responses don't either (no nf rule).
        let mut t2 = FinalityTracker::new(4, 1, ProtocolKind::HotStuff);
        let s = resp(1, 1, 7, ReplyKind::Speculative);
        for i in 0..4 {
            t2.on_response(ReplicaId(i), &s);
        }
        assert!(!t2.is_final(s.tx));
    }

    #[test]
    fn gc_drops_decided() {
        let mut t = FinalityTracker::new(4, 1, ProtocolKind::HotStuff1);
        let r = resp(0, 1, 7, ReplyKind::Committed);
        t.on_response(ReplicaId(0), &r);
        t.on_response(ReplicaId(1), &r);
        assert_eq!(t.finalized().len(), 1);
        t.gc();
        assert!(t.pending.is_empty());
    }
}
