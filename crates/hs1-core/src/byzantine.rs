//! Byzantine fault strategies (§7.3 "Failure Resiliency").
//!
//! Faults are leader-side behaviors consulted at propose time; faulty
//! replicas behave honestly as backups (they aim to slow progress, not to
//! censor responses — per the paper's attack experiments).
//!
//! *Backup-side* misbehavior — equivocal voting, vote withholding, stale
//! certificate advertisement, corrupt fetch/snapshot serving — lives in
//! the `hs1-adversary` crate as a message-mutation layer wrapped around
//! any engine, so one implementation covers all five protocol kinds in
//! the simulator and the TCP stack alike.

use hs1_types::ReplicaId;

/// The strategy a replica plays.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Fault {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Stops participating entirely after `after_view` views (crash).
    Crash { after_view: u64 },
    /// Leader-slowness phenomenon (§6, D6): as leader, delays every
    /// proposal to the end of the view window, keeping just enough slack
    /// for the proposal to complete.
    SlowLeader,
    /// Tail-forking attack (§6, D7 / Example 6.2): as leader of view `v`,
    /// ignores the certificate for view `v−1` and extends the certificate
    /// of view `v−2`, orphaning the previous leader's block.
    TailFork,
    /// Rollback attack (§7.3 "Rollback" / Appendix A.2): as leader,
    /// equivocates — sends a proposal extending the fresh certificate to
    /// `victims` correct replicas (inducing them to speculate) and a
    /// conflicting proposal extending an older certificate to everyone
    /// else. Faulty replicas additionally vote for any proposal signed by
    /// a faulty leader (collusion), letting the conflicting branch win and
    /// forcing the victims to roll back.
    RollbackAttack { victims: Vec<ReplicaId> },
    /// Never sends anything (fail-silent from the start).
    Silent,
}

impl Fault {
    pub fn is_honest(&self) -> bool {
        matches!(self, Fault::Honest)
    }

    /// Is this replica in the colluding faulty set (votes for faulty
    /// leaders' equivocating proposals)?
    pub fn colludes(&self) -> bool {
        matches!(self, Fault::RollbackAttack { .. } | Fault::TailFork)
    }

    pub fn name(&self) -> &'static str {
        match self {
            Fault::Honest => "honest",
            Fault::Crash { .. } => "crash",
            Fault::SlowLeader => "slow-leader",
            Fault::TailFork => "tail-fork",
            Fault::RollbackAttack { .. } => "rollback-attack",
            Fault::Silent => "silent",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert!(Fault::default().is_honest());
        assert!(!Fault::SlowLeader.is_honest());
    }

    #[test]
    fn collusion_membership() {
        assert!(Fault::RollbackAttack { victims: vec![] }.colludes());
        assert!(Fault::TailFork.colludes());
        assert!(!Fault::Honest.colludes());
        assert!(!Fault::SlowLeader.colludes());
    }

    #[test]
    fn names() {
        for f in [
            Fault::Honest,
            Fault::Crash { after_view: 1 },
            Fault::SlowLeader,
            Fault::TailFork,
            Fault::RollbackAttack { victims: vec![ReplicaId(1)] },
            Fault::Silent,
        ] {
            assert!(!f.name().is_empty());
        }
    }
}
