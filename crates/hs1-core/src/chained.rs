//! The streamlined (chained) engines.
//!
//! One state machine covers three protocols that share the message flow of
//! paper Fig. 4 — a single Propose/NewView phase per view, with votes sent
//! to the *next* leader:
//!
//! * **HotStuff** — [`ChainDepth::Three`], no speculation: a block commits
//!   behind three consecutive certificates (7 half-phases).
//! * **HotStuff-2** — [`ChainDepth::Two`], no speculation: prefix-commit
//!   rule behind two consecutive certificates (5 half-phases).
//! * **HotStuff-1** — [`ChainDepth::Two`] plus speculation: replicas
//!   speculatively execute `B_{v−1}` on receiving the view-`v` proposal
//!   that certifies it, when the Prefix-Speculation and No-Gap rules hold
//!   (3 half-phases to the client's early finality confirmation).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::byzantine::Fault;
use crate::common::{CoreState, FetchTracker, TxSource};
use crate::pacemaker::{Pacemaker, PmOutcome};
use crate::persist::{Persistence, RecoveredState};
use crate::replica::{Action, Replica, Timer};
use hs1_crypto::Signature;
use hs1_ledger::ExecConfig;
use hs1_obs::{block_key, Obs, Stage};
use hs1_types::cert::{domains, CertKind};
use hs1_types::message::{NewViewMsg, ProposeMsg, VoteInfo};
use hs1_types::{
    Block, BlockId, Certificate, Message, ReplicaId, SimTime, Slot, SystemConfig, View,
};

/// Commit-rule depth: how many consecutive certificates finalize a block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainDepth {
    /// HotStuff-2 / HotStuff-1 prefix-commit (2-chain).
    Two,
    /// HotStuff (3-chain).
    Three,
}

/// Per-view leader bookkeeping.
struct Tally {
    view: View,
    senders: HashSet<ReplicaId>,
    /// Vote shares for blocks of view − 1, keyed by block.
    votes: HashMap<BlockId, Vec<(ReplicaId, Signature)>>,
    proposed: bool,
    wait_timer_armed: bool,
    slow_timer_armed: bool,
    deadline_passed: bool,
}

impl Tally {
    fn new(view: View) -> Tally {
        Tally {
            view,
            senders: HashSet::new(),
            votes: HashMap::new(),
            proposed: false,
            wait_timer_armed: false,
            slow_timer_armed: false,
            deadline_passed: false,
        }
    }
}

pub struct ChainedEngine {
    core: CoreState,
    pm: Pacemaker,
    fault: Fault,
    depth: ChainDepth,
    speculative: bool,

    view: View,
    high_cert: Certificate,
    /// Highest view this replica voted in (vote-once-per-view).
    last_voted: View,
    /// Highest view whose proposal was processed (equivocation guard).
    last_prop: View,
    awaiting_tc: bool,
    crashed: bool,

    tally: Option<Tally>,
    /// Buffered NewView messages keyed by destination view.
    nv_buf: HashMap<u64, Vec<(ReplicaId, NewViewMsg)>>,
    /// Certificates adopted pending their block arriving via fetch.
    pending_certs: Vec<(Certificate, ReplicaId)>,
    /// Proposals parked on a missing justify block.
    pending_props: Vec<(ReplicaId, ProposeMsg)>,
    /// Outstanding block fetches (re-sent after a view timer on loss).
    fetching: FetchTracker,
    /// Commit target stalled on a missing ancestor (retried after fetch).
    retry_commit: Option<(BlockId, ReplicaId)>,
}

impl ChainedEngine {
    pub fn new(
        cfg: SystemConfig,
        me: ReplicaId,
        depth: ChainDepth,
        speculative: bool,
        fault: Fault,
        exec: ExecConfig,
    ) -> ChainedEngine {
        Self::with_source(
            cfg,
            me,
            depth,
            speculative,
            fault,
            exec,
            Box::new(crate::common::LocalMempool::new()),
        )
    }

    pub fn with_source(
        cfg: SystemConfig,
        me: ReplicaId,
        depth: ChainDepth,
        speculative: bool,
        fault: Fault,
        exec: ExecConfig,
        source: Box<dyn TxSource>,
    ) -> ChainedEngine {
        let core = CoreState::new(cfg.clone(), me, exec, source);
        let pm = Pacemaker::new(cfg, me, SimTime::ZERO);
        let crashed = matches!(fault, Fault::Silent);
        ChainedEngine {
            core,
            pm,
            fault,
            depth,
            speculative,
            view: View::GENESIS,
            high_cert: Certificate::genesis(),
            last_voted: View::GENESIS,
            last_prop: View::GENESIS,
            awaiting_tc: false,
            crashed,
            tally: None,
            nv_buf: HashMap::new(),
            pending_certs: Vec::new(),
            pending_props: Vec::new(),
            fetching: FetchTracker::new(),
            retry_commit: None,
        }
    }

    fn is_leader(&self) -> bool {
        self.core.cfg.leader_of(self.view) == self.core.me
    }

    fn check_crash(&mut self) -> bool {
        if let Fault::Crash { after_view } = self.fault {
            if self.view.0 > after_view {
                self.crashed = true;
            }
        }
        self.crashed
    }

    /// Replace `high_cert`, journaling strict rank advances (the
    /// prepared-certificate part of §4.2 recovery).
    fn set_high_cert(&mut self, cert: Certificate) {
        if cert.rank() > self.high_cert.rank() {
            self.core.persist.on_cert(&cert);
        }
        self.high_cert = cert;
    }

    // -- view lifecycle -----------------------------------------------------

    fn enter_view(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.awaiting_tc = false;
        self.core.persist.on_view(self.view);
        self.core.obs.span_begin("view", self.view.0);
        self.core.obs.counter("view_changes", 0, 1);
        out.push(Action::EnteredView { view: self.view });
        out.push(Action::SetTimer {
            timer: Timer::ViewTimeout(self.view),
            at: self.pm.deadline(self.view, now),
        });
        if self.view.0.is_multiple_of(64) {
            self.pm.prune_below(self.view);
            self.core.prune(2048);
            let v = self.view.0;
            self.nv_buf.retain(|&dv, _| dv >= v);
            // Parked messages whose fetch never resolved (dead or
            // Byzantine peer) are view-stale by now; drop them so the
            // queues stay bounded on long lossy runs.
            self.pending_props.retain(|(_, p)| p.block.view.0 >= v);
            self.pending_certs.retain(|(c, _)| c.view.0 >= v);
        }
        if self.is_leader() {
            self.refresh_tally();
            self.maybe_propose(now, out);
        }
    }

    fn exit_view(&mut self, now: SimTime, out: &mut Vec<Action>) {
        self.core.obs.span_end("view", self.view.0);
        self.view = self.view.next();
        self.tally = None;
        match self.pm.completed_view(self.view, &self.core.kp.clone(), out) {
            PmOutcome::Enter => self.enter_view(now, out),
            PmOutcome::AwaitTc => {
                self.awaiting_tc = true;
                // Loss recovery: if the Wish (or the TC it produces) is
                // dropped, this timer re-wishes instead of parking forever.
                out.push(Action::SetTimer {
                    timer: Timer::ViewTimeout(self.view),
                    at: now + self.core.cfg.view_timer,
                });
            }
        }
    }

    /// Jump directly into `v` (a valid proposal for a higher view proves
    /// progress happened without us).
    fn jump_to(&mut self, v: View, now: SimTime, out: &mut Vec<Action>) {
        self.core.obs.span_end("view", self.view.0);
        self.view = v;
        self.tally = None;
        self.pm.note_jump(v);
        self.enter_view(now, out);
    }

    // -- leader role ---------------------------------------------------------

    fn refresh_tally(&mut self) {
        let v = self.view;
        if self.tally.as_ref().map(|t| t.view) != Some(v) {
            self.tally = Some(Tally::new(v));
        }
        if let Some(msgs) = self.nv_buf.remove(&v.0) {
            for (from, msg) in msgs {
                self.tally_newview(from, &msg);
            }
        }
    }

    fn tally_newview(&mut self, from: ReplicaId, msg: &NewViewMsg) {
        let quorum = self.core.cfg.quorum();
        let prev = self.view.prev();
        let Some(t) = self.tally.as_mut() else { return };
        if t.view != msg.dest_view {
            return;
        }
        if !t.senders.insert(from) {
            return;
        }
        if let Some(vote) = &msg.vote {
            if Some(vote.view) == prev && vote.slot == Slot::FIRST {
                let shares = t.votes.entry(vote.block).or_default();
                if !shares.iter().any(|(r, _)| *r == from) {
                    shares.push((from, vote.share));
                }
            }
        }
        // Form P(v−1) as soon as a quorum of shares agrees on one block
        // (Fig. 4 lines 6–7). Candidate choice is made deterministic by a
        // block-id tie-break (HashMap order is not replay-stable).
        let Some(prev) = prev else { return };
        let formed: Option<Certificate> = t
            .votes
            .iter()
            .filter(|(_, shares)| shares.len() >= quorum)
            .max_by_key(|(block, _)| block.0 .0)
            .map(|(block, shares)| Certificate {
                kind: CertKind::Quorum,
                view: prev,
                slot: Slot::FIRST,
                block: *block,
                sigs: shares.clone(),
            });
        if let Some(cert) = formed {
            if cert.rank() > self.high_cert.rank() && self.core.has_block(cert.block) {
                self.set_high_cert(cert);
            }
        }
    }

    fn maybe_propose(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if !self.is_leader() || self.crashed || self.awaiting_tc {
            return;
        }
        self.refresh_tally();
        let quorum = self.core.cfg.quorum();
        let n = self.core.cfg.n;
        let view = self.view;
        let high_rank = self.high_cert.rank();
        let t = self.tally.as_mut().expect("tally exists");
        if t.proposed || t.senders.len() < quorum {
            return;
        }
        // Fig. 4 line 3: wait until P(v−1) is known, or n NewViews, or
        // ShareTimer(v).
        let have_prev = Some(high_rank.view) == view.prev();
        let ready = have_prev || t.senders.len() >= n || t.deadline_passed;
        if !ready {
            if !t.wait_timer_armed {
                t.wait_timer_armed = true;
                out.push(Action::SetTimer {
                    timer: Timer::LeaderWait(view),
                    at: self.pm.share_deadline(view, now),
                });
            }
            return;
        }
        // Leader-slowness: hold the proposal until the end of the view
        // window (§6 D6, §7.3), leaving slack for one round to complete.
        if matches!(self.fault, Fault::SlowLeader) && !t.slow_timer_armed {
            t.slow_timer_armed = true;
            let slack = self.core.cfg.delta * 3;
            let at = self.pm.deadline(view, now) - slack;
            let at = if at <= now { now } else { at };
            out.push(Action::SetTimer { timer: Timer::ProposeAt(view), at });
            return;
        }
        if matches!(self.fault, Fault::SlowLeader) {
            // Will propose when ProposeAt fires.
            return;
        }
        self.do_propose(out);
    }

    /// Trace a freshly assembled proposal.
    fn note_proposed(&self, id: BlockId) {
        self.core.obs.stage(Stage::Proposed, block_key(id));
        self.core.obs.counter("blocks_proposed", 0, 1);
    }

    /// Highest certificate known with view ≤ `view − 2` (tail-forking and
    /// rollback-attack justify choice, Example 6.2).
    fn stale_cert(&self) -> Certificate {
        let mut best = Certificate::genesis();
        let limit = self.view.0.saturating_sub(2);
        // Deterministic tie-break on the block id: the scan walks a
        // HashMap, whose order must not leak into replayable behavior.
        let mut consider = |c: &Certificate| {
            let better = c.rank() > best.rank()
                || (c.rank() == best.rank() && c.block.0 .0 > best.block.0 .0);
            if c.view.0 <= limit && better && self.core.has_block(c.block) {
                best = c.clone();
            }
        };
        consider(&self.high_cert);
        for b in self.core.blocks.values() {
            consider(&b.justify);
        }
        best
    }

    fn do_propose(&mut self, out: &mut Vec<Action>) {
        let view = self.view;
        match self.fault.clone() {
            Fault::TailFork => {
                // Ignore P(v−1); extend the certificate of view ≤ v−2
                // (Example 6.2), orphaning the previous leader's block.
                let justify = self.stale_cert();
                let batch = self.core.make_batch();
                let b = Arc::new(Block::new(self.core.me, view, Slot::FIRST, justify, batch));
                self.core.insert_block(b.clone());
                self.note_proposed(b.id());
                if let Some(t) = self.tally.as_mut() {
                    t.proposed = true;
                }
                out.push(Action::Broadcast {
                    msg: Message::Propose(ProposeMsg { block: b, commit_cert: None }),
                });
            }
            Fault::RollbackAttack { victims } => {
                // Appendix A.2: equivocate. Victims get X extending the
                // fresh certificate (they will speculate and later roll
                // back); everyone else gets a conflicting Y extending an
                // older certificate, which colluding faulty voters help
                // certify.
                let x_justify = self.high_cert.clone();
                let y_justify = self.stale_cert();
                let batch_x = self.core.make_batch();
                let x = Arc::new(Block::new(self.core.me, view, Slot::FIRST, x_justify, batch_x));
                let batch_y = self.core.make_batch();
                let y = Arc::new(Block::new(self.core.me, view, Slot::FIRST, y_justify, batch_y));
                self.core.insert_block(x.clone());
                self.core.insert_block(y.clone());
                self.note_proposed(x.id());
                self.note_proposed(y.id());
                if let Some(t) = self.tally.as_mut() {
                    t.proposed = true;
                }
                for r in 0..self.core.cfg.n as u32 {
                    let to = ReplicaId(r);
                    let block = if victims.contains(&to) { x.clone() } else { y.clone() };
                    out.push(Action::Send {
                        to,
                        msg: Message::Propose(ProposeMsg { block, commit_cert: None }),
                    });
                }
            }
            _ => {
                let justify = self.high_cert.clone();
                let batch = self.core.make_batch();
                let b = Arc::new(Block::new(self.core.me, view, Slot::FIRST, justify, batch));
                self.core.insert_block(b.clone());
                self.note_proposed(b.id());
                if let Some(t) = self.tally.as_mut() {
                    t.proposed = true;
                }
                out.push(Action::Broadcast {
                    msg: Message::Propose(ProposeMsg { block: b, commit_cert: None }),
                });
            }
        }
    }

    // -- backup role ----------------------------------------------------------

    fn on_propose(
        &mut self,
        from: ReplicaId,
        msg: ProposeMsg,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        let b = msg.block.clone();
        let pv = b.view;
        if b.proposer != self.core.cfg.leader_of(pv) || from != b.proposer || b.slot != Slot::FIRST
        {
            return;
        }
        if !self.core.cert_valid(&b.justify) {
            return;
        }
        if pv < self.view || pv <= self.last_prop {
            // Stale (e.g. arrived after our view timeout): keep the body —
            // later commits may walk through it — but take no action.
            self.core.insert_block(b);
            return;
        }
        if !self.core.has_block(b.justify.block) {
            self.request_block(b.justify.block, from, now, out);
            self.pending_props.push((from, msg));
            return;
        }
        self.core.insert_block(b.clone());
        self.core.obs.stage(Stage::Received, block_key(b.id()));
        if pv > self.view {
            self.jump_to(pv, now, out);
        }
        self.last_prop = pv;
        self.process_proposal(&b, now, out);
    }

    fn process_proposal(&mut self, b: &Arc<Block>, now: SimTime, out: &mut Vec<Action>) {
        let pv = b.view;
        let justify = b.justify.clone();
        let jb = self.core.block(justify.block).expect("justify block present").clone();

        // 1. Commit rule (Fig. 4 lines 9–10; 3-chain for HotStuff).
        let proposer = b.proposer;
        match self.depth {
            ChainDepth::Two => {
                if justify.view.is_successor_of(jb.justify.view) && !justify.is_genesis() {
                    self.commit_or_fetch(jb.parent, proposer, now, out);
                }
            }
            ChainDepth::Three => {
                if justify.view.is_successor_of(jb.justify.view) && !justify.is_genesis() {
                    if let Some(jb1) = self.core.block(jb.justify.block).cloned() {
                        if jb.justify.view.is_successor_of(jb1.justify.view)
                            && !jb.justify.is_genesis()
                        {
                            self.commit_or_fetch(jb1.parent, proposer, now, out);
                        }
                    }
                }
            }
        }

        // 2. Speculation (HotStuff-1 only; Fig. 4 lines 11–15).
        if self.speculative
            && pv.is_successor_of(justify.view) // No-Gap rule
            && self.core.is_committed(jb.parent) // Prefix Speculation rule
            && !jb.is_genesis()
        {
            self.core.speculate(&jb, out);
        }

        // 3. Vote (Fig. 4 lines 16–18): w ≥ v_lp; colluding faulty
        // replicas vote for any faulty leader's proposal.
        let old_rank = self.high_cert.rank();
        if justify.rank() >= old_rank {
            self.set_high_cert(justify.clone());
        }
        let vote_ok = justify.rank() >= old_rank || self.fault.colludes();
        if vote_ok && pv > self.last_voted && !self.crashed {
            self.last_voted = pv;
            self.core.obs.stage(Stage::Voted, block_key(b.id()));
            self.core.obs.counter("votes_sent", 0, 1);
            let bytes = Certificate::signing_bytes(CertKind::Quorum, pv, Slot::FIRST, b.id());
            let share = self.core.kp.sign(domains::PROPOSE_VOTE, &bytes);
            let next_leader = self.core.cfg.leader_of(pv.next());
            out.push(Action::Send {
                to: next_leader,
                msg: Message::NewView(NewViewMsg {
                    dest_view: pv.next(),
                    high_cert: self.high_cert.clone(),
                    vote: Some(VoteInfo { view: pv, slot: Slot::FIRST, block: b.id(), share }),
                }),
            });
            // 4. Exit the view (Fig. 4 line 19).
            self.exit_view(now, out);
        }
    }

    fn on_newview(
        &mut self,
        from: ReplicaId,
        msg: NewViewMsg,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        self.adopt_cert(msg.high_cert.clone(), from, now, out);
        if msg.dest_view < self.view {
            return;
        }
        if self.core.cfg.leader_of(msg.dest_view) != self.core.me {
            return;
        }
        if msg.dest_view == self.view && self.tally.is_some() {
            self.tally_newview(from, &msg);
        } else {
            self.nv_buf.entry(msg.dest_view.0).or_default().push((from, msg));
        }
    }

    fn adopt_cert(
        &mut self,
        cert: Certificate,
        from: ReplicaId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        if cert.rank() <= self.high_cert.rank() {
            return;
        }
        if !self.core.cert_valid(&cert) {
            return;
        }
        if self.core.has_block(cert.block) {
            self.set_high_cert(cert);
        } else {
            self.request_block(cert.block, from, now, out);
            self.pending_certs.push((cert, from));
        }
    }

    fn request_block(&mut self, id: BlockId, from: ReplicaId, now: SimTime, out: &mut Vec<Action>) {
        if self.fetching.should_request(id, now, self.core.cfg.view_timer) {
            out.push(Action::Send { to: from, msg: Message::FetchBlock { id } });
        }
    }

    /// Commit `target`, fetching missing ancestor bodies from `source`
    /// and retrying on arrival (a replica that dropped a late proposal
    /// must not stall its global-ledger permanently).
    fn commit_or_fetch(
        &mut self,
        target: BlockId,
        source: ReplicaId,
        now: SimTime,
        out: &mut Vec<Action>,
    ) {
        if let Err(missing) = self.core.commit_chain(target, out) {
            self.request_block(missing, source, now, out);
            self.retry_commit = Some((target, source));
        } else if self.retry_commit.map(|(t, _)| self.core.is_committed(t)).unwrap_or(false) {
            self.retry_commit = None;
        }
    }

    fn on_fetch_resp(&mut self, block: Arc<Block>, now: SimTime, out: &mut Vec<Action>) {
        // Only absorb blocks we actually asked for: a Byzantine peer must
        // not grow our store (or influence pending certs/proposals) by
        // pushing unrequested bodies through the fetch path.
        if !self.fetching.is_inflight(block.id()) {
            return;
        }
        // Fetched blocks must themselves chain to something we know;
        // recursively fetch if not. Justify validity is checked before use.
        if !self.core.cert_valid(&block.justify) {
            return;
        }
        self.fetching.resolved(block.id());
        self.core.insert_block(block.clone());
        // Re-adopt pending certificates now satisfiable.
        let pending = std::mem::take(&mut self.pending_certs);
        for (cert, from) in pending {
            self.adopt_cert(cert, from, now, out);
        }
        // Re-run parked proposals.
        let parked = std::mem::take(&mut self.pending_props);
        for (from, prop) in parked {
            self.on_propose(from, prop, now, out);
        }
        // Retry a stalled commit (fetching further ancestors if needed).
        if let Some((target, source)) = self.retry_commit.take() {
            self.commit_or_fetch(target, source, now, out);
        }
    }
}

impl Replica for ChainedEngine {
    fn id(&self) -> ReplicaId {
        self.core.me
    }

    fn on_init(&mut self, now: SimTime, out: &mut Vec<Action>) {
        if self.crashed {
            return;
        }
        // Genesis view 0 auto-completes; every replica announces itself to
        // the leader of view 1 with its (genesis) high certificate. A
        // restored replica re-enters at its recovered view instead.
        if self.view < View(1) {
            self.view = View(1);
        }
        let leader = self.core.cfg.leader_of(self.view);
        out.push(Action::Send {
            to: leader,
            msg: Message::NewView(NewViewMsg {
                dest_view: self.view,
                high_cert: self.high_cert.clone(),
                vote: None,
            }),
        });
        self.enter_view(now, out);
    }

    fn on_message(&mut self, from: ReplicaId, msg: Message, now: SimTime, out: &mut Vec<Action>) {
        if self.check_crash() {
            return;
        }
        match msg {
            Message::Propose(m) => self.on_propose(from, m, now, out),
            Message::NewView(m) => {
                self.on_newview(from, m, now, out);
                self.maybe_propose(now, out);
            }
            Message::Wish(m) => {
                let reg = self.core.registry.clone();
                self.pm.on_wish(from, &m, &reg, out);
            }
            Message::Tc(tc) => {
                let reg = self.core.registry.clone();
                if let Some(v) = self.pm.on_tc(&tc, &reg, now, out) {
                    // `v` may be *ahead* of the awaited view: a newer
                    // epoch's TC un-parks a replica whose own epoch TC
                    // was lost beyond recovery (see Pacemaker docs).
                    if self.awaiting_tc && v >= self.view {
                        self.view = v;
                        self.tally = None;
                        self.enter_view(now, out);
                    }
                }
            }
            Message::FetchBlock { id } => {
                if let Some(b) = self.core.block(id) {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::FetchResp { block: b.clone() },
                    });
                }
            }
            Message::FetchResp { block } => self.on_fetch_resp(block, now, out),
            Message::Request(tx) => self.core.source.offer(tx),
            // Vote/Prepare/NewSlot/Reject/Response are not part of the
            // chained protocols.
            _ => {}
        }
    }

    fn on_timer(&mut self, timer: Timer, now: SimTime, out: &mut Vec<Action>) {
        if self.check_crash() {
            return;
        }
        match timer {
            Timer::ViewTimeout(v) => {
                if v == self.view && self.awaiting_tc {
                    // Parked at an epoch boundary: retry the Wish (ours or
                    // the TC may have been lost) and keep the timer armed.
                    self.core.obs.point("wish_retry", v.0, 0);
                    self.core.obs.counter("wish_retries", 0, 1);
                    self.pm.rewish(&self.core.kp.clone(), out);
                    out.push(Action::SetTimer {
                        timer: Timer::ViewTimeout(v),
                        at: now + self.core.cfg.view_timer,
                    });
                    return;
                }
                if v != self.view {
                    return;
                }
                // Fig. 4 lines 20–22.
                let next = self.view.next();
                out.push(Action::Send {
                    to: self.core.cfg.leader_of(next),
                    msg: Message::NewView(NewViewMsg {
                        dest_view: next,
                        high_cert: self.high_cert.clone(),
                        vote: None,
                    }),
                });
                self.exit_view(now, out);
            }
            Timer::LeaderWait(v) => {
                if v == self.view {
                    if let Some(t) = self.tally.as_mut() {
                        t.deadline_passed = true;
                    }
                    self.maybe_propose(now, out);
                }
            }
            Timer::ProposeAt(v) => {
                if v == self.view && self.is_leader() {
                    let proposed = self.tally.as_ref().map(|t| t.proposed).unwrap_or(false);
                    if !proposed {
                        self.do_propose(out);
                    }
                }
            }
        }
    }

    fn enqueue_txs(&mut self, txs: &[hs1_types::Transaction]) {
        for tx in txs {
            self.core.source.offer(*tx);
        }
    }

    fn current_view(&self) -> View {
        self.view
    }

    fn committed_head(&self) -> BlockId {
        self.core.committed_head()
    }

    fn committed_chain(&self) -> Vec<BlockId> {
        self.core.committed.clone()
    }

    fn set_observer(&mut self, obs: Obs) {
        self.core.set_observer(obs);
    }

    fn set_persistence(&mut self, persist: Box<dyn Persistence>) {
        self.core.persist = persist;
    }

    fn restore(&mut self, rs: RecoveredState) {
        if rs.view > self.view {
            self.view = rs.view;
        }
        // Never vote or process proposals at or below the recovered view:
        // the pre-crash incarnation may already have voted there.
        self.last_voted = self.last_voted.max(rs.view);
        self.last_prop = self.last_prop.max(rs.view);
        if let Some(cert) = &rs.high_cert {
            if cert.rank() > self.high_cert.rank() {
                self.high_cert = cert.clone();
            }
        }
        self.core.restore(rs);
    }

    fn state_root(&self) -> hs1_crypto::Digest {
        self.core.state_root()
    }
}
