//! The transport-agnostic replica interface.

use std::sync::Arc;

use crate::persist::{Persistence, RecoveredState};
use hs1_crypto::Digest;
use hs1_types::{Block, Message, ReplicaId, ReplyKind, SimTime, View};

/// Outputs of an engine step, interpreted by the harness (simulator or TCP
/// runtime).
#[derive(Clone, Debug)]
pub enum Action {
    /// Send `msg` to one replica.
    Send { to: ReplicaId, msg: Message },
    /// Send `msg` to every replica (including the sender, via loopback).
    Broadcast { msg: Message },
    /// Arm a one-shot timer. Stale timers are delivered and ignored by the
    /// engine (each carries its identity).
    SetTimer { timer: Timer, at: SimTime },
    /// The replica executed `block` (speculatively or on commit) with
    /// result digest `digest`; the harness fans per-transaction responses
    /// out to clients. Emitted at most once per (block, kind) and not at
    /// all for the commit of a block that already produced a speculative
    /// response (paper §4.1: a replica responds on commit only if it had
    /// not sent a speculative response).
    Executed { block: Arc<Block>, digest: Digest, kind: ReplyKind },
    /// `block` became committed in chain order (metrics + invariants).
    Committed { block: Arc<Block> },
    /// The local-ledger discarded `blocks` speculated blocks (metric).
    RolledBack { blocks: usize },
    /// The replica entered `view` (metrics).
    EnteredView { view: View },
}

/// One-shot timer identities.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Timer {
    /// View timer (pacemaker deadline for `view`).
    ViewTimeout(View),
    /// Leader's ShareTimer(v) deadline: stop waiting for NewView messages
    /// and propose with the highest certificate known.
    LeaderWait(View),
    /// Deferred proposal (slow-leader strategy / slotted re-proposal).
    ProposeAt(View),
}

/// A consensus replica as a pure state machine.
pub trait Replica: Send {
    fn id(&self) -> ReplicaId;

    /// Called once at deployment start.
    fn on_init(&mut self, now: SimTime, out: &mut Vec<Action>);

    /// Deliver a message from `from` (a replica or, for `Request`s, a
    /// client relay).
    fn on_message(&mut self, from: ReplicaId, msg: Message, now: SimTime, out: &mut Vec<Action>);

    /// A previously armed timer fired.
    fn on_timer(&mut self, timer: Timer, now: SimTime, out: &mut Vec<Action>);

    /// Inject transactions into the replica's mempool (the harness models
    /// client dissemination off the critical path; the TCP runtime feeds
    /// `Message::Request`s through `on_message` instead).
    fn enqueue_txs(&mut self, txs: &[hs1_types::Transaction]);

    /// Current view (metrics/inspection).
    fn current_view(&self) -> View;

    /// Highest committed block id (invariant checking).
    fn committed_head(&self) -> hs1_types::BlockId;

    /// Chain of committed block ids in commit order (invariant checking).
    fn committed_chain(&self) -> Vec<hs1_types::BlockId>;

    /// Install an observability sink (see `hs1-obs`). Pure observer:
    /// attaching one must not change any engine output. The default
    /// ignores it (stateless test doubles need no instrumentation).
    fn set_observer(&mut self, _obs: hs1_obs::Obs) {}

    /// Install a durability sink. Must be called *after*
    /// [`Replica::restore`] (restore replays history; replaying through a
    /// live journal would double-write it) and before the first
    /// `on_init`/`on_message`.
    fn set_persistence(&mut self, persist: Box<dyn Persistence>);

    /// Rebuild state from a recovered journal + checkpoint. Called once,
    /// before `on_init`; the engine re-enters at the recovered view and
    /// never votes at or below it again (§4.2 recovery safety).
    fn restore(&mut self, state: RecoveredState);

    /// Root of the committed global-ledger state (recovery convergence
    /// checks: a recovered replica must reach the same root as live
    /// peers).
    fn state_root(&self) -> Digest;
}
