//! The pacemaker (paper §4.2.1, Fig. 3).
//!
//! Views are grouped into epochs of `f + 1` consecutive views. At each
//! epoch boundary replicas synchronize: every replica sends a `Wish` share
//! to the `f + 1` leaders of the next epoch; a leader aggregates `n − f`
//! shares into a timeout certificate `TC_v` and broadcasts it; receivers
//! relay the TC to the epoch leaders and set
//! `StartTime[v + k] = t + k·τ` for `k = 0..f`. The start time of view
//! `v + k` is also the timeout of view `v + k − 1`, and
//! `ShareTimer(v) = StartTime[v] + 3Δ`.
//!
//! At deployment start all replicas behave as if `TC_0` arrived at time 0
//! (synchronized start; the first epoch is scheduled from the origin).

use std::collections::{HashMap, HashSet};

use crate::replica::Action;
use hs1_crypto::{KeyPair, PublicKeyRegistry, Signature};
use hs1_types::cert::domains;
use hs1_types::message::WishMsg;
use hs1_types::{Message, ReplicaId, SimTime, SystemConfig, TimeoutCert, View};

/// Verdict of [`Pacemaker::completed_view`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PmOutcome {
    /// Enter the view immediately.
    Enter,
    /// Epoch boundary: a Wish was sent; hold until the TC arrives
    /// ([`Pacemaker::on_tc`] will return the view to enter).
    AwaitTc,
}

pub struct Pacemaker {
    cfg: SystemConfig,
    me: ReplicaId,
    /// StartTime[v] for views of epochs whose TC has been processed.
    start_times: HashMap<u64, SimTime>,
    /// Wish shares collected per epoch-start view (leader role).
    wishes: HashMap<u64, Vec<(ReplicaId, Signature)>>,
    /// Epoch-start views whose TC we already formed/broadcast (leader) or
    /// processed (everyone).
    tc_done: HashSet<u64>,
    /// Formed/received TCs, kept so late (or retried) Wishes can be
    /// answered directly — a replica whose TC broadcast was lost must be
    /// able to recover by re-wishing.
    formed: HashMap<u64, TimeoutCert>,
    /// Epoch-start view we are waiting on (sent a Wish, not yet entered).
    awaiting: Option<View>,
    /// Fruitless [`Pacemaker::rewish`] retries since parking (drives the
    /// escalation ladder).
    rewish_count: u64,
}

impl Pacemaker {
    pub fn new(cfg: SystemConfig, me: ReplicaId, now: SimTime) -> Pacemaker {
        let mut start_times = HashMap::new();
        // Synchronized start: epoch 0 is scheduled from `now` (time 0).
        for k in 0..cfg.epoch_len() {
            start_times.insert(k, now + cfg.view_timer * k);
        }
        Pacemaker {
            cfg,
            me,
            start_times,
            wishes: HashMap::new(),
            tc_done: HashSet::new(),
            formed: HashMap::new(),
            awaiting: None,
            rewish_count: 0,
        }
    }

    /// The timeout deadline of `view`: `StartTime[view] + τ`, or `now + τ`
    /// when the view's epoch schedule is unknown (catch-up path).
    pub fn deadline(&self, view: View, now: SimTime) -> SimTime {
        match self.start_times.get(&view.0) {
            Some(&start) => start + self.cfg.view_timer,
            None => now + self.cfg.view_timer,
        }
    }

    /// `ShareTimer(view) = StartTime[view] + 3Δ` (Fig. 3 line 2): when a
    /// leader may stop waiting for NewView messages.
    pub fn share_deadline(&self, view: View, now: SimTime) -> SimTime {
        match self.start_times.get(&view.0) {
            Some(&start) => start + self.cfg.delta * 3,
            None => now + self.cfg.delta * 3,
        }
    }

    /// The engine finished view `next − 1` and wants to enter `next`
    /// (Fig. 3 CompletedView).
    pub fn completed_view(&mut self, next: View, kp: &KeyPair, out: &mut Vec<Action>) -> PmOutcome {
        if !self.cfg.is_epoch_start(next) || self.start_times.contains_key(&next.0) {
            return PmOutcome::Enter;
        }
        // SynchronizeEpoch (Fig. 3 lines 8–10): Wish to the next epoch's
        // f + 1 leaders.
        let share = kp.sign(domains::WISH, &TimeoutCert::signing_bytes(next));
        for leader in self.cfg.epoch_leaders(next) {
            out.push(Action::Send {
                to: leader,
                msg: Message::Wish(WishMsg { view: next, share }),
            });
        }
        self.awaiting = Some(next);
        self.rewish_count = 0;
        PmOutcome::AwaitTc
    }

    /// Re-send the Wish for the awaited epoch (lossy-network retry: the
    /// original Wish, or the TC it should have produced, may have been
    /// dropped — without a retry the replica parks at the epoch boundary
    /// forever and enough parked replicas halt the deployment). Engines
    /// call this from a retry timer armed while `awaiting_tc`.
    ///
    /// Retries *escalate*: every second fruitless retry also wishes for
    /// the next epoch boundary above the last target. Parked replicas can
    /// fragment across different epochs — each short of a wish quorum for
    /// its own boundary (the holders of the old TC crashed, pruned it, or
    /// restarted past it) — and without escalation they all starve.
    /// Because leaders keep the shares they collect, every parked
    /// replica's escalation ladder sweeps through every epoch above its
    /// base, so some common epoch eventually accumulates `n − f` distinct
    /// shares; its TC then re-synchronizes everyone at once (paired with
    /// the newer-TC release in [`Pacemaker::on_tc`]). This mirrors the
    /// view escalation of production view synchronizers and touches
    /// liveness only — wishes for higher epochs are exactly what a
    /// replica whose timer keeps expiring would send anyway.
    pub fn rewish(&mut self, kp: &KeyPair, out: &mut Vec<Action>) {
        let Some(base) = self.awaiting else { return };
        self.rewish_count += 1;
        let k = self.rewish_count / 2;
        let target = View(base.0 + k * self.cfg.epoch_len());
        for v in [base, target] {
            let share = kp.sign(domains::WISH, &TimeoutCert::signing_bytes(v));
            for leader in self.cfg.epoch_leaders(v) {
                out.push(Action::Send {
                    to: leader,
                    msg: Message::Wish(WishMsg { view: v, share }),
                });
            }
            if target == base {
                break;
            }
        }
    }

    /// Leader role: collect a Wish share; broadcast the TC at quorum
    /// (Fig. 3 lines 11–13).
    pub fn on_wish(
        &mut self,
        from: ReplicaId,
        msg: &WishMsg,
        registry: &PublicKeyRegistry,
        out: &mut Vec<Action>,
    ) {
        let v = msg.view;
        if !self.cfg.is_epoch_start(v) || !self.cfg.epoch_leaders(v).contains(&self.me) {
            return;
        }
        if self.tc_done.contains(&v.0) {
            // The TC exists; this Wish is a loss-recovery retry (or just
            // late). Answer the sender directly instead of ignoring it,
            // or a replica whose TC was dropped stays parked forever.
            if let Some(tc) = self.formed.get(&v.0) {
                out.push(Action::Send { to: from, msg: Message::Tc(tc.clone()) });
            }
            return;
        }
        if !registry.verify(from.0, domains::WISH, &TimeoutCert::signing_bytes(v), &msg.share) {
            return;
        }
        let shares = self.wishes.entry(v.0).or_default();
        if shares.iter().any(|(r, _)| *r == from) {
            return;
        }
        shares.push((from, msg.share));
        if shares.len() >= self.cfg.quorum() {
            let tc = TimeoutCert { view: v, sigs: shares.clone() };
            self.tc_done.insert(v.0);
            self.formed.insert(v.0, tc.clone());
            out.push(Action::Broadcast { msg: Message::Tc(tc) });
        }
    }

    /// Process a timeout certificate (Fig. 3 lines 14–18): relay to the
    /// epoch leaders, set the epoch's start times, and return the view to
    /// enter if we were waiting on this TC.
    pub fn on_tc(
        &mut self,
        tc: &TimeoutCert,
        registry: &PublicKeyRegistry,
        now: SimTime,
        out: &mut Vec<Action>,
    ) -> Option<View> {
        let v = tc.view;
        if !self.cfg.is_epoch_start(v) || self.start_times.contains_key(&v.0) {
            // Known epoch: possibly a duplicate; still release a waiter.
            return self.release_if_awaiting(v);
        }
        if !tc.verify(registry, self.cfg.quorum()) {
            return None;
        }
        // Relay to the epoch leaders (non-leaders only, Fig. 3 line 15).
        if !self.cfg.epoch_leaders(v).contains(&self.me) {
            for leader in self.cfg.epoch_leaders(v) {
                out.push(Action::Send { to: leader, msg: Message::Tc(tc.clone()) });
            }
        }
        for k in 0..self.cfg.epoch_len() {
            self.start_times.insert(v.0 + k, now + self.cfg.view_timer * k);
        }
        self.tc_done.insert(v.0);
        self.formed.insert(v.0, tc.clone());
        self.release_if_awaiting(v)
    }

    fn release_if_awaiting(&mut self, v: View) -> Option<View> {
        let w = self.awaiting?;
        // Exact match enters the awaited view. A TC for a *newer* epoch
        // releases the waiter too: it is quorum-signed proof the cluster
        // synchronized past the awaited boundary while this replica's
        // Wish/TC exchange was lost beyond recovery — e.g. every replica
        // that had formed the old TC crashed (pacemaker state is process
        // state) or pruned it. Without this, a parked replica whose
        // epoch leaders lost the TC is disenfranchised forever, and a
        // second fault (a Byzantine backup corrupting the fetch path
        // that would otherwise rescue it via a proposal jump) can stall
        // the whole deployment. Found by the chaos sweep's
        // Byzantine-backup axis.
        if v >= w && self.start_times.contains_key(&v.0) {
            self.awaiting = None;
            return Some(v);
        }
        None
    }

    /// The engine jumped ahead to `view` via a valid proposal (catch-up);
    /// drop any stale wait.
    pub fn note_jump(&mut self, view: View) {
        if let Some(w) = self.awaiting {
            if w <= view {
                self.awaiting = None;
            }
        }
    }

    /// Is the replica parked at an epoch boundary waiting for a TC?
    pub fn is_awaiting_tc(&self) -> bool {
        self.awaiting.is_some()
    }

    /// Drop start-time entries for views far below `view` (bounded memory).
    pub fn prune_below(&mut self, view: View) {
        let cut = view.0.saturating_sub(4 * self.cfg.epoch_len());
        self.start_times.retain(|&v, _| v >= cut);
        self.wishes.retain(|&v, _| v >= cut);
        self.tc_done.retain(|&v| v >= cut);
        self.formed.retain(|&v, _| v >= cut);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs1_types::SimDuration;

    fn setup(n: usize) -> (SystemConfig, Vec<KeyPair>, PublicKeyRegistry) {
        let cfg = SystemConfig::new(n);
        let kps = (0..n as u32).map(|i| KeyPair::derive(cfg.deployment_seed, i)).collect();
        let reg = PublicKeyRegistry::derive(cfg.deployment_seed, n as u32);
        (cfg, kps, reg)
    }

    #[test]
    fn bootstrap_schedule() {
        let (cfg, _, _) = setup(4); // f = 1, epoch_len = 2, τ = 10ms
        let pm = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        assert_eq!(pm.deadline(View(0), SimTime::ZERO), SimTime::ZERO + cfg.view_timer);
        assert_eq!(pm.deadline(View(1), SimTime::ZERO), SimTime::ZERO + cfg.view_timer * 2);
        // Views outside epoch 0 fall back to now + τ.
        let now = SimTime::ZERO + SimDuration::from_millis(55);
        assert_eq!(pm.deadline(View(9), now), now + cfg.view_timer);
    }

    #[test]
    fn intra_epoch_views_enter_immediately() {
        let (cfg, kps, _) = setup(4);
        let mut pm = Pacemaker::new(cfg, ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        assert_eq!(pm.completed_view(View(1), &kps[0], &mut out), PmOutcome::Enter);
        assert!(out.is_empty());
    }

    #[test]
    fn epoch_boundary_sends_wishes_to_epoch_leaders() {
        let (cfg, kps, _) = setup(4); // epoch boundary at view 2
        let mut pm = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        assert_eq!(pm.completed_view(View(2), &kps[0], &mut out), PmOutcome::AwaitTc);
        let dests: Vec<_> = out
            .iter()
            .map(|a| match a {
                Action::Send { to, msg: Message::Wish(w) } => {
                    assert_eq!(w.view, View(2));
                    *to
                }
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(dests, cfg.epoch_leaders(View(2)));
        assert!(pm.is_awaiting_tc());
    }

    #[test]
    fn leader_forms_tc_from_quorum_of_wishes() {
        let (cfg, kps, reg) = setup(4); // quorum 3; leaders of view 2 epoch: R2, R3
        let mut pm = Pacemaker::new(cfg.clone(), ReplicaId(2), SimTime::ZERO);
        let mut out = Vec::new();
        for i in 0..3u32 {
            let share = kps[i as usize].sign(domains::WISH, &TimeoutCert::signing_bytes(View(2)));
            pm.on_wish(ReplicaId(i), &WishMsg { view: View(2), share }, &reg, &mut out);
        }
        let tcs: Vec<_> =
            out.iter().filter(|a| matches!(a, Action::Broadcast { msg: Message::Tc(_) })).collect();
        assert_eq!(tcs.len(), 1, "exactly one TC broadcast");
    }

    #[test]
    fn duplicate_and_invalid_wishes_ignored() {
        let (cfg, kps, reg) = setup(4);
        let mut pm = Pacemaker::new(cfg, ReplicaId(2), SimTime::ZERO);
        let mut out = Vec::new();
        let share = kps[0].sign(domains::WISH, &TimeoutCert::signing_bytes(View(2)));
        pm.on_wish(ReplicaId(0), &WishMsg { view: View(2), share }, &reg, &mut out);
        pm.on_wish(ReplicaId(0), &WishMsg { view: View(2), share }, &reg, &mut out);
        // Forged share (wrong signer id).
        pm.on_wish(ReplicaId(1), &WishMsg { view: View(2), share }, &reg, &mut out);
        assert!(out.is_empty(), "no TC from 1 distinct valid share");
    }

    #[test]
    fn tc_sets_schedule_and_releases_waiter() {
        let (cfg, kps, reg) = setup(4);
        let mut pm = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        pm.completed_view(View(2), &kps[0], &mut out);
        out.clear();

        let sigs: Vec<_> = (0..3u32)
            .map(|i| {
                (
                    ReplicaId(i),
                    kps[i as usize].sign(domains::WISH, &TimeoutCert::signing_bytes(View(2))),
                )
            })
            .collect();
        let tc = TimeoutCert { view: View(2), sigs };
        let t = SimTime::ZERO + SimDuration::from_millis(42);
        let entered = pm.on_tc(&tc, &reg, t, &mut out);
        assert_eq!(entered, Some(View(2)));
        assert!(!pm.is_awaiting_tc());
        assert_eq!(pm.deadline(View(2), t), t + cfg.view_timer);
        assert_eq!(pm.deadline(View(3), t), t + cfg.view_timer * 2);
        // R0 is not an epoch-2 leader (leaders are R2, R3): it relays.
        let relays =
            out.iter().filter(|a| matches!(a, Action::Send { msg: Message::Tc(_), .. })).count();
        assert_eq!(relays, 2);
        // Duplicate TC: no second release, no second relay.
        out.clear();
        assert_eq!(pm.on_tc(&tc, &reg, t, &mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn invalid_tc_rejected() {
        let (cfg, kps, reg) = setup(4);
        let mut pm = Pacemaker::new(cfg, ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        pm.completed_view(View(2), &kps[0], &mut out);
        out.clear();
        let bad = TimeoutCert { view: View(2), sigs: vec![] };
        assert_eq!(pm.on_tc(&bad, &reg, SimTime::ZERO, &mut out), None);
        assert!(pm.is_awaiting_tc());
    }

    #[test]
    fn share_deadline_uses_three_delta() {
        let (cfg, _, _) = setup(4);
        let pm = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        assert_eq!(
            pm.share_deadline(View(1), SimTime::ZERO),
            SimTime::ZERO + cfg.view_timer + cfg.delta * 3
        );
    }

    #[test]
    fn newer_epoch_tc_releases_a_parked_waiter() {
        // A replica parked at epoch boundary 2 whose TC(2) holders all
        // crashed or pruned it: a valid TC for a *later* epoch proves
        // the cluster moved on and must release the waiter forward.
        let (cfg, kps, reg) = setup(4);
        let mut pm = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        pm.completed_view(View(2), &kps[0], &mut out);
        assert!(pm.is_awaiting_tc());
        out.clear();

        let sigs: Vec<_> = (0..3u32)
            .map(|i| {
                (
                    ReplicaId(i),
                    kps[i as usize].sign(domains::WISH, &TimeoutCert::signing_bytes(View(8))),
                )
            })
            .collect();
        let newer = TimeoutCert { view: View(8), sigs };
        let t = SimTime::ZERO + SimDuration::from_millis(70);
        assert_eq!(pm.on_tc(&newer, &reg, t, &mut out), Some(View(8)), "released forward");
        assert!(!pm.is_awaiting_tc());
        assert_eq!(pm.deadline(View(8), t), t + cfg.view_timer);
        // A *stale* TC (below the awaited boundary) must not release.
        let mut pm2 = Pacemaker::new(cfg.clone(), ReplicaId(0), SimTime::ZERO);
        pm2.completed_view(View(4), &kps[0], &mut out);
        let old_sigs: Vec<_> = (0..3u32)
            .map(|i| {
                (
                    ReplicaId(i),
                    kps[i as usize].sign(domains::WISH, &TimeoutCert::signing_bytes(View(2))),
                )
            })
            .collect();
        let old = TimeoutCert { view: View(2), sigs: old_sigs };
        assert_eq!(pm2.on_tc(&old, &reg, t, &mut out), None);
        assert!(pm2.is_awaiting_tc(), "stale TC leaves the waiter parked");
    }

    #[test]
    fn jump_clears_wait() {
        let (cfg, kps, _) = setup(4);
        let mut pm = Pacemaker::new(cfg, ReplicaId(0), SimTime::ZERO);
        let mut out = Vec::new();
        pm.completed_view(View(2), &kps[0], &mut out);
        assert!(pm.is_awaiting_tc());
        pm.note_jump(View(3));
        assert!(!pm.is_awaiting_tc());
    }
}
