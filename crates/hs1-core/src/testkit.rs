//! A miniature deterministic event loop for in-crate protocol tests.
//!
//! Delivers every message after a fixed hop latency and fires timers in
//! order — no bandwidth/CPU modeling (that lives in `hs1-sim`). Useful for
//! asserting protocol-level behavior: commits, speculation, rollbacks,
//! view progression, attack outcomes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::replica::{Action, Replica, Timer};
use hs1_types::{Block, BlockId, Message, ReplicaId, ReplyKind, SimDuration, SimTime, View};

#[derive(Clone, Debug)]
enum Ev {
    Msg { from: ReplicaId, to: ReplicaId, msg: Box<Message> },
    Timer { at: ReplicaId, timer: Timer },
}

/// A recorded observable event.
#[derive(Clone, Debug)]
pub enum Obs {
    Executed { at: ReplicaId, block: Arc<Block>, kind: ReplyKind },
    Committed { at: ReplicaId, block: Arc<Block> },
    RolledBack { at: ReplicaId, blocks: usize },
    EnteredView { at: ReplicaId, view: View },
}

pub struct TestNet {
    pub engines: Vec<Box<dyn Replica>>,
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Ev>,
    pub now: SimTime,
    seq: u64,
    pub hop: SimDuration,
    pub log: Vec<Obs>,
    /// Replica ids whose outbound messages are dropped (network-level
    /// isolation for tests).
    pub isolated: Vec<ReplicaId>,
}

impl TestNet {
    pub fn new(engines: Vec<Box<dyn Replica>>, hop: SimDuration) -> TestNet {
        TestNet {
            engines,
            heap: BinaryHeap::new(),
            events: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            hop,
            log: Vec::new(),
            isolated: Vec::new(),
        }
    }

    pub fn n(&self) -> usize {
        self.engines.len()
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let idx = self.events.len();
        self.events.push(ev);
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    fn absorb(&mut self, from: ReplicaId, actions: Vec<Action>) {
        let hop = self.hop;
        let isolated = self.isolated.contains(&from);
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    if !isolated {
                        self.push_event(self.now + hop, Ev::Msg { from, to, msg: Box::new(msg) });
                    }
                }
                Action::Broadcast { msg } => {
                    if !isolated {
                        for r in 0..self.n() {
                            self.push_event(
                                self.now + hop,
                                Ev::Msg {
                                    from,
                                    to: ReplicaId(r as u32),
                                    msg: Box::new(msg.clone()),
                                },
                            );
                        }
                    }
                }
                Action::SetTimer { timer, at } => {
                    let at =
                        if at <= self.now { self.now + SimDuration::from_nanos(1) } else { at };
                    self.push_event(at, Ev::Timer { at: from, timer });
                }
                Action::Executed { block, kind, .. } => {
                    self.log.push(Obs::Executed { at: from, block, kind })
                }
                Action::Committed { block } => self.log.push(Obs::Committed { at: from, block }),
                Action::RolledBack { blocks } => {
                    self.log.push(Obs::RolledBack { at: from, blocks })
                }
                Action::EnteredView { view } => self.log.push(Obs::EnteredView { at: from, view }),
            }
        }
    }

    /// Initialize every engine.
    pub fn init(&mut self) {
        for i in 0..self.n() {
            let mut out = Vec::new();
            self.engines[i].on_init(self.now, &mut out);
            let from = ReplicaId(i as u32);
            self.absorb(from, out);
        }
    }

    /// Run until `deadline` or the event queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse((at, _, idx))) = self.heap.pop() {
            if at > deadline {
                // Not yet due; put back and stop.
                self.heap.push(Reverse((at, u64::MAX, idx)));
                self.now = deadline;
                return;
            }
            self.now = at;
            let ev = self.events[idx].clone();
            let mut out = Vec::new();
            match ev {
                Ev::Msg { from, to, msg } => {
                    let i = to.0 as usize;
                    self.engines[i].on_message(from, *msg, self.now, &mut out);
                    self.absorb(to, out);
                }
                Ev::Timer { at: rid, timer } => {
                    let i = rid.0 as usize;
                    self.engines[i].on_timer(timer, self.now, &mut out);
                    self.absorb(rid, out);
                }
            }
        }
        self.now = deadline;
    }

    /// Run for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Inject transactions into every engine's mempool.
    pub fn inject(&mut self, txs: &[hs1_types::Transaction]) {
        for e in &mut self.engines {
            e.enqueue_txs(txs);
        }
    }

    /// Blocks committed at replica `r`, in order (excluding genesis).
    pub fn committed_at(&self, r: usize) -> Vec<BlockId> {
        self.engines[r]
            .committed_chain()
            .into_iter()
            .filter(|id| *id != Block::genesis_id())
            .collect()
    }

    /// Assert the safety invariant: committed chains of all listed
    /// replicas are prefixes of one another.
    pub fn assert_prefix_agreement(&self, replicas: &[usize]) {
        let chains: Vec<Vec<BlockId>> = replicas.iter().map(|&r| self.committed_at(r)).collect();
        let longest = chains.iter().max_by_key(|c| c.len()).cloned().unwrap_or_default();
        for (ri, chain) in replicas.iter().zip(&chains) {
            assert!(
                longest.starts_with(chain),
                "replica {ri} committed chain diverges: {chain:?} vs {longest:?}"
            );
        }
    }

    /// Count speculative executions logged at replica `r`.
    pub fn speculations_at(&self, r: usize) -> usize {
        self.log
            .iter()
            .filter(|o| {
                matches!(o, Obs::Executed { at, kind: ReplyKind::Speculative, .. } if at.0 as usize == r)
            })
            .count()
    }

    /// Total rollback events at replica `r`.
    pub fn rollbacks_at(&self, r: usize) -> usize {
        self.log
            .iter()
            .filter_map(|o| match o {
                Obs::RolledBack { at, blocks } if at.0 as usize == r => Some(*blocks),
                _ => None,
            })
            .sum()
    }
}
