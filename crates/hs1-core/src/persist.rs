//! Durability hooks: the consensus ↔ storage boundary (paper §4.2
//! "Recovery Mechanism").
//!
//! Engines are pure state machines; everything a restarting replica needs
//! to rejoin safely flows through the [`Persistence`] trait at the moment
//! it becomes protocol-relevant:
//!
//! * [`Persistence::on_commit`] — a block reached a commit decision and is
//!   about to be applied to the global-ledger (write-ahead: the hook runs
//!   *before* execution, so replay re-executes deterministically).
//! * [`Persistence::on_speculate`] / [`Persistence::on_rollback`] — the
//!   local-ledger overlay stack changed. A recovering replica must never
//!   treat a speculated-but-rolled-back prefix as final; journaling both
//!   edges lets recovery re-derive exactly the overlays that were live.
//! * [`Persistence::on_cert`] / [`Persistence::on_view`] — the prepared
//!   certificate and pacemaker view, so a restarted replica re-enters at
//!   (not below) its previous position and cannot double-vote.
//!
//! The default implementation [`NoopPersistence`] keeps the simulator
//! deterministic and allocation-free by default; `hs1-storage` provides
//! the journal-backed implementation.

use std::sync::Arc;

use hs1_ledger::KvStore;
use hs1_types::{Block, BlockId, Certificate, View};

/// Where a replica's durable events go. All methods are fire-and-forget
/// from the engine's perspective; implementations own their error policy
/// (a production system would escalate an unwritable journal).
pub trait Persistence: Send {
    /// `block` reached a commit decision (called in chain order, before
    /// the block is applied to the global-ledger).
    fn on_commit(&mut self, block: &Arc<Block>);

    /// `block` is about to execute speculatively into a fresh overlay.
    fn on_speculate(&mut self, block: &Arc<Block>);

    /// The top `blocks` overlays of the local-ledger were discarded.
    fn on_rollback(&mut self, blocks: usize);

    /// The replica adopted a higher-ranked certificate.
    fn on_cert(&mut self, cert: &Certificate);

    /// The replica entered `view`.
    fn on_view(&mut self, view: View);

    /// Should the commit path take a checkpoint now? Implementations
    /// typically count commits since the last checkpoint.
    fn wants_checkpoint(&self) -> bool {
        false
    }

    /// Snapshot the committed store and chain (called by the commit path
    /// right after the commits that made [`Persistence::wants_checkpoint`]
    /// true, with no speculation promoted in between).
    fn write_checkpoint(&mut self, store: &KvStore, chain: &[BlockId]) {
        let _ = (store, chain);
    }

    /// Flush buffered writes to stable storage.
    fn sync(&mut self) {}
}

/// No durability: the deterministic default for simulation and tests.
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopPersistence;

impl Persistence for NoopPersistence {
    fn on_commit(&mut self, _block: &Arc<Block>) {}
    fn on_speculate(&mut self, _block: &Arc<Block>) {}
    fn on_rollback(&mut self, _blocks: usize) {}
    fn on_cert(&mut self, _cert: &Certificate) {}
    fn on_view(&mut self, _view: View) {}
}

/// Everything recovery reconstructs from the journal + newest checkpoint,
/// handed to [`crate::Replica::restore`] before the engine starts.
///
/// Restore order (enforced by `CoreState::restore`): install the
/// checkpointed committed store, replay `decided` bodies in commit order
/// (re-executing deterministically), then re-derive the speculative
/// overlay stack from `speculated`. The engine itself adopts `view` /
/// `high_cert` and refuses to vote at or below `view` again.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Highest view the replica had entered (genesis when never journaled).
    pub view: View,
    /// Highest-ranked certificate the replica had adopted.
    pub high_cert: Option<Certificate>,
    /// Committed base store from the newest valid checkpoint.
    pub committed_store: Option<KvStore>,
    /// Committed chain ids covered by the checkpoint, in commit order,
    /// genesis excluded.
    pub committed_ids: Vec<BlockId>,
    /// Decided block bodies journaled after the checkpoint, in commit
    /// order.
    pub decided: Vec<Arc<Block>>,
    /// The speculative overlay stack live at crash time, oldest first.
    pub speculated: Vec<Arc<Block>>,
}

impl RecoveredState {
    /// True when there is nothing to restore (fresh deployment).
    pub fn is_empty(&self) -> bool {
        self.view == View::GENESIS
            && self.high_cert.is_none()
            && self.committed_store.is_none()
            && self.decided.is_empty()
            && self.speculated.is_empty()
    }
}
